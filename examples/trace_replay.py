"""Trace replay: drive the store with a realistic, time-varying request trace.

This mirrors the paper's Figure 4: a write-heavy, diurnally modulated trace
(the Yahoo! News Activity analogue) is replayed against Random, SPAR and
DynaSoRe, and the top-switch traffic is reported per day, normalised by the
Random baseline.

Run with::

    python examples/trace_replay.py
"""

from __future__ import annotations

import dataclasses

from repro.config import ExperimentProfile
from repro.experiments.figure4 import run_figure4
from repro.experiments.report import render_figure4


def main() -> None:
    profile = dataclasses.replace(
        ExperimentProfile.ci(),
        users={"twitter": 500, "facebook": 600, "livejournal": 700},
        trace_days=3.0,
    )
    result = run_figure4(
        profile,
        dataset="facebook",
        extra_memory_pct=50.0,
        strategies=("random", "spar", "dynasore_random", "dynasore_metis"),
    )
    print(render_figure4(result))
    totals = result.normalised_totals()
    print("\ntotal top-switch traffic relative to Random over the whole trace:")
    for label in sorted(totals, key=totals.get):
        print(f"  {label:18s} {totals[label]:.3f}")


if __name__ == "__main__":
    main()
