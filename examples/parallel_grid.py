"""Fan a figure-style experiment grid out over CPU cores.

The example declares the Figure-3-style memory sweep (strategies x extra
memory budgets) as a :class:`repro.runtime.RunGrid` of declarative
:class:`repro.runtime.RunSpec` objects, then executes it twice through a
:class:`repro.runtime.RuntimeExecutor`:

1. in parallel across worker processes, with a progress/ETA line per
   completed run and an on-disk result cache;
2. again, to show the cache answering instantly without re-executing.

Results are identical whatever the backend — every run is seeded entirely
from its spec — so ``jobs`` is purely a wall-clock knob.

Run with::

    python examples/parallel_grid.py
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.config import ClusterSpec, SimulationConfig
from repro.runtime import (
    GraphSpec,
    ResultCache,
    RunGrid,
    RuntimeExecutor,
    TopologySpec,
    WorkloadSpec,
)

STRATEGIES = ("random", "spar", "dynasore_random", "dynasore_hmetis")
MEMORY_POINTS = (0.0, 50.0, 100.0)


def main() -> None:
    # Declare the grid: what to run, not how.
    grid = RunGrid.product(
        TopologySpec.tree(
            ClusterSpec(intermediate_switches=3, racks_per_intermediate=2, machines_per_rack=4)
        ),
        GraphSpec(dataset="facebook", users=400, seed=42),
        WorkloadSpec(kind="synthetic", days=0.5, seed=42),
        [SimulationConfig(extra_memory_pct=memory, seed=42) for memory in MEMORY_POINTS],
        STRATEGIES,
    )
    jobs = min(4, os.cpu_count() or 1)
    print(f"grid    : {len(grid)} runs ({len(STRATEGIES)} strategies x {len(MEMORY_POINTS)} memory points)")
    print(f"backend : {jobs} worker process(es) + on-disk result cache\n")

    with tempfile.TemporaryDirectory(prefix="repro-cache-") as cache_dir:
        executor = RuntimeExecutor(
            jobs=jobs,
            cache=ResultCache(cache_dir),
            progress=lambda p: print(f"  [{p.describe()}]"),
        )

        started = time.perf_counter()
        outcome = grid.run(executor)
        print(f"\nfirst pass (executed live): {time.perf_counter() - started:.1f}s")

        started = time.perf_counter()
        grid.run(executor)
        print(f"second pass (all cached)  : {time.perf_counter() - started:.3f}s\n")

    # Figure-style summary: top-switch traffic normalised by Random.
    print("normalised top-switch traffic (lower is better)")
    print("memory    " + "".join(f"{s:>18s}" for s in STRATEGIES))
    for memory in MEMORY_POINTS:
        runs = outcome.by_strategy(extra_memory_pct=memory)
        reference = runs["random"].top_switch_traffic
        row = "".join(
            f"{runs[s].top_switch_traffic / reference:>18.3f}" if reference else f"{0.0:>18.3f}"
            for s in STRATEGIES
        )
        print(f"{memory:>5.0f}%    {row}")


if __name__ == "__main__":
    main()
