"""Drive a 1M-event workload through the simulator under a fixed memory budget.

The workload layer is a chunked, columnar pipeline
(:mod:`repro.workload.stream`): events live in ~64k-event struct-of-arrays
chunks produced lazily by the generators, so replaying a million events
never materialises a million objects.  The example

1. generates a 1M-event synthetic workload as a stream and measures the
   peak workload memory with ``tracemalloc`` (a few MB — one chunk at a
   time), enforcing a hard budget;
2. contrasts it with the peak of the legacy object-list path on a small
   slice, extrapolating what the materialised 1M-event log would cost;
3. saves the stream to a binary trace file, re-opens it memory-mapped, and
   replays it through the cluster simulator — showing that a saved trace
   replays byte-identically to the generator's stream;
4. prints end-to-end events/sec for the replay.

Run with::

    python examples/streaming_workload.py [--events 1000000]
"""

from __future__ import annotations

import argparse
import gc
import pickle
import tempfile
import time
import tracemalloc
from pathlib import Path

from repro.config import FlatClusterSpec, SimulationConfig
from repro.runtime.spec import build_strategy
from repro.simulator.engine import ClusterSimulator
from repro.socialgraph.generators import dataset_preset, generate_social_graph
from repro.topology.flat import FlatTopology
from repro.workload import read_trace, trace_content_hash, write_trace
from repro.workload.synthetic import SyntheticWorkloadConfig, SyntheticWorkloadGenerator

#: The stream pipeline must stay inside this workload memory budget, no
#: matter how many events flow through it.
MEMORY_BUDGET_MB = 16.0

USERS = 2000
EVENTS_PER_USER_PER_DAY = 5.0  # one write + four reads


def build_generator(events: int) -> SyntheticWorkloadGenerator:
    graph = generate_social_graph(dataset_preset("twitter", users=USERS), seed=7)
    days = events / (USERS * EVENTS_PER_USER_PER_DAY)
    return SyntheticWorkloadGenerator(
        graph, SyntheticWorkloadConfig(days=days, seed=7)
    )


def measure_stream_memory(generator: SyntheticWorkloadGenerator) -> int:
    """Generate + consume the full stream under tracemalloc; return events."""
    gc.collect()
    tracemalloc.start()
    started = time.perf_counter()
    events = sum(len(chunk) for chunk in generator.stream().chunks())
    elapsed = time.perf_counter() - started
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    print(
        f"stream:       {events:>9,} events, peak {peak / 1e6:6.1f} MB, "
        f"{events / elapsed:>9,.0f} events/s generated"
    )
    if peak / 1e6 > MEMORY_BUDGET_MB:
        raise SystemExit(
            f"stream peak {peak / 1e6:.1f} MB exceeded the "
            f"{MEMORY_BUDGET_MB:.0f} MB budget"
        )
    return events


def measure_object_slice(generator: SyntheticWorkloadGenerator, events: int) -> None:
    """Materialise a small slice the old way and extrapolate to full scale."""
    slice_events = min(events, 100_000)
    slice_generator = build_generator(slice_events)
    gc.collect()
    tracemalloc.start()
    log = slice_generator.generate()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    projected = peak * events / len(log)
    print(
        f"object list:  {len(log):>9,} events, peak {peak / 1e6:6.1f} MB "
        f"-> projected {projected / 1e6:,.0f} MB at {events:,} events"
    )


def replay_from_trace_file(generator: SyntheticWorkloadGenerator, events: int) -> None:
    """Save the stream, re-open it memory-mapped, replay both identically."""

    def simulator() -> ClusterSimulator:
        return ClusterSimulator(
            FlatTopology(FlatClusterSpec(machines=12)),
            generator.graph.copy(),
            build_strategy("random", 7),
            SimulationConfig(extra_memory_pct=0.0, seed=7),
        )

    with tempfile.TemporaryDirectory() as directory:
        path = Path(directory) / "workload.trace"
        written = write_trace(path, generator.stream())
        print(
            f"trace file:   {written:,} events, {path.stat().st_size / 1e6:.1f} MB "
            f"on disk, sha256 {trace_content_hash(path)[:12]}…"
        )

        started = time.perf_counter()
        from_file = simulator().run(read_trace(path))
        elapsed = time.perf_counter() - started
        print(
            f"replay:       {from_file.requests_executed:,} events in "
            f"{elapsed:.1f}s = {from_file.requests_executed / elapsed:,.0f} events/s "
            f"(memory-mapped trace)"
        )

        from_stream = simulator().run(generator.stream())
        identical = pickle.dumps(from_file) == pickle.dumps(from_stream)
        print(f"identical to generator stream replay: {identical}")
        if not identical:
            raise SystemExit("trace-file replay diverged from the generator stream")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=int, default=1_000_000)
    arguments = parser.parse_args()

    generator = build_generator(arguments.events)
    print(f"1M-event streaming workload demo ({arguments.events:,} events)\n")
    events = measure_stream_memory(generator)
    measure_object_slice(generator, events)
    replay_from_trace_file(generator, events)


if __name__ == "__main__":
    main()
