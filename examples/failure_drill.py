"""Failure drill: crashes, churn and load dynamics through the scenario layer.

Where ``examples/crash_recovery.py`` stages a single crash by hand (plan,
choose targets, execute), this drill exercises the same machinery through
the :mod:`repro.scenarios` subsystem: a composed scenario thins the load
with a day/night cycle, crashes two servers mid-run, drains a third
gracefully and brings everyone back — all in simulated time, with writes
mirrored to the WAL-backed persistent store so crashed sole replicas are
recovered from disk.

Run with::

    python examples/failure_drill.py
"""

from __future__ import annotations

from repro import (
    ClusterSpec,
    CompositeScenario,
    CrashRecoverScenario,
    DiurnalLoadScenario,
    SimulationConfig,
    TreeTopology,
    facebook_like,
)
from repro.core.engine import DynaSoRe
from repro.persistence.backend import PersistentStore
from repro.simulator.engine import ClusterSimulator
from repro.workload.synthetic import SyntheticWorkloadConfig, SyntheticWorkloadGenerator


def main() -> None:
    graph = facebook_like(users=400, seed=11)
    topology = TreeTopology(
        ClusterSpec(intermediate_switches=3, racks_per_intermediate=2, machines_per_rack=4)
    )

    # Durable backend: every user has written at least once, so even a view
    # that never writes during the run can be rebuilt after a crash.
    persistent = PersistentStore()
    for user in graph.users:
        persistent.process_write(user, timestamp=0.0, payload=b"hello")

    log = SyntheticWorkloadGenerator(
        graph, SyntheticWorkloadConfig(days=0.5, seed=11)
    ).generate()
    duration = log.requests[-1].timestamp

    scenario = CompositeScenario(
        DiurnalLoadScenario(trough_fraction=0.5),
        # Two servers crash abruptly a third of the way in ...
        CrashRecoverScenario(
            crash_time=duration / 3.0, recover_time=2.0 * duration / 3.0, count=2
        ),
        # ... and another leaves gracefully (drain: views copied out).
        CrashRecoverScenario(
            crash_time=duration / 2.0,
            recover_time=duration * 0.9,
            count=1,
            graceful=True,
        ),
    )

    simulator = ClusterSimulator(
        topology,
        graph,
        DynaSoRe(initializer="hmetis", seed=11),
        SimulationConfig(extra_memory_pct=100.0, seed=11),
        scenario=scenario,
        persistent_store=persistent,
    )
    result = simulator.run(log)

    print(f"requests executed  : {result.requests_executed} (diurnally thinned)")
    for record in result.fault_records:
        name = topology.devices[topology.servers[record.position].index].name
        if record.kind == "restore":
            print(f"{record.timestamp / 3600.0:5.1f}h  {record.kind:7s} {name}")
        else:
            print(
                f"{record.timestamp / 3600.0:5.1f}h  {record.kind:7s} {name}  "
                f"recovered {record.views_from_memory} views from memory, "
                f"{record.views_from_disk} from the persistent store"
            )

    counters = simulator.strategy.counters
    print(f"replicas created   : {counters.replicas_created}")
    print(f"servers lost       : {counters.servers_lost}")
    print(f"views unavailable  : {result.unavailable_views}")
    print(f"memory in use      : {result.memory_in_use} / {simulator.budget.total_capacity}")
    persistent.verify_integrity()
    assert result.unavailable_views == 0
    assert all(simulator.server_up)
    print("every view is available again; no data was lost.")


if __name__ == "__main__":
    main()
