"""Crash recovery: losing a cache server and rebuilding its views.

DynaSoRe's durability story (paper sections 2.2 and 3.3): every write is
persisted in a write-ahead log before it reaches the cache, so a crashed
server's views can always be rebuilt — quickly from surviving in-memory
replicas when the view was replicated, otherwise from the persistent store.
The example runs some traffic so DynaSoRe creates replicas, crashes the most
loaded server, plans the recovery, and reports how much of the lost data was
still available in memory.

Run with::

    python examples/crash_recovery.py
"""

from __future__ import annotations

from repro import ClusterSpec, SimulationConfig, TreeTopology, facebook_like
from repro.core.engine import DynaSoRe
from repro.persistence.backend import PersistentStore
from repro.persistence.recovery import execute_recovery, plan_recovery
from repro.persistence.wal import WriteAheadLog
from repro.simulator.engine import ClusterSimulator
from repro.workload.synthetic import SyntheticWorkloadConfig, SyntheticWorkloadGenerator


def main() -> None:
    graph = facebook_like(users=400, seed=11)
    topology = TreeTopology(
        ClusterSpec(intermediate_switches=3, racks_per_intermediate=2, machines_per_rack=4)
    )

    # Durable backend: every user has written at least once.
    persistent = PersistentStore(WriteAheadLog())
    for user in graph.users:
        persistent.process_write(user, timestamp=0.0, payload=b"hello")

    # Run half a day of traffic so DynaSoRe replicates the popular views.
    log = SyntheticWorkloadGenerator(
        graph, SyntheticWorkloadConfig(days=0.5, seed=11)
    ).generate()
    simulator = ClusterSimulator(
        topology,
        graph,
        DynaSoRe(initializer="hmetis", seed=11),
        SimulationConfig(extra_memory_pct=100.0, seed=11),
    )
    simulator.run(log)
    strategy = simulator.strategy

    locations = {user: set(devices) for user, devices in strategy.replica_locations().items()}
    load = {}
    for devices in locations.values():
        for device in devices:
            load[device] = load.get(device, 0) + 1
    crashed = max(load, key=load.get)
    print(f"crashing server {topology.devices[crashed].name} holding {load[crashed]} views")

    plan = plan_recovery(crashed, locations)
    print(f"views lost                      : {plan.total_views}")
    print(f"recoverable from other replicas : {len(plan.recoverable_from_memory)}")
    print(f"recoverable from disk only      : {len(plan.recoverable_from_disk)}")
    print(f"in-memory recovery fraction     : {plan.memory_recovery_fraction:.0%}")

    survivors = [s.index for s in topology.servers if s.index != crashed]
    targets = {
        user: survivors[i % len(survivors)]
        for i, user in enumerate(plan.recoverable_from_memory + plan.recoverable_from_disk)
    }
    recovered = execute_recovery(plan, locations, targets, persistent)
    print(f"recovered views                 : {len(recovered)}")
    assert all(crashed not in devices for devices in locations.values())
    print("every view is available again; no data was lost.")


if __name__ == "__main__":
    main()
