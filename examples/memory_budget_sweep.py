"""Capacity planning: how much extra cache memory buys how much network relief.

This is the scenario behind the paper's Figure 3: an operator wants to know
how much memory headroom to provision so the top-of-tree switches stop being
the bottleneck.  The example sweeps the extra-memory budget, compares
DynaSoRe against Random and SPAR on a scaled Facebook-like graph, and prints
the normalised top-switch traffic of every configuration.

Run with::

    python examples/memory_budget_sweep.py
"""

from __future__ import annotations

import dataclasses

from repro.config import ExperimentProfile
from repro.experiments.figure3 import run_memory_sweep
from repro.experiments.report import render_figure3


def main() -> None:
    # The CI profile keeps the run in the tens of seconds; switch to
    # ExperimentProfile.laptop() for a larger, slower sweep.
    profile = dataclasses.replace(
        ExperimentProfile.ci(),
        users={"twitter": 500, "facebook": 600, "livejournal": 700},
        synthetic_days=1.0,
    )
    sweep = run_memory_sweep(
        profile,
        dataset="facebook",
        memory_points=(0.0, 30.0, 100.0),
        strategies=("random", "spar", "dynasore_random", "dynasore_hmetis"),
    )
    print(render_figure3(sweep))
    print()
    best = sweep.points[max(sweep.points)]
    saving = (1.0 - best["dynasore_hmetis"]) * 100.0
    print(
        "With the largest memory budget, DynaSoRe (initialised from hierarchical "
        f"partitioning) removes {saving:.0f}% of the top-switch traffic produced "
        "by a memcache-style random placement."
    )


if __name__ == "__main__":
    main()
