"""Quickstart: use DynaSoRe as the caching tier of a small social application.

The example builds a small data-center topology and a synthetic social
graph, deploys a :class:`repro.DynaSoReStore` with 50% extra memory, issues
writes and feed reads through the public key-value API, runs the hourly
maintenance, and prints how the store replicated the hottest view and how
much traffic crossed each switch level.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ClusterSpec, DynaSoReStore, TreeTopology, facebook_like
from repro.constants import HOUR


def main() -> None:
    # A small cluster: 3 intermediate switches, 2 racks each, 4 machines per
    # rack (1 broker + 3 storage servers).
    topology = TreeTopology(
        ClusterSpec(intermediate_switches=3, racks_per_intermediate=2, machines_per_rack=4)
    )
    graph = facebook_like(users=400, seed=42)
    store = DynaSoReStore(topology, graph, extra_memory_pct=50.0, seed=42)

    print(f"cluster : {topology.describe()}")
    print(f"graph   : {graph.num_users} users, {graph.num_edges} follow edges")

    # A celebrity posts an event; her followers read their feeds.
    celebrity = max(graph.users, key=graph.in_degree)
    followers = sorted(graph.followers(celebrity))
    print(f"celebrity user {celebrity} has {len(followers)} followers")

    store.write(celebrity, b"I just released a new album!")
    for hour in range(6):
        store.advance_time(hour * HOUR)
        for follower in followers:
            store.read(follower)          # reads the views of everyone they follow
        store.write(celebrity, f"update {hour}".encode())
        store.run_maintenance()           # hourly tick: thresholds, eviction

    print(f"replicas of the celebrity view : {store.replica_count(celebrity)}")
    feed = store.read(followers[0], targets=[celebrity])
    latest = feed[celebrity].latest(1)[0]
    print(f"latest event seen by a follower: {latest.payload.decode()!r}")

    snapshot = store.traffic_snapshot()
    for level in ("top", "intermediate", "rack"):
        print(f"traffic at {level:13s} switches: {snapshot.total_by_level.get(level, 0.0):,.0f}")


if __name__ == "__main__":
    main()
