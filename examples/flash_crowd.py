"""Flash crowd: a user suddenly becomes popular, then fades again.

This is the paper's Figure 5 scenario (section 4.6): at a point in time a
user gains a burst of random followers who start reading her view from all
over the cluster; later they unfollow.  The example tracks how DynaSoRe
grows and then evicts replicas of the hot view, and prints the timeline.

Run with::

    python examples/flash_crowd.py
"""

from __future__ import annotations

import random

from repro import ClusterSpec, SimulationConfig, TreeTopology, facebook_like
from repro.constants import DAY
from repro.core.engine import DynaSoRe
from repro.simulator.engine import ClusterSimulator
from repro.workload.flash import inject_flash_event, plan_flash_event
from repro.workload.synthetic import SyntheticWorkloadConfig, SyntheticWorkloadGenerator


def main() -> None:
    graph = facebook_like(users=400, seed=7)
    topology = TreeTopology(
        ClusterSpec(intermediate_switches=3, racks_per_intermediate=2, machines_per_rack=4)
    )

    # Two simulated days of background traffic.
    base_log = SyntheticWorkloadGenerator(
        graph, SyntheticWorkloadConfig(days=2.0, seed=7)
    ).generate()

    # The flash event: 100 new followers between day 0.5 and day 1.4.
    rng = random.Random(7)
    event = plan_flash_event(graph, rng, followers=100, start_day=0.5, end_day=1.4)
    log = inject_flash_event(base_log, event, reads_per_follower_per_day=6.0, seed=7)
    print(f"user {event.target_user} gains {len(event.new_followers)} followers at day 0.5")

    simulator = ClusterSimulator(
        topology,
        graph,
        DynaSoRe(initializer="hmetis", seed=7),
        SimulationConfig(extra_memory_pct=30.0, seed=7),
    )
    simulator.track_view(event.target_user)
    result = simulator.run(log)

    timeline = result.tracked_views[event.target_user]
    print("\n  day   replicas   reads/replica (per 10 min)")
    step = max(1, len(timeline.replica_counts) // 24)
    for (time, count), (_, reads) in list(
        zip(timeline.replica_counts, timeline.reads_per_replica)
    )[::step]:
        marker = "  <- flash event active" if event.start_time <= time <= event.end_time else ""
        print(f"  {time / DAY:4.2f}   {count:8d}   {reads:13.2f}{marker}")

    peak = max(count for _, count in timeline.replica_counts)
    final = timeline.replica_counts[-1][1]
    print(f"\npeak replicas during the event : {peak}")
    print(f"replicas at the end of the run : {final}")


if __name__ == "__main__":
    main()
