"""Sharded multi-process replay benchmark (one simulation, many workers).

Emits ``BENCH_PR7.json`` at the repository root.  The headline metric is
the intra-run speedup of partitioned sharded replay over the single-process
batched path on a locality-heavy SPAR workload — **>= 2x at 4 shards is the
acceptance target on quiet multi-core hardware**, with an enforced floor of
``SHARD_BENCH_MIN_SPEEDUP`` (default 1.5).

Measurement protocol (the same-run principle the tick benchmark adopted in
this PR — a recorded number from another machine asserts nothing):

* **Identity before speed.**  The sharded result is asserted byte-identical
  to the single-process result before any ratio is computed.
* **Same-run reference.**  The single-process baseline replays the exact
  same trace file in this process, this run.
* **Critical-path projection on core-starved machines.**  Shard workers are
  schedule-independent (no worker ever waits on another), so with one core
  per worker the run's wall time is the *slowest worker's CPU time*.  Each
  worker measures its own ``time.process_time``; the projected speedup is
  ``single_cpu / max(worker_cpu)``.  When the machine has fewer cores than
  shards (``cpu_limited``) wall-clock cannot show the win no matter how the
  engine behaves, so the floor is enforced on the projection; on machines
  with enough cores the floor applies to the better of the two (wall time
  still includes process spawn and result pickling, which the projection
  rightly excludes).

The trace is generated once and written to a binary trace file; workers and
the baseline all read the same file, so stream *generation* cost is paid
once and parse cost is paid identically by every measured path.

``SHARD_BENCH_EVENTS`` scales the workload (default 150k events keeps the
suite quick; the committed BENCH_PR7.json comes from a 1M-event run).
"""

from __future__ import annotations

import dataclasses
import gc
import json
import os
import pickle
import time
from pathlib import Path

import pytest

from repro.config import ClusterSpec, DynaSoReConfig, SimulationConfig
from repro.runtime.spec import build_strategy
from repro.simulator.shard import ShardMaterials, run_sharded_detailed
from repro.socialgraph.generators import dataset_preset, generate_social_graph
from repro.topology.tree import TreeTopology
from repro.workload.io import read_trace, write_trace
from repro.workload.synthetic import SyntheticWorkloadConfig, SyntheticWorkloadGenerator

#: Workload size in events (reads + writes + churn), env-scalable.
SHARD_BENCH_EVENTS = int(os.environ.get("SHARD_BENCH_EVENTS", "150000"))

#: Worker processes of the sharded run.
SHARD_BENCH_SHARDS = int(os.environ.get("SHARD_BENCH_SHARDS", "4"))

#: Enforced floor of the sharded speedup (projected on core-starved
#: machines, best-of wall/projected otherwise).  2x is the acceptance
#: target on quiet multi-core hardware and 1.5x the enforced floor at the
#: 1M-event scale the committed BENCH_PR7.json uses.  Below that scale the
#: per-worker fixed costs (graph build, trace parse, full-stream decision
#: plane) are not yet amortised, so the default floor relaxes to 1.2x.
MIN_SPEEDUP = float(
    os.environ.get(
        "SHARD_BENCH_MIN_SPEEDUP",
        "1.5" if SHARD_BENCH_EVENTS >= 600_000 else "1.2",
    )
)

#: Enforced floor of shards=1 throughput relative to the bare engine —
#: the shard engine's single mode must stay within noise of a plain run.
MIN_SINGLE_RATIO = float(os.environ.get("SHARD_BENCH_MIN_SINGLE_RATIO", "0.8"))

#: Consolidated metrics file at the repository root.
BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_PR7.json"

#: Locality-heavy workload: SPAR on a community-structured graph with the
#: default 19:1 read/write ratio — reads dominate and resolve near their
#: community, exactly the shape partitioning helps.
_USERS = 3000
_WRITES_PER_USER_PER_DAY = 1.0
_READ_WRITE_RATIO = 19.0

_CLUSTER = ClusterSpec(
    intermediate_switches=4,
    racks_per_intermediate=2,
    machines_per_rack=4,
    brokers_per_rack=1,
)


def _record_metrics(section: str, payload: dict) -> None:
    """Merge one benchmark's metrics into ``BENCH_PR7.json``."""
    data: dict = {}
    if BENCH_FILE.exists():
        try:
            data = json.loads(BENCH_FILE.read_text())
        except (OSError, ValueError):
            data = {}
    data[section] = payload
    data["generated_at"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _canonical(result) -> bytes:
    return pickle.dumps(dataclasses.asdict(result), protocol=4)


@pytest.fixture(scope="module")
def bench_trace(tmp_path_factory):
    """One trace file shared by every measured path (generation paid once)."""
    events_per_day = _USERS * _WRITES_PER_USER_PER_DAY * (1 + _READ_WRITE_RATIO)
    days = max(SHARD_BENCH_EVENTS / events_per_day, 0.1)
    graph = generate_social_graph(dataset_preset("twitter", users=_USERS), seed=7)
    stream = SyntheticWorkloadGenerator(
        graph,
        SyntheticWorkloadConfig(
            days=days,
            seed=7,
            writes_per_user_per_day=_WRITES_PER_USER_PER_DAY,
            read_write_ratio=_READ_WRITE_RATIO,
        ),
    ).stream()
    path = tmp_path_factory.mktemp("shard-bench") / "trace.bin"
    events = write_trace(path, stream)
    return path, events


def _materials(trace_path) -> ShardMaterials:
    return ShardMaterials(
        topology_factory=lambda: TreeTopology(_CLUSTER),
        graph_factory=lambda: generate_social_graph(
            dataset_preset("twitter", users=_USERS), seed=7
        ),
        strategy_factory=lambda: build_strategy("spar", 7, DynaSoReConfig()),
        stream_factory=lambda graph: read_trace(trace_path),
        config=SimulationConfig(extra_memory_pct=60.0, seed=7),
    )


def test_bench_sharded_replay(benchmark, bench_trace):
    """4-shard partitioned replay vs the single-process batched path."""
    trace_path, events = bench_trace
    materials = _materials(trace_path)
    cpus = os.cpu_count() or 1
    max_workers = min(SHARD_BENCH_SHARDS, cpus)

    gc.collect()
    single = run_sharded_detailed(materials, 1)
    sharded = run_sharded_detailed(
        materials, SHARD_BENCH_SHARDS, max_workers=max_workers
    )
    # Identity before speed: a fast wrong answer is worthless.
    assert sharded.mode == "partitioned", sharded.fallback_reason
    assert _canonical(sharded.result) == _canonical(single.result)

    single_cpu = single.outcomes[0].cpu_seconds
    single_wall = single.outcomes[0].wall_seconds
    sharded_wall = max(o.wall_seconds for o in sharded.outcomes)
    critical_cpu = sharded.critical_path_cpu_seconds
    projected_speedup = single_cpu / max(critical_cpu, 1e-9)
    wall_speedup = single_wall / max(sharded_wall, 1e-9)
    cpu_limited = cpus < SHARD_BENCH_SHARDS
    enforced_speedup = (
        projected_speedup if cpu_limited else max(projected_speedup, wall_speedup)
    )

    metrics = {
        "events": events,
        "shards": SHARD_BENCH_SHARDS,
        "strategy": "spar",
        "mode": sharded.mode,
        "cpus": cpus,
        "cpu_limited": cpu_limited,
        "single_process_cpu_seconds": round(single_cpu, 3),
        "single_process_events_per_sec": round(events / max(single_cpu, 1e-9)),
        "critical_path_cpu_seconds": round(critical_cpu, 3),
        "per_shard_cpu_seconds": [
            round(o.cpu_seconds, 3) for o in sharded.outcomes
        ],
        "projected_speedup": round(projected_speedup, 3),
        # max/mean per-shard CPU: the residual between the measured speedup
        # and ideal scaling.  The partitioner balances user *populations*;
        # request load still skews with community activity.
        "shard_load_imbalance": round(
            critical_cpu
            * SHARD_BENCH_SHARDS
            / max(sum(o.cpu_seconds for o in sharded.outcomes), 1e-9),
            3,
        ),
        "wall_speedup": round(wall_speedup, 3),
        "enforced_speedup": round(enforced_speedup, 3),
        "enforced_floor": MIN_SPEEDUP,
        "acceptance_target_quiet_hardware": 2.0,
    }
    benchmark.extra_info.update(metrics)
    _record_metrics("sharded_replay", metrics)
    benchmark.pedantic(
        lambda: run_sharded_detailed(
            materials, SHARD_BENCH_SHARDS, max_workers=max_workers
        ),
        iterations=1,
        rounds=1,
    )
    assert enforced_speedup >= MIN_SPEEDUP, (
        f"sharded replay speedup {enforced_speedup:.2f}x "
        f"(projected {projected_speedup:.2f}x, wall {wall_speedup:.2f}x, "
        f"{cpus} cpus for {SHARD_BENCH_SHARDS} shards) is below the "
        f"{MIN_SPEEDUP}x floor"
    )


def test_bench_single_shard_overhead(benchmark, bench_trace):
    """shards=1 must stay within noise of the bare engine (same run)."""
    from repro.simulator.engine import ClusterSimulator

    trace_path, events = bench_trace
    materials = _materials(trace_path)

    def bare_run() -> float:
        graph = materials.graph_factory()
        simulator = ClusterSimulator(
            materials.topology_factory(),
            graph,
            materials.strategy_factory(),
            config=materials.config,
        )
        gc.collect()
        started = time.process_time()
        simulator.run(materials.stream_factory(graph))
        return time.process_time() - started

    bare_seconds = bare_run()
    gc.collect()
    started = time.process_time()
    report = run_sharded_detailed(materials, 1)
    shard_engine_seconds = time.process_time() - started
    assert report.mode == "single"

    ratio = bare_seconds / max(shard_engine_seconds, 1e-9)
    metrics = {
        "events": events,
        "bare_engine_events_per_sec": round(events / max(bare_seconds, 1e-9)),
        "shard_engine_events_per_sec": round(
            events / max(shard_engine_seconds, 1e-9)
        ),
        "throughput_ratio": round(ratio, 3),
        "enforced_floor": MIN_SINGLE_RATIO,
    }
    benchmark.extra_info.update(metrics)
    _record_metrics("single_shard_overhead", metrics)
    benchmark.pedantic(bare_run, iterations=1, rounds=1)
    assert ratio >= MIN_SINGLE_RATIO, (
        f"shards=1 throughput ratio {ratio:.2f} vs the bare engine is below "
        f"the {MIN_SINGLE_RATIO} floor"
    )
