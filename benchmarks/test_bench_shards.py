"""Sharded multi-process replay benchmark (one simulation, many workers).

Emits ``BENCH_PR7.json`` at the repository root.  The headline metric is
the intra-run speedup of partitioned sharded replay over the single-process
batched path on a locality-heavy SPAR workload — **>= 2x at 4 shards is the
acceptance target on quiet multi-core hardware**, with an enforced floor of
``SHARD_BENCH_MIN_SPEEDUP`` (default 1.5).

Measurement protocol (the same-run principle the tick benchmark adopted in
this PR — a recorded number from another machine asserts nothing):

* **Identity before speed.**  The sharded result is asserted byte-identical
  to the single-process result before any ratio is computed.
* **Same-run reference.**  The single-process baseline replays the exact
  same trace file in this process, this run.
* **Critical-path projection on core-starved machines.**  Shard workers are
  schedule-independent (no worker ever waits on another), so with one core
  per worker the run's wall time is the *slowest worker's CPU time*.  Each
  worker measures its own ``time.process_time``; the projected speedup is
  ``single_cpu / max(worker_cpu)``.  When the machine has fewer cores than
  shards (``cpu_limited``) wall-clock cannot show the win no matter how the
  engine behaves, so the floor is enforced on the projection; on machines
  with enough cores the floor applies to the better of the two (wall time
  still includes process spawn and result pickling, which the projection
  rightly excludes).

The trace is generated once and written to a binary trace file; workers and
the baseline all read the same file, so stream *generation* cost is paid
once and parse cost is paid identically by every measured path.

``SHARD_BENCH_EVENTS`` scales the workload (default 150k events keeps the
suite quick; the committed BENCH_PR7.json comes from a 1M-event run).

The activity-weighted benchmark (``BENCH_PR8.json``) replays a *skewed*
celebrity-storm trace and compares population-balanced against
activity-weighted shard assignment.  The headline metric is
``shard_load_imbalance`` (critical-path CPU over the per-shard mean):
population balancing leaves the celebrity shard as the critical path;
weighting the partitioner by the trace's profiled per-user event counts is
expected to level it.  The *expected-event* imbalance of each assignment is
deterministic (counted from the profile, no timing involved) and asserted
strictly; the measured-CPU comparison gets an env-tunable tolerance
(``SHARD_BENCH_CPU_IMBALANCE_TOLERANCE``) because CPU time is noisy at
small scales.
"""

from __future__ import annotations

import dataclasses
import gc
import json
import os
import pickle
import time
from pathlib import Path

import pytest

from repro.config import ClusterSpec, DynaSoReConfig, SimulationConfig
from repro.runtime.spec import build_strategy
from repro.simulator.shard import ShardMaterials, run_sharded_detailed
from repro.socialgraph.generators import dataset_preset, generate_social_graph
from repro.topology.tree import TreeTopology
from repro.workload.activity import profile_trace
from repro.workload.io import read_trace, write_trace
from repro.workload.models import CelebrityReadStormGenerator, CelebrityStormConfig
from repro.workload.synthetic import SyntheticWorkloadConfig, SyntheticWorkloadGenerator

#: Workload size in events (reads + writes + churn), env-scalable.
SHARD_BENCH_EVENTS = int(os.environ.get("SHARD_BENCH_EVENTS", "150000"))

#: Worker processes of the sharded run.
SHARD_BENCH_SHARDS = int(os.environ.get("SHARD_BENCH_SHARDS", "4"))

#: Enforced floor of the sharded speedup (projected on core-starved
#: machines, best-of wall/projected otherwise).  2x is the acceptance
#: target on quiet multi-core hardware and 1.5x the enforced floor at the
#: 1M-event scale the committed BENCH_PR7.json uses.  Below that scale the
#: per-worker fixed costs (graph build, trace parse, full-stream decision
#: plane) are not yet amortised, so the default floor relaxes to 1.2x.
MIN_SPEEDUP = float(
    os.environ.get(
        "SHARD_BENCH_MIN_SPEEDUP",
        "1.5" if SHARD_BENCH_EVENTS >= 600_000 else "1.2",
    )
)

#: Enforced floor of shards=1 throughput relative to the bare engine —
#: the shard engine's single mode must stay within noise of a plain run.
MIN_SINGLE_RATIO = float(os.environ.get("SHARD_BENCH_MIN_SINGLE_RATIO", "0.8"))

#: Consolidated metrics file at the repository root.
BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_PR7.json"

#: Metrics file of the activity-weighted partitioning benchmark.
BENCH_PR8_FILE = Path(__file__).resolve().parent.parent / "BENCH_PR8.json"

#: Measured-CPU tolerance of weighted vs population balancing.  Per-shard
#: CPU at benchmark scale is dominated by the replicated decision plane
#: (every worker replays the full stream for placement) plus scheduler
#: noise, so the weighted run's measured imbalance only has to stay within
#: this factor of the population run's; the expected-event comparison
#: (deterministic — counted from the profile, no timing involved) is the
#: strict gate.
CPU_IMBALANCE_TOLERANCE = float(
    os.environ.get("SHARD_BENCH_CPU_IMBALANCE_TOLERANCE", "1.15")
)

#: Ceiling of the weighted assignment's expected-event imbalance, matching
#: the partitioner's 1.05 balance tolerance (1.0442 on the committed run).
#: The floor blend and the one-node rebalance overshoot can push the
#: realised event imbalance slightly past the tolerance at other workload
#: scales — the env knob exists for such runs.
MAX_WEIGHTED_IMBALANCE = float(
    os.environ.get("SHARD_BENCH_MAX_WEIGHTED_IMBALANCE", "1.05")
)

#: Locality-heavy workload: SPAR on a community-structured graph with the
#: default 19:1 read/write ratio — reads dominate and resolve near their
#: community, exactly the shape partitioning helps.
_USERS = 3000
_WRITES_PER_USER_PER_DAY = 1.0
_READ_WRITE_RATIO = 19.0

_CLUSTER = ClusterSpec(
    intermediate_switches=4,
    racks_per_intermediate=2,
    machines_per_rack=4,
    brokers_per_rack=1,
)


def _record_metrics(section: str, payload: dict, bench_file: Path = BENCH_FILE) -> None:
    """Merge one benchmark's metrics into a consolidated metrics file."""
    data: dict = {}
    if bench_file.exists():
        try:
            data = json.loads(bench_file.read_text())
        except (OSError, ValueError):
            data = {}
    data[section] = payload
    data["generated_at"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    bench_file.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _canonical(result) -> bytes:
    return pickle.dumps(dataclasses.asdict(result), protocol=4)


def _bench_graph():
    return generate_social_graph(dataset_preset("twitter", users=_USERS), seed=7)


@pytest.fixture(scope="module")
def bench_trace(tmp_path_factory):
    """One trace file shared by every measured path (generation paid once)."""
    events_per_day = _USERS * _WRITES_PER_USER_PER_DAY * (1 + _READ_WRITE_RATIO)
    days = max(SHARD_BENCH_EVENTS / events_per_day, 0.1)
    graph = _bench_graph()
    stream = SyntheticWorkloadGenerator(
        graph,
        SyntheticWorkloadConfig(
            days=days,
            seed=7,
            writes_per_user_per_day=_WRITES_PER_USER_PER_DAY,
            read_write_ratio=_READ_WRITE_RATIO,
        ),
    ).stream()
    path = tmp_path_factory.mktemp("shard-bench") / "trace.bin"
    events = write_trace(path, stream)
    return path, events


def _materials(trace_path, *, weighted: bool = False) -> ShardMaterials:
    return ShardMaterials(
        topology_factory=lambda: TreeTopology(_CLUSTER),
        graph_factory=_bench_graph,
        strategy_factory=lambda: build_strategy("spar", 7, DynaSoReConfig()),
        stream_factory=lambda graph: read_trace(trace_path),
        config=SimulationConfig(extra_memory_pct=60.0, seed=7),
        # Coordinator-only: weights the user -> shard partitioner by the
        # trace's profiled per-user event counts.
        activity_factory=(
            (lambda graph: profile_trace(trace_path)) if weighted else None
        ),
    )


def test_bench_sharded_replay(benchmark, bench_trace):
    """4-shard partitioned replay vs the single-process batched path."""
    trace_path, events = bench_trace
    materials = _materials(trace_path)
    cpus = os.cpu_count() or 1
    max_workers = min(SHARD_BENCH_SHARDS, cpus)

    gc.collect()
    single = run_sharded_detailed(materials, 1)
    sharded = run_sharded_detailed(
        materials, SHARD_BENCH_SHARDS, max_workers=max_workers
    )
    # Identity before speed: a fast wrong answer is worthless.
    assert sharded.mode == "partitioned", sharded.fallback_reason
    assert _canonical(sharded.result) == _canonical(single.result)

    single_cpu = single.outcomes[0].cpu_seconds
    single_wall = single.outcomes[0].wall_seconds
    sharded_wall = max(o.wall_seconds for o in sharded.outcomes)
    critical_cpu = sharded.critical_path_cpu_seconds
    projected_speedup = single_cpu / max(critical_cpu, 1e-9)
    wall_speedup = single_wall / max(sharded_wall, 1e-9)
    cpu_limited = cpus < SHARD_BENCH_SHARDS
    enforced_speedup = (
        projected_speedup if cpu_limited else max(projected_speedup, wall_speedup)
    )

    metrics = {
        "events": events,
        "shards": SHARD_BENCH_SHARDS,
        "strategy": "spar",
        "mode": sharded.mode,
        "cpus": cpus,
        "cpu_limited": cpu_limited,
        "single_process_cpu_seconds": round(single_cpu, 3),
        "single_process_events_per_sec": round(events / max(single_cpu, 1e-9)),
        "critical_path_cpu_seconds": round(critical_cpu, 3),
        "per_shard_cpu_seconds": [
            round(o.cpu_seconds, 3) for o in sharded.outcomes
        ],
        "projected_speedup": round(projected_speedup, 3),
        # max/mean per-shard CPU: the residual between the measured speedup
        # and ideal scaling.  The partitioner balances user *populations*;
        # request load still skews with community activity.
        "shard_load_imbalance": round(
            critical_cpu
            * SHARD_BENCH_SHARDS
            / max(sum(o.cpu_seconds for o in sharded.outcomes), 1e-9),
            3,
        ),
        "wall_speedup": round(wall_speedup, 3),
        "enforced_speedup": round(enforced_speedup, 3),
        "enforced_floor": MIN_SPEEDUP,
        "acceptance_target_quiet_hardware": 2.0,
    }
    benchmark.extra_info.update(metrics)
    _record_metrics("sharded_replay", metrics)
    benchmark.pedantic(
        lambda: run_sharded_detailed(
            materials, SHARD_BENCH_SHARDS, max_workers=max_workers
        ),
        iterations=1,
        rounds=1,
    )
    assert enforced_speedup >= MIN_SPEEDUP, (
        f"sharded replay speedup {enforced_speedup:.2f}x "
        f"(projected {projected_speedup:.2f}x, wall {wall_speedup:.2f}x, "
        f"{cpus} cpus for {SHARD_BENCH_SHARDS} shards) is below the "
        f"{MIN_SPEEDUP}x floor"
    )


def test_bench_single_shard_overhead(benchmark, bench_trace):
    """shards=1 must stay within noise of the bare engine (same run)."""
    from repro.simulator.engine import ClusterSimulator

    trace_path, events = bench_trace
    materials = _materials(trace_path)

    def bare_run() -> float:
        graph = materials.graph_factory()
        simulator = ClusterSimulator(
            materials.topology_factory(),
            graph,
            materials.strategy_factory(),
            config=materials.config,
        )
        gc.collect()
        started = time.process_time()
        simulator.run(materials.stream_factory(graph))
        return time.process_time() - started

    bare_seconds = bare_run()
    gc.collect()
    started = time.process_time()
    report = run_sharded_detailed(materials, 1)
    shard_engine_seconds = time.process_time() - started
    assert report.mode == "single"

    ratio = bare_seconds / max(shard_engine_seconds, 1e-9)
    metrics = {
        "events": events,
        "bare_engine_events_per_sec": round(events / max(bare_seconds, 1e-9)),
        "shard_engine_events_per_sec": round(
            events / max(shard_engine_seconds, 1e-9)
        ),
        "throughput_ratio": round(ratio, 3),
        "enforced_floor": MIN_SINGLE_RATIO,
    }
    benchmark.extra_info.update(metrics)
    _record_metrics("single_shard_overhead", metrics)
    benchmark.pedantic(bare_run, iterations=1, rounds=1)
    assert ratio >= MIN_SINGLE_RATIO, (
        f"shards=1 throughput ratio {ratio:.2f} vs the bare engine is below "
        f"the {MIN_SINGLE_RATIO} floor"
    )


# ---------------------------------------------------------------------------
# Activity-weighted shard assignment (BENCH_PR8.json)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def skewed_trace(tmp_path_factory):
    """A celebrity-storm trace: ~60% of the events are storm pile-ons on a
    handful of hub users' communities — the load shape population
    balancing gets wrong.  ``reads_per_follower`` is sized from the event
    budget so the storm share (and hence the skew) survives
    ``SHARD_BENCH_EVENTS`` scaling."""
    celebrities, storms = 8, 3
    graph = _bench_graph()
    background_per_day = _USERS * 2.0
    days = max(SHARD_BENCH_EVENTS * 0.4 / background_per_day, 0.1)
    audiences = sorted((graph.in_degree(u) for u in graph.users), reverse=True)
    followers_total = max(sum(audiences[:celebrities]), 1)
    reads_per_follower = max(
        SHARD_BENCH_EVENTS * 0.6 / (storms * followers_total), 1.0
    )
    stream = CelebrityReadStormGenerator(
        graph,
        CelebrityStormConfig(
            days=days,
            seed=7,
            celebrities=celebrities,
            storms_per_celebrity=storms,
            reads_per_follower=reads_per_follower,
            background_events_per_user_per_day=2.0,
        ),
    ).stream()
    path = tmp_path_factory.mktemp("shard-bench-skew") / "storm.bin"
    events = write_trace(path, stream)
    return path, events


def _expected_event_imbalance(assignment, profile) -> float:
    """max/mean of the per-shard *profiled* event counts — deterministic."""
    loads = [0.0] * assignment.shards
    for user, rate in profile.rates.items():
        loads[assignment.owner_of(user)] += rate
    return max(loads) * assignment.shards / max(sum(loads), 1e-9)


def _cpu_imbalance(report) -> float:
    """max/mean of the measured per-shard CPU seconds."""
    return (
        report.critical_path_cpu_seconds
        * report.shards
        / max(sum(o.cpu_seconds for o in report.outcomes), 1e-9)
    )


def test_bench_activity_weighted_sharding(benchmark, skewed_trace):
    """Weighted vs population-balanced assignment on the skewed trace.

    Both assignments must reproduce the single-process result byte for
    byte (assignment is a pure perf knob); weighting must then level the
    per-shard expected event counts strictly better than population
    balancing, and the measured critical-path CPU must not regress beyond
    ``CPU_IMBALANCE_TOLERANCE``.
    """
    trace_path, events = skewed_trace
    population = _materials(trace_path, weighted=False)
    weighted = _materials(trace_path, weighted=True)
    cpus = os.cpu_count() or 1
    max_workers = min(SHARD_BENCH_SHARDS, cpus)
    profile = profile_trace(trace_path)

    gc.collect()
    single = run_sharded_detailed(population, 1)
    pop_report = run_sharded_detailed(
        population, SHARD_BENCH_SHARDS, max_workers=max_workers
    )
    act_report = run_sharded_detailed(
        weighted, SHARD_BENCH_SHARDS, max_workers=max_workers
    )

    # Identity before speed, under both assignments.
    reference = _canonical(single.result)
    assert pop_report.mode == "partitioned", pop_report.fallback_reason
    assert act_report.mode == "partitioned", act_report.fallback_reason
    assert _canonical(pop_report.result) == reference
    assert _canonical(act_report.result) == reference
    assert pop_report.load_summary.balanced_by == "population"
    assert act_report.load_summary.balanced_by == "activity"

    expected_pop = _expected_event_imbalance(pop_report.assignment, profile)
    expected_act = _expected_event_imbalance(act_report.assignment, profile)
    cpu_pop = _cpu_imbalance(pop_report)
    cpu_act = _cpu_imbalance(act_report)
    single_cpu = single.outcomes[0].cpu_seconds
    speedup_pop = single_cpu / max(pop_report.critical_path_cpu_seconds, 1e-9)
    speedup_act = single_cpu / max(act_report.critical_path_cpu_seconds, 1e-9)

    metrics = {
        "events": events,
        "shards": SHARD_BENCH_SHARDS,
        "strategy": "spar",
        "workload": "celebrity_storm",
        "cpus": cpus,
        # Per-shard expected-event (profiled) load, max/mean — the
        # deterministic counterpart of PR7's CPU-based shard_load_imbalance.
        "shard_load_imbalance_population": round(expected_pop, 4),
        "shard_load_imbalance_weighted": round(expected_act, 4),
        "cpu_imbalance_population": round(cpu_pop, 3),
        "cpu_imbalance_weighted": round(cpu_act, 3),
        "projected_speedup_population": round(speedup_pop, 3),
        "projected_speedup_weighted": round(speedup_act, 3),
        "cpu_imbalance_tolerance": CPU_IMBALANCE_TOLERANCE,
        "max_weighted_imbalance": MAX_WEIGHTED_IMBALANCE,
    }
    benchmark.extra_info.update(metrics)
    _record_metrics("activity_weighted_sharding", metrics, bench_file=BENCH_PR8_FILE)
    benchmark.pedantic(
        lambda: run_sharded_detailed(
            weighted, SHARD_BENCH_SHARDS, max_workers=max_workers
        ),
        iterations=1,
        rounds=1,
    )

    # The point of the feature: balancing expected work beats balancing
    # user count on a skewed workload.  Deterministic — counted from the
    # profile under each assignment, no timing involved.
    assert expected_act < expected_pop, (
        f"weighted expected-event imbalance {expected_act:.4f} is not below "
        f"population balancing's {expected_pop:.4f}"
    )
    assert expected_act <= MAX_WEIGHTED_IMBALANCE, (
        f"weighted expected-event imbalance {expected_act:.4f} exceeds the "
        f"{MAX_WEIGHTED_IMBALANCE} ceiling"
    )
    assert cpu_act <= cpu_pop * CPU_IMBALANCE_TOLERANCE, (
        f"weighted CPU imbalance {cpu_act:.3f} exceeds population "
        f"balancing's {cpu_pop:.3f} by more than {CPU_IMBALANCE_TOLERANCE}x"
    )
