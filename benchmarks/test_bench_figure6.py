"""Benchmarks for Figure 6 — convergence of application and system traffic.

DynaSoRe is run with 150% extra memory starting from a random placement and
from an hMETIS placement, with synthetic (6a) and trace-like (6b) request
logs.  The paper shows application traffic dropping to a stable plateau
within about a day while system traffic (replication and protocol messages)
decays after an initial burst.  The benchmarks assert both trends.
"""

from __future__ import annotations

from repro.experiments.figure6 import run_convergence

STRATEGIES = ("random", "dynasore_random", "dynasore_hmetis")


def check_convergence_shape(result):
    for label in ("dynasore_random", "dynasore_hmetis"):
        series = result.series[label]
        app_first, app_second = series.application_halves()
        sys_first, sys_second = series.system_halves()
        # Application traffic does not grow once the placement converges.
        assert app_second <= app_first * 1.15 + 1e-6, label
        # System traffic decays (or at least does not grow) after the
        # initial burst of replication.
        assert sys_second <= sys_first * 1.10 + 1e-6, label


def test_figure6a_convergence_synthetic(run_once, quick_profile):
    """Figure 6a: convergence with synthetic requests."""
    result = run_once(
        run_convergence, quick_profile, "synthetic", "facebook", 150.0, STRATEGIES
    )
    check_convergence_shape(result)


def test_figure6b_convergence_real(run_once, quick_profile):
    """Figure 6b: convergence with real (trace-like) requests."""
    result = run_once(
        run_convergence, quick_profile, "real", "facebook", 150.0, STRATEGIES
    )
    check_convergence_shape(result)
