"""Micro-benchmarks and ablations of the main components.

These are not paper figures; they measure the cost of the building blocks a
downstream user would care about (partitioning a graph, executing requests
through DynaSoRe, SPAR placement construction) and double as ablation
benches for the design choices DESIGN.md calls out (proxy migration and view
migration can be disabled individually).
"""

from __future__ import annotations

import pytest

from repro.baselines.spar import SparPlacement
from repro.config import ClusterSpec, DynaSoReConfig, SimulationConfig
from repro.core.engine import DynaSoRe
from repro.partitioning.hierarchical import hierarchical_partition
from repro.partitioning.kway import partition_kway
from repro.simulator.engine import ClusterSimulator
from repro.socialgraph.generators import facebook_like
from repro.topology.tree import TreeTopology
from repro.workload.synthetic import SyntheticWorkloadConfig, SyntheticWorkloadGenerator

SPEC = ClusterSpec(intermediate_switches=3, racks_per_intermediate=2, machines_per_rack=4)


@pytest.fixture(scope="module")
def graph():
    return facebook_like(users=1200, seed=17)


@pytest.fixture(scope="module")
def short_log(graph):
    return SyntheticWorkloadGenerator(
        graph, SyntheticWorkloadConfig(days=0.25, seed=17)
    ).generate()


def test_partition_kway_throughput(benchmark, graph):
    """Multilevel k-way partitioning of a ~1k user graph into 18 parts."""
    adjacency = graph.undirected_adjacency()
    result = benchmark(partition_kway, adjacency, 18, 17)
    assert result.balance <= 1.3


def test_hierarchical_partition_throughput(benchmark, graph):
    """Hierarchical (hMETIS-style) partitioning over the cluster tree."""
    adjacency = graph.undirected_adjacency()
    result = benchmark.pedantic(
        hierarchical_partition, args=(adjacency, SPEC), kwargs={"seed": 17}, iterations=1, rounds=2
    )
    assert set(result.server_assignment) == set(graph.users)


def test_spar_placement_construction(benchmark, graph):
    """SPAR's edge-streaming placement over the whole social graph."""

    def build():
        from repro.store.memory import MemoryBudget
        from repro.traffic.accounting import TrafficAccountant

        topology = TreeTopology(SPEC)
        strategy = SparPlacement(seed=17)
        budget = MemoryBudget(views=graph.num_users, extra_memory_pct=50.0, servers=len(topology.servers))
        strategy.bind(topology, graph, TrafficAccountant(topology), budget, seed=17)
        strategy.build_initial_placement()
        return strategy

    strategy = benchmark.pedantic(build, iterations=1, rounds=2)
    assert strategy.replication_factor() > 1.0


def run_dynasore(graph, log, config: DynaSoReConfig):
    simulator = ClusterSimulator(
        TreeTopology(SPEC),
        graph.copy(),
        DynaSoRe(initializer="hmetis", config=config, seed=17),
        SimulationConfig(extra_memory_pct=50.0, seed=17),
    )
    return simulator.run(log)


def test_dynasore_request_throughput(benchmark, graph, short_log):
    """End-to-end DynaSoRe execution speed (requests per second)."""
    result = benchmark.pedantic(
        run_dynasore, args=(graph, short_log, DynaSoReConfig()), iterations=1, rounds=1
    )
    assert result.requests_executed == len(short_log)


def test_ablation_disable_proxy_migration(benchmark, graph, short_log):
    """Ablation: proxy migration off → traffic must not improve."""
    baseline = run_dynasore(graph, short_log, DynaSoReConfig())
    ablated = benchmark.pedantic(
        run_dynasore,
        args=(graph, short_log, DynaSoReConfig(enable_proxy_migration=False)),
        iterations=1,
        rounds=1,
    )
    assert ablated.top_switch_traffic >= baseline.top_switch_traffic * 0.85


def test_ablation_disable_view_migration(benchmark, graph, short_log):
    """Ablation: Algorithm 3 off → replication alone must still work."""
    result = benchmark.pedantic(
        run_dynasore,
        args=(graph, short_log, DynaSoReConfig(enable_view_migration=False)),
        iterations=1,
        rounds=1,
    )
    assert result.replication_factor >= 1.0
    assert result.memory_in_use >= graph.num_users
