"""Batched vs per-event stream-replay benchmarks (the chunk-native kernels).

Two headline numbers guard the batched request-execution layer, plus a
consolidated ``BENCH_PR5.json`` dropped at the repository root so the
performance trajectory of the batching work is tracked across PRs:

* ``test_bench_batched_kernel_speedup`` replays an identical pre-built
  stream through the replication-free strategies (a static baseline and
  SPAR) with batched and per-event dispatch.  These strategies isolate the
  dispatch pipeline itself — run segmentation, fused kernels, aggregated
  traffic accounting — so the floor is strict: **>= 1.5x** by default
  (3-4.5x measured on quiet hardware).

* ``test_bench_batched_dynasore_speedup`` measures the DynaSoRe engine on
  a steady-state, read-dominant replay: the placement is first converged
  on an untimed warm-up half of the trace, then the tail is replayed
  batched and per-event in interleaved best-of rounds.  DynaSoRe runs
  Algorithm 2/3 on *every* read (the paper's cadence) and byte-identity
  pins that decision work to be identical on both paths, so it bounds the
  achievable dispatch speedup; **>= 1.5x is the quiet-hardware acceptance
  bar** (~1.45-1.55x measured on a shared builder), and the enforced
  default floor is 1.35x so machine noise cannot flake the suite (CI sets
  tolerant floors through the environment, as with every other benchmark).

Both comparisons assert byte-identical results first — speed is never
bought with drift.
"""

from __future__ import annotations

import dataclasses
import gc
import json
import os
import pickle
import time
from pathlib import Path

from repro.config import ClusterSpec, DynaSoReConfig, SimulationConfig
from repro.runtime.spec import build_strategy
from repro.simulator.engine import ClusterSimulator
from repro.socialgraph.generators import dataset_preset, generate_social_graph
from repro.topology.tree import TreeTopology
from repro.workload.stream import EventChunk, EventStream
from repro.workload.synthetic import SyntheticWorkloadConfig, SyntheticWorkloadGenerator

#: Floor of the replication-free kernel comparison (static + SPAR).
MIN_KERNEL_SPEEDUP = float(os.environ.get("BATCHING_BENCH_MIN_KERNEL_SPEEDUP", "1.5"))

#: Enforced floor of the DynaSoRe steady-state comparison.  1.5x is the
#: acceptance bar on quiet hardware; the default keeps noise headroom.
MIN_DYNASORE_SPEEDUP = float(os.environ.get("BATCHING_BENCH_MIN_SPEEDUP", "1.35"))

#: Interleaved rounds per path (each path takes its best round).
ROUNDS = 3

#: Consolidated metrics file at the repository root.
BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_PR5.json"

_CLUSTER = ClusterSpec(
    intermediate_switches=4,
    racks_per_intermediate=2,
    machines_per_rack=4,
    brokers_per_rack=1,
)


def _record_metrics(section: str, payload: dict) -> None:
    """Merge one benchmark's metrics into ``BENCH_PR5.json``."""
    data: dict = {}
    if BENCH_FILE.exists():
        try:
            data = json.loads(BENCH_FILE.read_text())
        except (OSError, ValueError):
            data = {}
    data[section] = payload
    data["generated_at"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _split_workload(users: int, days: float, read_write_ratio: float):
    """Pre-built (warm, tail) streams of one synthetic trace."""
    graph = generate_social_graph(dataset_preset("twitter", users=users), seed=7)
    rows = []
    config = SyntheticWorkloadConfig(days=days, seed=7, read_write_ratio=read_write_ratio)
    for chunk in SyntheticWorkloadGenerator(graph, config).stream().chunks():
        rows.extend(chunk.rows())
    half = len(rows) // 2

    def pack(subset) -> EventStream:
        chunk = EventChunk()
        for row in subset:
            chunk.append(*row)
        return EventStream.from_chunks([chunk])

    return pack(rows[:half]), pack(rows[half:])


def _canonical(result) -> bytes:
    return pickle.dumps(dataclasses.asdict(result), protocol=4)


def _timed_replay(strategy_key, users, warm, tail, batch, dynasore_config=None):
    """Warm the placement on ``warm`` untimed, then time the ``tail`` replay."""
    topology = TreeTopology(_CLUSTER)
    graph = generate_social_graph(dataset_preset("twitter", users=users), seed=7)
    strategy = build_strategy(strategy_key, 7, dynasore_config or DynaSoReConfig())
    simulator = ClusterSimulator(
        topology,
        graph,
        strategy,
        config=SimulationConfig(extra_memory_pct=60.0, seed=7, batch_replay=batch),
    )
    simulator.prepare()
    if warm is not None:
        simulator.run(warm)
    gc.collect()
    gc.disable()
    try:
        started = time.process_time()
        result = simulator.run(tail)
        elapsed = time.process_time() - started
    finally:
        gc.enable()
    return result, elapsed


def test_bench_batched_kernel_speedup(benchmark):
    """Batched vs per-event dispatch on the replication-free kernels."""
    warm, tail = _split_workload(users=2500, days=1.0, read_write_ratio=4.0)
    metrics = {}
    worst = None
    for strategy_key in ("hmetis", "spar"):
        batched_result, first_batched = _timed_replay(
            strategy_key, 2500, warm, tail, batch=True
        )
        per_event_result, first_per_event = _timed_replay(
            strategy_key, 2500, warm, tail, batch=False
        )
        assert _canonical(batched_result) == _canonical(per_event_result)
        batched_times = [first_batched]
        per_event_times = [first_per_event]
        for _ in range(ROUNDS - 1):
            batched_times.append(
                _timed_replay(strategy_key, 2500, warm, tail, batch=True)[1]
            )
            per_event_times.append(
                _timed_replay(strategy_key, 2500, warm, tail, batch=False)[1]
            )
        events = batched_result.requests_executed
        speedup = min(per_event_times) / min(batched_times)
        metrics[strategy_key] = {
            "events": events,
            "batched_events_per_sec": round(events / min(batched_times)),
            "per_event_events_per_sec": round(events / min(per_event_times)),
            "speedup": round(speedup, 3),
        }
        if worst is None or speedup < worst:
            worst = speedup
    benchmark.extra_info.update(metrics)
    _record_metrics("kernel_dispatch", metrics)
    benchmark.pedantic(
        lambda: _timed_replay("hmetis", 2500, warm, tail, batch=True),
        iterations=1,
        rounds=1,
    )
    assert worst >= MIN_KERNEL_SPEEDUP, (
        f"batched kernel dispatch speedup {worst:.2f}x is below the "
        f"{MIN_KERNEL_SPEEDUP}x floor ({metrics})"
    )


def test_bench_batched_dynasore_speedup(benchmark):
    """Batched vs per-event DynaSoRe replay on a converged placement."""
    warm, tail = _split_workload(users=2500, days=1.0, read_write_ratio=19.0)

    batched_result, first_batched = _timed_replay(
        "dynasore_hmetis", 2500, warm, tail, batch=True
    )
    per_event_result, first_per_event = _timed_replay(
        "dynasore_hmetis", 2500, warm, tail, batch=False
    )
    assert _canonical(batched_result) == _canonical(per_event_result)

    batched_times = [first_batched]
    per_event_times = [first_per_event]
    for _ in range(ROUNDS - 1):
        batched_times.append(
            _timed_replay("dynasore_hmetis", 2500, warm, tail, batch=True)[1]
        )
        per_event_times.append(
            _timed_replay("dynasore_hmetis", 2500, warm, tail, batch=False)[1]
        )

    events = batched_result.requests_executed
    best_batched = min(batched_times)
    best_per_event = min(per_event_times)
    speedup = best_per_event / best_batched
    metrics = {
        "events": events,
        "batched_events_per_sec": round(events / best_batched),
        "per_event_events_per_sec": round(events / best_per_event),
        "speedup": round(speedup, 3),
        "acceptance_bar_quiet_hardware": 1.5,
        "enforced_floor": MIN_DYNASORE_SPEEDUP,
    }
    benchmark.extra_info.update(metrics)
    _record_metrics("dynasore_stream_replay", metrics)
    benchmark.pedantic(
        lambda: _timed_replay("dynasore_hmetis", 2500, warm, tail, batch=True),
        iterations=1,
        rounds=1,
    )
    assert speedup >= MIN_DYNASORE_SPEEDUP, (
        f"batched DynaSoRe replay {events / best_batched:,.0f} ev/s vs per-event "
        f"{events / best_per_event:,.0f} ev/s — speedup {speedup:.2f}x is below "
        f"the {MIN_DYNASORE_SPEEDUP}x floor"
    )
