"""Shared fixtures of the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures at a
reduced scale (the ``ci`` experiment profile, further shortened where the
experiment is expensive) and asserts the *shape* of the result — who wins,
roughly by how much, and in which direction curves move — rather than the
paper's absolute numbers, which depend on cluster and graph scale.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import ExperimentProfile


@pytest.fixture(scope="session")
def bench_profile() -> ExperimentProfile:
    """CI-scale profile used by every benchmark."""
    return ExperimentProfile.ci()


@pytest.fixture(scope="session")
def quick_profile() -> ExperimentProfile:
    """Shorter variant for the most expensive sweeps (memory sweeps, traces)."""
    ci = ExperimentProfile.ci()
    return dataclasses.replace(
        ci,
        users={"twitter": 400, "facebook": 500, "livejournal": 600},
        synthetic_days=0.75,
        trace_days=1.5,
        memory_sweep=(0.0, 30.0, 100.0),
        flash_repetitions=2,
    )


@pytest.fixture(scope="session")
def scenario_profile() -> ExperimentProfile:
    """Short profile for the fault-path benchmarks (scenario subsystem).

    Crash recovery and churn add strategy-side evacuation work on top of
    the replay, so the fault benchmarks run on a slightly smaller graph
    than the plain ``ci`` profile to keep the suite fast.
    """
    ci = ExperimentProfile.ci()
    return dataclasses.replace(
        ci,
        users={"twitter": 400, "facebook": 500, "livejournal": 600},
        synthetic_days=0.75,
    )


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def _run(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, iterations=1, rounds=1)

    return _run
