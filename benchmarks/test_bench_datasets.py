"""Benchmark for Table 1 — dataset generation (users and links)."""

from __future__ import annotations

from repro.experiments.datasets import run_table1


def test_table1_datasets(run_once, bench_profile):
    """Generate the three scaled datasets and check Table 1's shape:
    Twitter is the sparsest graph, LiveJournal has the most users."""
    rows = run_once(run_table1, bench_profile)
    by_name = {row.dataset: row for row in rows}
    assert set(by_name) == {"twitter", "facebook", "livejournal"}
    # Density ordering of the paper's Table 1: Twitter ~2.9 links/user,
    # Facebook ~15.7, LiveJournal ~14.4.
    twitter_density = by_name["twitter"].generated_links / by_name["twitter"].generated_users
    facebook_density = by_name["facebook"].generated_links / by_name["facebook"].generated_users
    assert twitter_density < facebook_density
    # User counts follow the profile's scaling of the paper's ordering.
    assert by_name["livejournal"].generated_users >= by_name["twitter"].generated_users
