"""Smoke benchmarks of the array-backed placement-state layer.

Three headline numbers guard the struct-of-arrays refactor:

* ``test_bench_dynasore_replay_speedup`` replays the identical pre-built
  event stream through the table-backed DynaSoRe engine and through the
  frozen seed object path (:mod:`repro.legacy`), interleaved over several
  rounds with each path taking its best round so a noisy-neighbour spike
  cannot flip the comparison.  The table path must be at least **1.3x**
  faster (the acceptance bar on quiet hardware; CI sets a tolerant floor
  through ``STRATEGY_BENCH_MIN_SPEEDUP``), and both paths are asserted
  byte-identical first — the speed is never bought with drift.

* ``test_bench_placement_state_memory_1m`` builds the placement state of
  **one million users** in both representations — the seed world of
  per-server ``ViewReplica`` dicts plus the engine's user→positions set
  map, against one shared :class:`~repro.store.tables.ReplicaTable` — and
  compares ``tracemalloc`` peaks.  The table must hold at least **3x**
  less memory (measured ≈4.5x; ``STRATEGY_BENCH_MIN_MEMORY_RATIO``
  overrides in CI).

* ``test_bench_strategy_events_per_sec`` records end-to-end replay
  events/sec for every strategy of the paper on the table path, so the
  per-strategy throughput trajectory is tracked across PRs through the
  uploaded pytest-benchmark JSON.
"""

from __future__ import annotations

import dataclasses
import gc
import os
import pickle
import time
import tracemalloc

import pytest

from repro.config import ClusterSpec, DynaSoReConfig, SimulationConfig
from repro.legacy import build_legacy_strategy
from repro.legacy.server import LegacyStorageServer
from repro.runtime.spec import STRATEGY_KEYS, build_strategy
from repro.simulator.engine import ClusterSimulator
from repro.socialgraph.generators import dataset_preset, generate_social_graph
from repro.store.tables import ReplicaTable
from repro.topology.tree import TreeTopology
from repro.workload.stream import EventStream
from repro.workload.synthetic import SyntheticWorkloadConfig, SyntheticWorkloadGenerator

#: Required table-vs-object replay speedup.  1.3x is the acceptance bar on
#: a quiet machine (~1.4x measured); CI sets the environment variable to a
#: tolerant floor so noisy shared runners cannot spuriously fail builds
#: while still catching a table path that regresses below the object path.
MIN_SPEEDUP = float(os.environ.get("STRATEGY_BENCH_MIN_SPEEDUP", "1.3"))

#: Required object-vs-table peak-memory ratio at one million users.
#: Memory measurement is deterministic, so the default floor carries less
#: headroom than the timing one (≈4.5x measured).
MIN_MEMORY_RATIO = float(os.environ.get("STRATEGY_BENCH_MIN_MEMORY_RATIO", "3.0"))

#: Interleaved rounds per path in the speedup benchmark.
ROUNDS = 5

#: Users / simulated days of the replay benchmarks.
REPLAY_USERS = 8_000
REPLAY_DAYS = 0.4

#: Scale of the placement-state memory benchmark (the acceptance scale).
MEMORY_USERS = 1_000_000
MEMORY_SERVERS = 64


def _topology() -> TreeTopology:
    return TreeTopology(
        ClusterSpec(
            intermediate_switches=4,
            racks_per_intermediate=2,
            machines_per_rack=4,
            brokers_per_rack=1,
        )
    )


def _materialised_stream(users: int, days: float) -> EventStream:
    """Pre-built chunks so the benchmark times replay, not generation."""
    graph = generate_social_graph(dataset_preset("twitter", users=users), seed=7)
    config = SyntheticWorkloadConfig(days=days, seed=7)
    chunks = list(SyntheticWorkloadGenerator(graph, config).stream().chunks())
    return EventStream(lambda: iter(chunks))


def _replay(strategy_key: str, stream: EventStream, users: int, legacy: bool):
    """One full simulator replay; returns (result, replay_cpu_seconds).

    Timed with ``process_time`` and with the cyclic collector paused so a
    noisy co-tenant or an unlucky GC pause cannot skew the comparison —
    both paths allocate, and both are measured under identical rules.
    """
    topology = _topology()
    graph = generate_social_graph(dataset_preset("twitter", users=users), seed=7)
    build = build_legacy_strategy if legacy else build_strategy
    strategy = build(strategy_key, 7, DynaSoReConfig())
    simulator = ClusterSimulator(
        topology, graph, strategy, config=SimulationConfig(extra_memory_pct=60.0, seed=7)
    )
    simulator.prepare()
    gc.collect()
    gc.disable()
    try:
        started = time.process_time()
        result = simulator.run(stream)
        elapsed = time.process_time() - started
    finally:
        gc.enable()
    return result, elapsed


def _canonical(result) -> bytes:
    return pickle.dumps(dataclasses.asdict(result), protocol=4)


def test_bench_dynasore_replay_speedup(benchmark):
    """Table-backed DynaSoRe vs the seed object path on identical replays."""
    stream = _materialised_stream(REPLAY_USERS, REPLAY_DAYS)

    # Identity first: the comparison is meaningless if the paths drift.
    table_result, first_table = _replay("dynasore_hmetis", stream, REPLAY_USERS, legacy=False)
    legacy_result, first_legacy = _replay("dynasore_hmetis", stream, REPLAY_USERS, legacy=True)
    assert _canonical(table_result) == _canonical(legacy_result)

    table_times = [first_table]
    legacy_times = [first_legacy]
    for _ in range(ROUNDS - 1):
        table_times.append(_replay("dynasore_hmetis", stream, REPLAY_USERS, legacy=False)[1])
        legacy_times.append(_replay("dynasore_hmetis", stream, REPLAY_USERS, legacy=True)[1])

    events = table_result.requests_executed
    best_table = min(table_times)
    best_legacy = min(legacy_times)
    speedup = best_legacy / best_table
    benchmark.extra_info.update(
        {
            "events": events,
            "table_events_per_sec": round(events / best_table),
            "legacy_events_per_sec": round(events / best_legacy),
            "speedup": round(speedup, 3),
        }
    )
    # One representative timed round for the benchmark JSON.
    benchmark.pedantic(
        lambda: _replay("dynasore_hmetis", stream, REPLAY_USERS, legacy=False),
        iterations=1,
        rounds=1,
    )
    assert speedup >= MIN_SPEEDUP, (
        f"table path {events / best_table:,.0f} ev/s vs object path "
        f"{events / best_legacy:,.0f} ev/s — speedup {speedup:.2f}x "
        f"is below the {MIN_SPEEDUP}x floor"
    )


@pytest.mark.parametrize("strategy_key", STRATEGY_KEYS)
def test_bench_strategy_events_per_sec(benchmark, strategy_key):
    """End-to-end replay events/sec of every strategy on the table path."""
    stream = _materialised_stream(2_000, 0.5)

    def once():
        return _replay(strategy_key, stream, 2_000, legacy=False)

    result, elapsed = benchmark.pedantic(once, iterations=1, rounds=1)
    assert result.requests_executed > 0
    assert result.unavailable_views == 0
    benchmark.extra_info["events_per_sec"] = round(result.requests_executed / elapsed)


def _build_table_state() -> ReplicaTable:
    """One shared flat table holding a million single-replica views."""
    table = ReplicaTable(positions=MEMORY_SERVERS, counter_slots=24, counter_period=3600.0)
    per_server = MEMORY_USERS // MEMORY_SERVERS + 1
    for position in range(MEMORY_SERVERS):
        table.set_capacity(position, per_server)
    for user in range(MEMORY_USERS):
        table.allocate(user, user % MEMORY_SERVERS)
    return table


def _build_object_state():
    """The seed representation: ViewReplica dicts + user→positions sets."""
    servers = [
        LegacyStorageServer(position, MEMORY_USERS // MEMORY_SERVERS + 1)
        for position in range(MEMORY_SERVERS)
    ]
    replica_positions: dict[int, set[int]] = {}
    for user in range(MEMORY_USERS):
        position = user % MEMORY_SERVERS
        servers[position].add_replica(user, write_proxy_broker=position)
        replica_positions[user] = {position}
    return servers, replica_positions


def test_bench_placement_state_memory_1m(benchmark):
    """Peak placement-state memory at one million users, both layouts."""

    def measure(builder):
        gc.collect()
        tracemalloc.start()
        state = builder()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        del state
        gc.collect()
        return peak

    table_peak = benchmark.pedantic(measure, args=(_build_table_state,), iterations=1, rounds=1)
    object_peak = measure(_build_object_state)
    ratio = object_peak / table_peak
    benchmark.extra_info.update(
        {
            "users": MEMORY_USERS,
            "table_peak_mb": round(table_peak / 1e6, 1),
            "object_peak_mb": round(object_peak / 1e6, 1),
            "memory_ratio": round(ratio, 2),
        }
    )
    assert ratio >= MIN_MEMORY_RATIO, (
        f"table {table_peak / 1e6:.0f} MB vs object {object_peak / 1e6:.0f} MB — "
        f"{ratio:.2f}x is below the {MIN_MEMORY_RATIO}x floor"
    )
