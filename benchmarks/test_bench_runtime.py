"""Smoke benchmarks of the experiment runtime and the simulator hot path.

``test_bench_single_run_throughput`` is the headline number of the hot-path
rewrite (precomputed switch-path tables, the flat traffic accountant, the
type-dispatched replay loop and the amortised utility estimation): it runs
one DynaSoRe simulation at CI scale and records **requests per second** in
the benchmark's ``extra_info``, so the perf trajectory of the replay loop
is visible across commits.  At the time this benchmark was added the
rewrite measured ~2x the pre-refactor single-run throughput on the same
machine.

The grid benchmark exercises the declarative path end to end (spec
expansion -> executor -> results) the way every figure/table experiment now
runs.
"""

from __future__ import annotations

from repro.config import SimulationConfig
from repro.experiments.common import (
    graph_spec,
    synthetic_workload_spec,
    topology_spec,
)
from repro.runtime import RunGrid, RunSpec, RuntimeExecutor, execute_spec


def _single_run_spec(profile) -> RunSpec:
    return RunSpec(
        topology=topology_spec(profile),
        graph=graph_spec(profile, "facebook"),
        workload=synthetic_workload_spec(profile),
        strategy="dynasore_hmetis",
        config=SimulationConfig(extra_memory_pct=50.0, seed=profile.seed),
    )


def test_bench_single_run_throughput(bench_profile, benchmark):
    """Single-run simulator throughput (requests/sec) at CI scale."""
    spec = _single_run_spec(bench_profile)
    result = benchmark.pedantic(execute_spec, args=(spec,), iterations=1, rounds=3)
    seconds = benchmark.stats.stats.min
    benchmark.extra_info["requests"] = result.requests_executed
    benchmark.extra_info["requests_per_second"] = round(
        result.requests_executed / seconds
    )
    assert result.requests_executed > 0
    assert result.top_switch_traffic > 0


def test_bench_grid_execution(quick_profile, run_once):
    """Declarative grid fan-out through the executor (serial backend)."""
    grid = RunGrid.product(
        topology_spec(quick_profile),
        graph_spec(quick_profile, "facebook"),
        synthetic_workload_spec(quick_profile),
        [
            SimulationConfig(extra_memory_pct=memory, seed=quick_profile.seed)
            for memory in (0.0, 100.0)
        ],
        ("random", "dynasore_hmetis"),
    )
    results = run_once(RuntimeExecutor().run, grid.specs)
    assert len(results) == 4
    by_strategy = {
        (spec.strategy, spec.config.extra_memory_pct): result
        for spec, result in zip(grid.specs, results)
    }
    # Shape check: with memory, DynaSoRe beats Random at the top switch.
    assert (
        by_strategy[("dynasore_hmetis", 100.0)].top_switch_traffic
        < by_strategy[("random", 100.0)].top_switch_traffic
    )
