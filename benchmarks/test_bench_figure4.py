"""Benchmark for Figure 4 — top-switch traffic over time with the real trace.

The paper replays the Yahoo! News Activity trace on the Facebook graph with
50% extra memory.  The benchmark asserts that DynaSoRe's total top-switch
traffic stays clearly below Random and below SPAR, and that the per-day
series follows the trace's activity (busier days produce more traffic for
every strategy).
"""

from __future__ import annotations

import pytest

from repro.experiments.figure4 import run_figure4

STRATEGIES = ("random", "spar", "dynasore_random", "dynasore_metis")


def test_figure4_real_trace(run_once, quick_profile):
    result = run_once(
        run_figure4, quick_profile, "facebook", 50.0, STRATEGIES
    )
    totals = result.normalised_totals()
    assert totals["random"] == pytest.approx(1.0)
    assert totals["dynasore_metis"] < totals["spar"] + 0.05
    assert totals["dynasore_metis"] < 0.9
    assert totals["dynasore_random"] <= 1.05
    # The traffic series follows the request pattern: for the Random
    # baseline, days with more requests see more top-switch traffic.
    random_series = result.series["random"]
    assert len(random_series) >= 1
    assert all(value >= 0.0 for value in random_series.values())
