"""Benchmarks for Tables 2 and 3 — per-level switch traffic.

The paper reports, for 30% and 150% extra memory, the average traffic of
top, intermediate and rack switches under DynaSoRe (from hMETIS) and SPAR,
normalised by Random.  The benchmarks assert the shape: DynaSoRe is below
SPAR at every level, the top switch benefits the most and rack switches the
least, and 150% extra memory improves on 30%.
"""

from __future__ import annotations

from repro.experiments.tables import run_switch_traffic_table

DATASETS = ("facebook",)


def test_table2_switch_traffic_30pct(run_once, quick_profile):
    """Table 2: per-level switch traffic with 30% extra memory."""
    table = run_once(run_switch_traffic_table, quick_profile, 30.0, DATASETS)
    for dataset in DATASETS:
        for level in ("top", "intermediate", "rack"):
            dynasore = table.value(dataset, "dynasore_hmetis", level)
            spar = table.value(dataset, "spar", level)
            assert dynasore <= spar + 0.05, (dataset, level)
        # The reduction is strongest at the top of the tree (paper Table 2:
        # top ≈ .06, rack ≈ .59 for DynaSoRe).
        assert table.value(dataset, "dynasore_hmetis", "top") <= table.value(
            dataset, "dynasore_hmetis", "rack"
        ) + 0.05
        assert table.value(dataset, "dynasore_hmetis", "top") < 0.7


def test_table3_switch_traffic_150pct(run_once, quick_profile):
    """Table 3: per-level switch traffic with 150% extra memory."""
    table30 = run_switch_traffic_table(quick_profile, 30.0, DATASETS)
    table150 = run_once(run_switch_traffic_table, quick_profile, 150.0, DATASETS)
    for dataset in DATASETS:
        for level in ("top", "intermediate", "rack"):
            assert table150.value(dataset, "dynasore_hmetis", level) <= table150.value(
                dataset, "spar", level
            ) + 0.05
        # More memory lowers (or keeps) DynaSoRe's top-switch traffic
        # relative to the 30% configuration (paper: .07 → .01).
        assert (
            table150.value(dataset, "dynasore_hmetis", "top")
            <= table30.value(dataset, "dynasore_hmetis", "top") + 0.05
        )
