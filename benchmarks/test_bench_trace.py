"""Benchmark for Figure 2 — Yahoo! News Activity style trace generation."""

from __future__ import annotations

from repro.experiments.figure2 import run_figure2, trace_summary


def test_figure2_trace_activity(run_once, bench_profile):
    """Generate the trace and check Figure 2's shape: a write-heavy trace
    (the paper has 17M writes vs 9.8M reads) with day-to-day variation."""
    series = run_once(run_figure2, bench_profile)
    summary = trace_summary(series)
    assert summary["total_writes"] > summary["total_reads"]
    ratio = summary["total_writes"] / max(summary["total_reads"], 1.0)
    assert 1.2 <= ratio <= 2.6  # paper: 17 / 9.8 ≈ 1.73
    # Day-to-day variation exists (the busiest day is visibly busier).
    daily_totals = [day.reads + day.writes for day in series]
    assert max(daily_totals) > 1.1 * min(daily_totals)
