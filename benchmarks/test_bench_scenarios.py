"""Smoke benchmark of the fault path: crash-and-recover comparison.

Tracks the cost of running the figure-7 scenario (server crashes with
WAL-driven recovery, rejoin, re-convergence) from this PR onward, so a
regression in the evacuation/recovery hot path shows up in the benchmark
history.  Like the other benchmarks it asserts the *shape* of the result:
everyone fully recovers, and DynaSoRe beats the Random baseline on traffic
even while paying for recovery.
"""

from __future__ import annotations

from repro.experiments.figure7 import run_figure7


def test_bench_figure7_crash_recover(run_once, scenario_profile):
    result = run_once(
        run_figure7,
        scenario_profile,
        dataset="facebook",
        extra_memory_pct=50.0,
        crashes=2,
    )
    assert set(result.outcomes) == {"random", "spar", "dynasore_hmetis"}
    for label, outcome in result.outcomes.items():
        assert outcome.fully_recovered, f"{label} failed to recover"
    # The Random baseline keeps one replica per view: every crashed view
    # goes through the persistent store.
    assert result.outcomes["random"].memory_recovery_fraction == 0.0
    # DynaSoRe's replication keeps it cheaper than Random despite the
    # recovery traffic, and lets part of the crash recover from memory.
    dynasore = result.outcomes["dynasore_hmetis"]
    assert dynasore.normalised_traffic < 1.0
    assert dynasore.views_recovered_from_memory > 0
