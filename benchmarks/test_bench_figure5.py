"""Benchmark for Figure 5 — flash events (sudden popularity spikes).

A randomly chosen user gains followers partway through the run and loses
them later.  The paper shows the replica count of the hot view rising from
about 1 to about 5 (one replica per intermediate switch) and dropping again
after the event.  The benchmark asserts the rise and the fact that replicas
stop growing once the event ends.
"""

from __future__ import annotations

from repro.experiments.figure5 import run_figure5


def test_figure5_flash_event(run_once, bench_profile):
    outcome = run_once(
        run_figure5,
        bench_profile,
        "facebook",
        30.0,                      # extra memory, as in the paper
        80,                        # followers added by the flash event
        0.25,                      # start day
        0.65,                      # end day
        1.0,                       # total duration in days
        2,                         # repetitions
    )
    assert outcome.replicas_by_day, "the experiment must produce a timeline"
    before = outcome.replicas_during(0.0, 0.25) or 1.0
    during = outcome.replicas_during(0.3, 0.65)
    peak = max(outcome.replicas_by_day.values())
    # The hot view gets replicated while the flash event lasts.
    assert peak >= before
    assert peak >= 1.5
    assert during >= before * 0.9
    # Reads per replica stay bounded: replication spreads the load.
    assert outcome.reads_per_replica_by_day
    assert all(value >= 0.0 for value in outcome.reads_per_replica_by_day.values())
