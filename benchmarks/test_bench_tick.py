"""Batched vs per-slot maintenance-tick benchmarks (the column sweep).

Two numbers guard the array-native tick and land in ``BENCH_PR6.json`` at
the repository root so the performance trajectory stays tracked across
PRs:

* ``test_bench_tick_stream_replay`` replays the converged DynaSoRe
  workload of the PR 5 benchmark (identical trace shape, cluster and
  seed) with the batched column sweep and with the per-slot reference
  tick, asserting byte-identical results first.  **The enforced floor
  compares the two paths measured in the same run**: the batched sweep
  must stay at least within noise of the per-slot reference
  (``TICK_BENCH_MIN_SPEEDUP_VS_REFERENCE``, default 0.95; ~1.03x
  measured — most of the tick win shows on the quiet-sweep benchmark
  below, since a traffic-heavy replay dirties most slots anyway).  The
  recorded PR 5 number (``BENCH_PR5.json``'s
  ``dynasore_stream_replay.batched_events_per_sec`` = 13,643 at the PR 5
  merge) is **informational metadata only**: it was measured on
  different hardware, so a cross-machine ratio can assert nothing — an
  earlier revision enforced a floor against it and would have passed or
  failed on CPU model alone.

* ``test_bench_quiet_tick_sweep`` times hourly maintenance ticks over a
  converged placement with *no traffic in between* — the steady state the
  dirty-set tracking is built for.  The batched sweep skips clean,
  unexpired positions entirely (no rotation, no pricing, no threshold
  recompute) while the reference path re-prices every replica each tick,
  so the gap is wide: **>= 2x enforced** (an order of magnitude measured
  on quiet hardware).  Utility columns are asserted equal afterwards —
  skipping is only legal because the skipped values are provably
  unchanged.

Both comparisons assert identity before timing — speed is never bought
with drift.
"""

from __future__ import annotations

import dataclasses
import gc
import json
import os
import pickle
import time
from pathlib import Path

from repro.config import ClusterSpec, DynaSoReConfig, SimulationConfig
from repro.constants import HOUR
from repro.runtime.spec import build_strategy
from repro.simulator.engine import ClusterSimulator
from repro.socialgraph.generators import dataset_preset, generate_social_graph
from repro.topology.tree import TreeTopology
from repro.workload.stream import EventChunk, EventStream
from repro.workload.synthetic import SyntheticWorkloadConfig, SyntheticWorkloadGenerator

#: Recorded PR 5 baseline of the converged DynaSoRe stream replay
#: (``BENCH_PR5.json`` at the PR 5 merge).  Informational only — it was
#: measured on *different hardware*, so no floor is enforced against it;
#: the enforced comparison is batched vs per-slot measured in the same run.
PR5_BASELINE_EVENTS_PER_SEC = 13_643

#: Enforced floor of batched events/sec over the per-slot reference path
#: *measured in the same run*.  The batched sweep must never be slower
#: beyond noise (~1.03x measured on quiet hardware).
MIN_REPLAY_SPEEDUP_VS_REFERENCE = float(
    os.environ.get("TICK_BENCH_MIN_SPEEDUP_VS_REFERENCE", "0.95")
)

#: Enforced floor of the quiet-tick sweep comparison (skip vs re-price).
MIN_SWEEP_SPEEDUP = float(os.environ.get("TICK_BENCH_MIN_SWEEP_SPEEDUP", "2.0"))

#: Interleaved rounds per path (each path takes its best round).
ROUNDS = 3

#: Hourly quiet ticks timed per round (within one 24-slot counter window,
#: so no history drops and the utility columns must stay frozen).
QUIET_TICKS = 12

#: Consolidated metrics file at the repository root.
BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_PR6.json"

_CLUSTER = ClusterSpec(
    intermediate_switches=4,
    racks_per_intermediate=2,
    machines_per_rack=4,
    brokers_per_rack=1,
)


def _record_metrics(section: str, payload: dict) -> None:
    """Merge one benchmark's metrics into ``BENCH_PR6.json``."""
    data: dict = {}
    if BENCH_FILE.exists():
        try:
            data = json.loads(BENCH_FILE.read_text())
        except (OSError, ValueError):
            data = {}
    data[section] = payload
    data["generated_at"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _split_workload(users: int, days: float, read_write_ratio: float):
    """Pre-built (warm, tail) streams of one synthetic trace."""
    graph = generate_social_graph(dataset_preset("twitter", users=users), seed=7)
    rows = []
    config = SyntheticWorkloadConfig(days=days, seed=7, read_write_ratio=read_write_ratio)
    for chunk in SyntheticWorkloadGenerator(graph, config).stream().chunks():
        rows.extend(chunk.rows())
    half = len(rows) // 2

    def pack(subset) -> EventStream:
        chunk = EventChunk()
        for row in subset:
            chunk.append(*row)
        return EventStream.from_chunks([chunk])

    return pack(rows[:half]), pack(rows[half:])


def _canonical(result) -> bytes:
    return pickle.dumps(dataclasses.asdict(result), protocol=4)


def _timed_replay(batch_tick: bool, warm, tail):
    """Warm the placement on ``warm`` untimed, then time the ``tail`` replay.

    Returns ``(strategy, result, elapsed)`` so the quiet-tick benchmark can
    reuse the converged placement.
    """
    topology = TreeTopology(_CLUSTER)
    graph = generate_social_graph(dataset_preset("twitter", users=2500), seed=7)
    strategy = build_strategy("dynasore_hmetis", 7, DynaSoReConfig())
    simulator = ClusterSimulator(
        topology,
        graph,
        strategy,
        config=SimulationConfig(extra_memory_pct=60.0, seed=7, batch_tick=batch_tick),
    )
    simulator.prepare()
    simulator.run(warm)
    gc.collect()
    gc.disable()
    try:
        started = time.process_time()
        result = simulator.run(tail)
        elapsed = time.process_time() - started
    finally:
        gc.enable()
    return strategy, result, elapsed


def test_bench_tick_stream_replay(benchmark):
    """Batched vs per-slot tick on the PR 5 converged DynaSoRe workload."""
    warm, tail = _split_workload(users=2500, days=1.0, read_write_ratio=19.0)

    _, batched_result, first_batched = _timed_replay(True, warm, tail)
    _, reference_result, first_reference = _timed_replay(False, warm, tail)
    assert _canonical(batched_result) == _canonical(reference_result)

    batched_times = [first_batched]
    reference_times = [first_reference]
    for _ in range(ROUNDS - 1):
        batched_times.append(_timed_replay(True, warm, tail)[2])
        reference_times.append(_timed_replay(False, warm, tail)[2])

    events = batched_result.requests_executed
    best_batched = min(batched_times)
    best_reference = min(reference_times)
    batched_events_per_sec = events / best_batched
    speedup_vs_reference = best_reference / best_batched
    metrics = {
        "events": events,
        "batched_events_per_sec": round(batched_events_per_sec),
        "reference_events_per_sec": round(events / best_reference),
        "speedup_vs_reference": round(speedup_vs_reference, 3),
        "enforced_floor_vs_reference": MIN_REPLAY_SPEEDUP_VS_REFERENCE,
        # Recorded on different hardware at the PR 5 merge — kept for
        # trajectory context only, never asserted against.
        "pr5_baseline_events_per_sec": PR5_BASELINE_EVENTS_PER_SEC,
        "pr5_baseline_recorded_on_different_hardware": True,
        "speedup_vs_pr5_baseline_informational": round(
            batched_events_per_sec / PR5_BASELINE_EVENTS_PER_SEC, 3
        ),
    }
    benchmark.extra_info.update(metrics)
    _record_metrics("dynasore_converged_replay", metrics)
    benchmark.pedantic(
        lambda: _timed_replay(True, warm, tail),
        iterations=1,
        rounds=1,
    )
    assert speedup_vs_reference >= MIN_REPLAY_SPEEDUP_VS_REFERENCE, (
        f"batched tick replay {batched_events_per_sec:,.0f} ev/s is "
        f"{speedup_vs_reference:.2f}x the per-slot reference measured in "
        f"this run ({events / best_reference:,.0f} ev/s), below the "
        f"{MIN_REPLAY_SPEEDUP_VS_REFERENCE}x floor"
    )


def test_bench_quiet_tick_sweep(benchmark):
    """Hourly no-traffic ticks: dirty-set skip vs per-slot full re-price."""
    warm, tail = _split_workload(users=2500, days=1.0, read_write_ratio=19.0)
    batched, batched_result, _ = _timed_replay(True, warm, tail)
    reference, reference_result, _ = _timed_replay(False, warm, tail)
    assert _canonical(batched_result) == _canonical(reference_result)

    def quiet_round(strategy) -> float:
        start = strategy._last_tick
        gc.collect()
        gc.disable()
        try:
            began = time.process_time()
            for step in range(1, QUIET_TICKS + 1):
                strategy.on_tick(start + step * HOUR)
            return time.process_time() - began
        finally:
            gc.enable()

    # One settling tick each: the run's final tick may evict, which
    # re-dirties positions; after it the placements are converged and the
    # timed rounds compare pure skip against pure re-price.  Both paths
    # tick through identical timestamps to keep the states comparable.
    batched_times = []
    reference_times = []
    for _ in range(ROUNDS):
        batched_times.append(quiet_round(batched))
        reference_times.append(quiet_round(reference))

    # Skipping was only legal if the skipped values are unchanged: after
    # 3 * 12 identical quiet ticks the utility columns must agree exactly.
    assert list(batched.tables._utility) == list(reference.tables._utility)
    assert batched.tables.admission_thresholds == reference.tables.admission_thresholds

    best_batched = min(batched_times)
    best_reference = min(reference_times)
    # A fully-skipped sweep round can be faster than the clock tick; guard
    # the ratio against a zero denominator without inflating the metric.
    speedup = best_reference / max(best_batched, 1e-9)
    metrics = {
        "quiet_ticks_per_round": QUIET_TICKS,
        "batched_sweep_seconds": round(best_batched, 6),
        "reference_sweep_seconds": round(best_reference, 6),
        "speedup": round(speedup, 1),
        "enforced_floor": MIN_SWEEP_SPEEDUP,
    }
    benchmark.extra_info.update(metrics)
    _record_metrics("quiet_tick_sweep", metrics)
    benchmark.pedantic(
        lambda: quiet_round(batched),
        iterations=1,
        rounds=1,
    )
    assert speedup >= MIN_SWEEP_SPEEDUP, (
        f"quiet-tick sweep speedup {speedup:.1f}x (batched {best_batched:.4f}s "
        f"vs reference {best_reference:.4f}s over {QUIET_TICKS} ticks) is "
        f"below the {MIN_SWEEP_SPEEDUP}x floor"
    )
