"""Smoke benchmarks of the columnar workload pipeline.

Two headline numbers guard the stream refactor:

* ``test_bench_workload_memory_1m`` generates and consumes a 1M-event
  synthetic workload through the chunked stream and through the legacy
  object-list path, recording both peak memories (``tracemalloc``).  The
  stream must hold at least **5x less** peak workload memory — in practice
  the gap is >30x, because the stream never holds more than one ~64k-event
  chunk while the object path materialises every event as a dataclass.

* ``test_bench_workload_replay_throughput`` measures end-to-end events/sec
  (generate + replay through the simulator) for both paths and asserts the
  streaming path is at least **1.3x** faster.  The configuration isolates
  the workload data path — the thing this benchmark guards — from the
  placement algorithm: a sparse twitter-like graph, a flat topology and the
  cheapest strategy keep per-event strategy work low, and the workload is
  write-heavy like the paper's News Activity trace.  Runs are interleaved
  and each path takes its best of three rounds, so a noisy-neighbour spike
  on shared hardware cannot flip the comparison; both paths are also
  asserted byte-identical, so the speed is never bought with drift.
"""

from __future__ import annotations

import gc
import os
import pickle
import time
import tracemalloc

from repro.config import FlatClusterSpec, SimulationConfig
from repro.runtime.spec import build_strategy
from repro.simulator.engine import ClusterSimulator
from repro.socialgraph.generators import dataset_preset, generate_social_graph
from repro.topology.flat import FlatTopology
from repro.workload.synthetic import SyntheticWorkloadConfig, SyntheticWorkloadGenerator

#: Event budget of the memory benchmark (the acceptance scale).
MEMORY_EVENTS = 1_000_000

#: Event budget of the throughput benchmark (kept smaller: it replays the
#: workload through the simulator several times).
REPLAY_EVENTS = 500_000

#: Interleaved rounds per path in the throughput benchmark.
ROUNDS = 3

#: Required streaming-vs-object speedup.  1.3x is the acceptance bar on a
#: quiet machine (~1.5x measured); CI sets the environment variable to a
#: tolerant floor so noisy shared runners cannot spuriously fail builds
#: while still catching a streaming path that regresses below the object
#: path.
MIN_SPEEDUP = float(os.environ.get("WORKLOAD_BENCH_MIN_SPEEDUP", "1.3"))


def test_bench_workload_memory_1m(benchmark):
    """Peak workload memory: 1M-event stream vs materialised object list."""
    graph = generate_social_graph(dataset_preset("twitter", users=2000), seed=7)
    generator = SyntheticWorkloadGenerator(
        graph, SyntheticWorkloadConfig(days=100.0, seed=7)  # 2000 * 5 * 100 = 1M
    )

    def measure():
        gc.collect()
        tracemalloc.start()
        events = 0
        for chunk in generator.stream().chunks():
            events += len(chunk)
        _, stream_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        gc.collect()
        tracemalloc.start()
        log = generator.generate()
        _, object_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert len(log) == events
        return events, stream_peak, object_peak

    events, stream_peak, object_peak = benchmark.pedantic(
        measure, iterations=1, rounds=1
    )
    benchmark.extra_info["events"] = events
    benchmark.extra_info["stream_peak_mb"] = round(stream_peak / 1e6, 2)
    benchmark.extra_info["object_peak_mb"] = round(object_peak / 1e6, 2)
    benchmark.extra_info["memory_ratio"] = round(object_peak / stream_peak, 1)
    assert events == MEMORY_EVENTS
    assert object_peak >= 5 * stream_peak, (
        f"stream peak {stream_peak / 1e6:.1f} MB is not 5x below "
        f"object peak {object_peak / 1e6:.1f} MB"
    )


def test_bench_workload_replay_throughput(benchmark):
    """End-to-end events/sec, object-list path vs streaming path."""
    graph = generate_social_graph(dataset_preset("twitter", users=2000), seed=7)
    generator = SyntheticWorkloadGenerator(
        graph,
        # 2000 users * 1.25 events/user/day * 200 days = 500k events.
        SyntheticWorkloadConfig(days=200.0, read_write_ratio=0.25, seed=7),
    )

    def replay(workload):
        simulator = ClusterSimulator(
            FlatTopology(FlatClusterSpec(machines=12)),
            graph.copy(),
            build_strategy("random", 7),
            SimulationConfig(extra_memory_pct=0.0, seed=7),
        )
        return simulator.run(workload)

    def measure():
        object_times = []
        stream_times = []
        object_result = stream_result = None
        for _ in range(ROUNDS):
            # Object-list path first in each pair: any cache/allocator
            # warm-up favours the baseline, never the streaming path.
            gc.collect()
            t0 = time.perf_counter()
            log = generator.generate()
            object_result = replay(log)
            object_times.append(time.perf_counter() - t0)
            del log

            gc.collect()
            t0 = time.perf_counter()
            stream_result = replay(generator.stream())
            stream_times.append(time.perf_counter() - t0)
        return object_result, min(object_times), stream_result, min(stream_times)

    object_result, object_seconds, stream_result, stream_seconds = benchmark.pedantic(
        measure, iterations=1, rounds=1
    )
    events = stream_result.requests_executed
    speedup = object_seconds / stream_seconds
    benchmark.extra_info["events"] = events
    benchmark.extra_info["object_events_per_second"] = round(events / object_seconds)
    benchmark.extra_info["stream_events_per_second"] = round(events / stream_seconds)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert events == REPLAY_EVENTS
    assert pickle.dumps(stream_result) == pickle.dumps(object_result)
    assert speedup >= MIN_SPEEDUP, (
        f"streaming replay is only {speedup:.2f}x the object-list path "
        f"({events / stream_seconds:,.0f} vs {events / object_seconds:,.0f} events/s)"
    )
