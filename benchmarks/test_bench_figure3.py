"""Benchmarks for Figure 3 — top-switch traffic versus extra memory.

One benchmark per sub-figure: Twitter / LiveJournal / Facebook on the tree
topology and Facebook on the flat topology.  Each benchmark runs the memory
sweep at reduced scale and asserts the qualitative shape of the paper's
curves:

* the Random baseline normalises to 1 at every memory point;
* DynaSoRe uses extra memory more efficiently than SPAR;
* a hierarchy-aware initial placement (hMETIS) dominates a random one;
* adding memory never hurts DynaSoRe;
* the DynaSoRe-vs-SPAR gap narrows (but persists) on the flat topology.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure3 import run_memory_sweep

TREE_STRATEGIES = ("random", "spar", "dynasore_random", "dynasore_hmetis")
FLAT_STRATEGIES = ("random", "spar", "dynasore_metis")
MEMORY_POINTS = (0.0, 30.0, 100.0)


def check_tree_shape(sweep):
    """Shared shape assertions for the tree-topology sub-figures."""
    for memory, values in sweep.points.items():
        assert values["random"] == pytest.approx(1.0)
        assert values["spar"] <= 1.10
        assert values["dynasore_hmetis"] <= values["spar"] + 0.05
    rich = sweep.points[100.0]
    lean = sweep.points[0.0]
    # With a real memory budget DynaSoRe clearly beats SPAR (paper: 94% vs
    # 42% reduction at 30%; here we only require a clear separation).
    assert rich["dynasore_hmetis"] < 0.8 * rich["spar"] + 0.05
    # More memory helps (or at least never hurts) DynaSoRe.
    assert rich["dynasore_hmetis"] <= lean["dynasore_hmetis"] + 0.05
    # Initial placement matters: hMETIS-initialised DynaSoRe beats
    # random-initialised DynaSoRe (paper section 4.4).
    assert rich["dynasore_hmetis"] <= rich["dynasore_random"] + 0.05


def test_figure3a_twitter(run_once, quick_profile):
    """Figure 3a: Twitter graph, tree topology."""
    sweep = run_once(
        run_memory_sweep,
        quick_profile,
        "twitter",
        flat=False,
        memory_points=MEMORY_POINTS,
        strategies=TREE_STRATEGIES,
    )
    check_tree_shape(sweep)


def test_figure3b_livejournal(run_once, quick_profile):
    """Figure 3b: LiveJournal graph, tree topology."""
    sweep = run_once(
        run_memory_sweep,
        quick_profile,
        "livejournal",
        flat=False,
        memory_points=MEMORY_POINTS,
        strategies=TREE_STRATEGIES,
    )
    check_tree_shape(sweep)


def test_figure3c_facebook(run_once, quick_profile):
    """Figure 3c: Facebook graph, tree topology."""
    sweep = run_once(
        run_memory_sweep,
        quick_profile,
        "facebook",
        flat=False,
        memory_points=MEMORY_POINTS,
        strategies=TREE_STRATEGIES,
    )
    check_tree_shape(sweep)


def test_figure3d_facebook_flat(run_once, quick_profile):
    """Figure 3d: Facebook graph, flat topology (section 4.5)."""
    sweep = run_once(
        run_memory_sweep,
        quick_profile,
        "facebook",
        flat=True,
        memory_points=(0.0, 100.0),
        strategies=FLAT_STRATEGIES,
    )
    for values in sweep.points.values():
        assert values["random"] == pytest.approx(1.0)
    rich = sweep.points[100.0]
    # DynaSoRe still beats SPAR on a flat network, although the gap is
    # smaller than on the tree topology (paper section 4.5).
    assert rich["dynasore_metis"] < rich["spar"] + 0.02
    assert rich["dynasore_metis"] < 1.0
