"""Tests for the configuration objects."""

from __future__ import annotations

import pytest

from repro.config import (
    ClusterSpec,
    DynaSoReConfig,
    ExperimentProfile,
    FlatClusterSpec,
    SimulationConfig,
)
from repro.exceptions import ConfigurationError


class TestClusterSpec:
    def test_paper_defaults(self):
        spec = ClusterSpec()
        assert spec.intermediate_switches == 5
        assert spec.racks_per_intermediate == 5
        assert spec.machines_per_rack == 10
        assert spec.total_racks == 25
        assert spec.total_servers == 225
        assert spec.total_brokers == 25

    def test_servers_per_rack_excludes_brokers(self):
        spec = ClusterSpec(machines_per_rack=10, brokers_per_rack=2)
        assert spec.servers_per_rack == 8

    def test_rejects_zero_intermediates(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(intermediate_switches=0)

    def test_rejects_rack_with_no_server(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(machines_per_rack=2, brokers_per_rack=2)

    def test_rejects_single_machine_rack(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(machines_per_rack=1)

    def test_scaled_keeps_at_least_one_rack(self):
        spec = ClusterSpec(racks_per_intermediate=5)
        assert spec.scaled(0.01).racks_per_intermediate == 1

    def test_scaled_rounds_rack_count(self):
        spec = ClusterSpec(racks_per_intermediate=4)
        assert spec.scaled(0.5).racks_per_intermediate == 2


class TestFlatClusterSpec:
    def test_default_matches_paper(self):
        assert FlatClusterSpec().machines == 250

    def test_rejects_single_machine(self):
        with pytest.raises(ConfigurationError):
            FlatClusterSpec(machines=1)


class TestDynaSoReConfig:
    def test_defaults_match_paper(self):
        config = DynaSoReConfig()
        assert config.counter_slots == 24
        assert config.counter_period == 3600.0
        assert config.admission_fill == pytest.approx(0.90)
        assert config.eviction_threshold == pytest.approx(0.95)
        assert config.min_replicas == 1

    def test_rejects_bad_counter_slots(self):
        with pytest.raises(ConfigurationError):
            DynaSoReConfig(counter_slots=0)

    def test_rejects_bad_admission_fill(self):
        with pytest.raises(ConfigurationError):
            DynaSoReConfig(admission_fill=1.5)

    def test_rejects_zero_min_replicas(self):
        with pytest.raises(ConfigurationError):
            DynaSoReConfig(min_replicas=0)

    def test_rejects_zero_check_interval(self):
        with pytest.raises(ConfigurationError):
            DynaSoReConfig(replication_check_interval=0)


class TestSimulationConfig:
    def test_defaults(self):
        config = SimulationConfig()
        assert config.application_message_size == 10
        assert config.protocol_message_size == 1
        assert config.tick_period == 3600.0

    def test_rejects_negative_memory(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(extra_memory_pct=-1.0)

    def test_rejects_negative_measure_from(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(measure_from=-1.0)

    def test_rejects_zero_tick(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(tick_period=0.0)


class TestExperimentProfile:
    def test_by_name_round_trip(self):
        for name in ("ci", "laptop", "paper"):
            assert ExperimentProfile.by_name(name).name == name

    def test_by_name_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            ExperimentProfile.by_name("galactic")

    def test_paper_profile_uses_paper_cluster(self):
        profile = ExperimentProfile.paper()
        assert profile.cluster.total_servers == 225
        assert profile.flat_machines == 250
        assert profile.memory_sweep[0] == 0.0

    def test_ci_profile_is_small(self):
        profile = ExperimentProfile.ci()
        assert profile.cluster.total_servers <= 30
        assert max(profile.users.values()) <= 2000
