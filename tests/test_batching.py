"""Batched vs per-event replay parity (the chunk-native dispatch layer).

The simulator's batched loop segments event streams into request runs and
drives the strategies' fused kernels; the contract is that batched and
per-event replay are **byte-identical** — same :class:`SimulationResult`,
same :class:`TrafficSnapshot` — for every strategy, scenario and
observation mode.  This suite pins that contract:

* the full strategy × scenario matrix (no per-event observers, so the
  batched path actually batches);
* property tests over random interleavings of faults, maintenance ticks,
  tracked-view sampling and post-request hooks (the observers force the
  documented per-event fallback — which must itself stay byte-identical);
* unit coverage of the run segmentation helpers and of the batch kernels'
  fallback paths.
"""

from __future__ import annotations

import random

import pytest

from parity import SCENARIOS, canonical_result_bytes, parity_cluster, parity_graph, parity_stream
from repro.config import ClusterSpec, DynaSoReConfig, SimulationConfig
from repro.constants import HOUR, MINUTE
from repro.runtime.spec import STRATEGY_KEYS, build_strategy
from repro.scenarios.base import Scenario
from repro.scenarios.events import NodeLeave, ServerCrash, ServerRecovery
from repro.simulator.engine import ClusterSimulator
from repro.topology.tree import TreeTopology
from repro.workload.stream import (
    EventChunk,
    EventStream,
    KIND_EDGE_ADD,
    KIND_EDGE_REMOVE,
    KIND_READ,
    KIND_WRITE,
    kind_run_end,
    request_run_end,
)


def _run_matrix(strategy_key: str, scenario_key: str, batch: bool, tracked: int = 0):
    topology, _ = parity_cluster()
    graph = parity_graph(users=120)
    stream = parity_stream(graph, days=0.25)
    strategy = build_strategy(strategy_key, 7, DynaSoReConfig())
    config = SimulationConfig(extra_memory_pct=60.0, seed=7, batch_replay=batch)
    simulator = ClusterSimulator(
        topology, graph, strategy, config=config, scenario=SCENARIOS[scenario_key]()
    )
    for user in list(graph.users)[:tracked]:
        simulator.track_view(user)
    return simulator.run(stream)


@pytest.mark.parametrize("scenario_key", sorted(SCENARIOS))
@pytest.mark.parametrize("strategy_key", STRATEGY_KEYS)
def test_batched_replay_byte_identical(strategy_key, scenario_key):
    """Batched dispatch must not change a single byte of the result."""
    batched = _run_matrix(strategy_key, scenario_key, batch=True)
    per_event = _run_matrix(strategy_key, scenario_key, batch=False)
    assert canonical_result_bytes(batched) == canonical_result_bytes(per_event)


def test_batched_replay_actually_batches():
    """The matrix runs above exercise the batch kernels, not the fallback."""
    topology, _ = parity_cluster()
    graph = parity_graph(users=120)
    stream = parity_stream(graph, days=0.25)
    strategy = build_strategy("dynasore_hmetis", 7, DynaSoReConfig())
    simulator = ClusterSimulator(
        topology, graph, strategy, config=SimulationConfig(seed=7)
    )
    calls = []
    original = strategy.execute_request_batch

    def spy(kinds, users, timestamps):
        calls.append(len(users))
        return original(kinds, users, timestamps)

    strategy.execute_request_batch = spy
    simulator.run(stream)
    # The parity workload sprinkles edge-churn events, so runs are bounded;
    # what matters is that multi-event runs reach the kernel at all.
    assert calls and max(calls) > 10


# ---------------------------------------------------------------------------
# Random interleavings: faults x ticks x sampling x hooks
# ---------------------------------------------------------------------------
class _RandomFaultScenario(Scenario):
    """Random crash/drain/restore schedule over a fixed horizon."""

    name = "random-faults"

    def __init__(self, seed: int, horizon: float, servers: int) -> None:
        self.seed = seed
        self.horizon = horizon
        self.servers = servers

    def fault_events(self, context):
        rng = random.Random(self.seed)
        events = []
        down: list[int] = []
        up = list(range(self.servers))
        for _ in range(rng.randint(1, 4)):
            timestamp = rng.uniform(0.0, self.horizon)
            if down and rng.random() < 0.4:
                position = down.pop(rng.randrange(len(down)))
                events.append(ServerRecovery(timestamp=timestamp, position=position))
                up.append(position)
            elif len(up) > 2:
                position = up.pop(rng.randrange(len(up)))
                maker = ServerCrash if rng.random() < 0.5 else NodeLeave
                events.append(maker(timestamp=timestamp, position=position))
                down.append(position)
        # Events are applied in timestamp order, but a random draw may
        # schedule a recovery before its outage; sort first, then drop
        # recoveries that would precede the outage.
        events.sort(key=lambda event: event.timestamp)
        seen_down: set[int] = set()
        valid = []
        for event in events:
            if isinstance(event, ServerRecovery):
                if event.position not in seen_down:
                    continue
                seen_down.discard(event.position)
            else:
                if event.position in seen_down:
                    continue
                seen_down.add(event.position)
            valid.append(event)
        return valid


def _random_stream(rng: random.Random, users: int, horizon: float) -> EventStream:
    """Random read/write/edge interleaving, timestamps sorted."""
    rows = []
    for _ in range(rng.randint(200, 600)):
        timestamp = rng.uniform(0.0, horizon)
        draw = rng.random()
        user = rng.randrange(users)
        if draw < 0.6:
            rows.append((KIND_READ, timestamp, user, -1))
        elif draw < 0.85:
            rows.append((KIND_WRITE, timestamp, user, -1))
        else:
            other = rng.randrange(users)
            if other != user:
                kind = KIND_EDGE_ADD if rng.random() < 0.8 else KIND_EDGE_REMOVE
                rows.append((kind, timestamp, user, other))
    rows.sort(key=lambda row: row[1])
    chunk = EventChunk()
    for row in rows:
        chunk.append(*row)
    return EventStream.from_chunks([chunk])


def _interleaving_run(seed: int, batch: bool):
    rng = random.Random(seed)
    spec = ClusterSpec(
        intermediate_switches=2,
        racks_per_intermediate=2,
        machines_per_rack=3,
        brokers_per_rack=1,
    )
    topology = TreeTopology(spec)
    graph = parity_graph(users=80, seed=seed)
    horizon = rng.uniform(4 * HOUR, 14 * HOUR)
    stream = _random_stream(rng, users=80, horizon=horizon)
    strategy_key = rng.choice(STRATEGY_KEYS)
    strategy = build_strategy(strategy_key, 7, DynaSoReConfig())
    config = SimulationConfig(
        extra_memory_pct=rng.choice([40.0, 60.0, 100.0]),
        tick_period=rng.choice([HOUR / 2, HOUR, 2 * HOUR]),
        bucket_width=rng.choice([HOUR / 2, HOUR]),
        measure_from=rng.choice([0.0, HOUR]),
        seed=7,
        batch_replay=batch,
    )
    scenario = _RandomFaultScenario(
        seed=seed, horizon=horizon, servers=len(topology.servers)
    )
    simulator = ClusterSimulator(
        topology, graph, strategy, config=config, scenario=scenario
    )
    hook_log: list[tuple] = []
    if rng.random() < 0.4:
        for user in list(graph.users)[: rng.randint(1, 3)]:
            simulator.track_view(user)
    if rng.random() < 0.4:
        simulator.add_post_request_hook(
            lambda request: hook_log.append((type(request).__name__, request.timestamp))
        )
    if rng.random() < 0.4:
        simulator.add_pre_tick_hook(lambda now: hook_log.append(("tick", now)))
    result = simulator.run(stream)
    snapshot = simulator.accountant.snapshot()
    return result, snapshot, hook_log


@pytest.mark.parametrize("seed", range(8))
def test_random_interleavings_byte_identical(seed):
    """Faults, ticks, sampling and hooks interleave identically on both paths.

    Each seed draws a random strategy, workload (reads/writes/edge churn),
    fault schedule, tick/bucket configuration and observer set; the batched
    and per-event runs must produce byte-identical results, byte-identical
    traffic snapshots and identical hook transcripts (observers force the
    per-event fallback, which is part of the contract under test).
    """
    result_a, snapshot_a, hooks_a = _interleaving_run(seed, batch=True)
    result_b, snapshot_b, hooks_b = _interleaving_run(seed, batch=False)
    assert canonical_result_bytes(result_a) == canonical_result_bytes(result_b)
    assert snapshot_a == snapshot_b
    assert hooks_a == hooks_b


def test_post_request_hooks_force_per_event_fallback():
    """With a hook attached, every event goes through the scalar path."""
    topology, _ = parity_cluster()
    graph = parity_graph(users=60)
    stream = parity_stream(graph, days=0.1)
    strategy = build_strategy("random", 7, DynaSoReConfig())
    simulator = ClusterSimulator(topology, graph, strategy, config=SimulationConfig(seed=7))
    seen = []
    simulator.add_post_request_hook(lambda request: seen.append(request))
    batch_calls = []
    original = strategy.execute_request_batch

    def spy(kinds, users, timestamps):
        batch_calls.append(len(users))
        return original(kinds, users, timestamps)

    strategy.execute_request_batch = spy
    result = simulator.run(stream)
    assert not batch_calls
    assert len(seen) == result.requests_executed


def test_batch_replay_disabled_matches_default():
    """``batch_replay=False`` is the reference path and changes nothing."""
    on = _run_matrix("spar", "plain", batch=True)
    off = _run_matrix("spar", "plain", batch=False)
    assert canonical_result_bytes(on) == canonical_result_bytes(off)


# ---------------------------------------------------------------------------
# Segmentation helpers
# ---------------------------------------------------------------------------
def test_kind_run_end_finds_first_change():
    kinds = bytes([KIND_READ, KIND_READ, KIND_WRITE, KIND_READ])
    assert kind_run_end(kinds, 0, len(kinds)) == 2
    assert kind_run_end(kinds, 2, len(kinds)) == 3
    assert kind_run_end(kinds, 3, len(kinds)) == 4


def test_request_run_end_only_breaks_on_edges():
    kinds = bytes(
        [KIND_READ, KIND_WRITE, KIND_READ, KIND_EDGE_ADD, KIND_WRITE, KIND_EDGE_REMOVE]
    )
    assert request_run_end(kinds, 0, len(kinds)) == 3
    assert request_run_end(kinds, 4, len(kinds)) == 5


def test_run_helpers_respect_end_bound():
    kinds = bytes([KIND_READ] * 10)
    assert kind_run_end(kinds, 0, 4) == 4
    assert request_run_end(kinds, 2, 7) == 7


# ---------------------------------------------------------------------------
# Batch-kernel entry points (strategy API level)
# ---------------------------------------------------------------------------
def _bound_strategy(key: str):
    topology, _ = parity_cluster()
    graph = parity_graph(users=60)
    strategy = build_strategy(key, 7, DynaSoReConfig())
    simulator = ClusterSimulator(topology, graph, strategy, config=SimulationConfig(seed=7))
    simulator.prepare()
    return strategy, simulator


@pytest.mark.parametrize("key", ["random", "spar", "dynasore_random"])
def test_pure_run_wrappers_match_scalar_calls(key):
    """``execute_read_batch``/``execute_write_batch`` equal scalar loops."""
    strategy_a, sim_a = _bound_strategy(key)
    strategy_b, sim_b = _bound_strategy(key)
    users = [user for user in list(sim_a.graph.users)[:12]]
    times = [float(i) * MINUTE for i in range(len(users))]
    strategy_a.execute_read_batch(users, times)
    strategy_a.execute_write_batch(users, times)
    for user, now in zip(users, times):
        strategy_b.execute_read(user, now)
    for user, now in zip(users, times):
        strategy_b.execute_write(user, now)
    assert sim_a.accountant.snapshot() == sim_b.accountant.snapshot()


def test_unbuilt_strategy_falls_back_to_scalar_loop():
    """Kernels guard against running before ``build_initial_placement``."""
    strategy = build_strategy("random", 7, DynaSoReConfig())
    with pytest.raises(Exception):
        strategy.execute_read_batch([1], [0.0])


# ---------------------------------------------------------------------------
# Opt-in placement-table auditing (REPRO_CHECK_TABLES)
# ---------------------------------------------------------------------------
def test_table_audit_runs_when_enabled(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK_TABLES", "1")
    topology, _ = parity_cluster()
    graph = parity_graph(users=80)
    stream = parity_stream(graph, days=0.25)
    strategy = build_strategy("dynasore_hmetis", 7, DynaSoReConfig())
    simulator = ClusterSimulator(
        topology,
        graph,
        strategy,
        config=SimulationConfig(seed=7),
        scenario=SCENARIOS["crash"](),
    )
    assert simulator._check_tables
    result = simulator.run(stream)
    assert result.requests_executed > 0


def test_table_audit_detects_corruption(monkeypatch):
    from repro.exceptions import StorageError

    monkeypatch.setenv("REPRO_CHECK_TABLES", "1")
    topology, _ = parity_cluster()
    graph = parity_graph(users=80)
    stream = parity_stream(graph, days=0.25)
    strategy = build_strategy("dynasore_hmetis", 7, DynaSoReConfig())
    simulator = ClusterSimulator(topology, graph, strategy, config=SimulationConfig(seed=7))

    def corrupt(now):
        strategy.tables._used[0] += 1  # desynchronise the occupancy counter

    simulator.add_pre_tick_hook(corrupt)
    with pytest.raises(StorageError):
        simulator.run(stream)


def test_table_audit_off_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_CHECK_TABLES", raising=False)
    topology, _ = parity_cluster()
    graph = parity_graph(users=60)
    strategy = build_strategy("random", 7, DynaSoReConfig())
    simulator = ClusterSimulator(topology, graph, strategy, config=SimulationConfig(seed=7))
    assert not simulator._check_tables


# ---------------------------------------------------------------------------
# Routing batch resolution
# ---------------------------------------------------------------------------
def test_routing_batch_resolver_matches_scalar():
    from repro.core.routing import RoutingService

    topology, _ = parity_cluster()
    routing = RoutingService(topology)
    servers = [server.index for server in topology.servers]
    broker = topology.brokers[0].index
    sets = [
        {servers[0]},
        {servers[0], servers[-1]},
        set(servers[:5]),
        tuple(servers[3:7]),
    ]
    batch = routing.closest_replica_batch(broker, sets)
    scalar = [routing.closest_replica(broker, devices) for devices in sets]
    assert batch == scalar
    resolve = routing.batch_resolver(broker)
    assert [resolve(devices) for devices in sets] == scalar


def test_routing_batch_resolver_rejects_empty():
    from repro.core.routing import RoutingService
    from repro.exceptions import RoutingError

    topology, _ = parity_cluster()
    routing = RoutingService(topology)
    resolve = routing.batch_resolver(topology.brokers[0].index)
    with pytest.raises(RoutingError):
        resolve(())


def test_hook_registered_mid_run_is_honoured():
    """A post-request hook registered by a pre-tick hook mid-run fires for
    every subsequent request, exactly as on the per-event path."""

    def run(batch: bool):
        topology, _ = parity_cluster()
        graph = parity_graph(users=100)
        stream = parity_stream(graph, days=0.25)
        strategy = build_strategy("random", 7, DynaSoReConfig())
        simulator = ClusterSimulator(
            topology,
            graph,
            strategy,
            config=SimulationConfig(seed=7, batch_replay=batch),
        )
        seen: list[tuple[str, float]] = []

        def late_hook(request):
            seen.append((type(request).__name__, request.timestamp))

        registered = []

        def on_tick(now):
            if not registered:
                simulator.add_post_request_hook(late_hook)
                registered.append(now)

        simulator.add_pre_tick_hook(on_tick)
        result = simulator.run(stream)
        return result, seen

    result_batched, seen_batched = run(True)
    result_per_event, seen_per_event = run(False)
    assert seen_batched  # the hook did observe the tail of the run
    assert seen_batched == seen_per_event
    assert canonical_result_bytes(result_batched) == canonical_result_bytes(
        result_per_event
    )


def test_check_tables_env_accepts_falsey_spellings(monkeypatch):
    topology, _ = parity_cluster()
    graph = parity_graph(users=60)
    strategy = build_strategy("random", 7, DynaSoReConfig())
    for value, expected in (
        ("1", True),
        ("true", True),
        ("0", False),
        ("false", False),
        ("No", False),
        ("off", False),
        ("", False),
    ):
        monkeypatch.setenv("REPRO_CHECK_TABLES", value)
        simulator = ClusterSimulator(
            topology, graph, strategy, config=SimulationConfig(seed=7)
        )
        assert simulator._check_tables is expected, value


def test_run_spanning_bucket_boundary_keeps_series_order():
    """A single run crossing a traffic-bucket boundary with writes in one
    bucket and reads in the next must still export byte-identical series
    (the per-kind aggregators may touch the buckets out of order)."""

    def run(batch: bool):
        topology, _ = parity_cluster()
        graph = parity_graph(users=40)
        rows = []
        users = list(graph.users)
        for index in range(6):  # writes in bucket 0
            rows.append((KIND_WRITE, 10.0 + index * 10.0, users[index], -1))
        for index in range(4):  # reads in bucket 1
            rows.append((KIND_READ, 150.0 + index * 10.0, users[index], -1))
        chunk = EventChunk()
        for row in rows:
            chunk.append(*row)
        stream = EventStream.from_chunks([chunk])
        strategy = build_strategy("spar", 7, DynaSoReConfig())
        simulator = ClusterSimulator(
            topology,
            graph,
            strategy,
            config=SimulationConfig(
                seed=7,
                bucket_width=100.0,
                tick_period=100000.0,
                batch_replay=batch,
            ),
        )
        return simulator.run(stream)

    batched = run(True)
    per_event = run(False)
    assert list(batched.top_series_application) == sorted(
        batched.top_series_application
    )
    assert canonical_result_bytes(batched) == canonical_result_bytes(per_event)
