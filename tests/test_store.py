"""Tests for the in-memory store substrate: counters, stats, servers, budget."""

from __future__ import annotations


import pytest

from repro.exceptions import CapacityError, StorageError
from repro.store.counters import RotatingCounter
from repro.store.memory import MemoryBudget, budget_for
from repro.store.server import StorageServer
from repro.store.stats import AccessStatistics
from repro.store.view import Event, INFINITE_UTILITY, View, ViewReplica


class TestRotatingCounter:
    def test_records_and_totals(self):
        counter = RotatingCounter(slots=4, period=10.0)
        counter.record(1.0)
        counter.record(2.0)
        assert counter.total() == 2.0

    def test_rotation_clears_oldest(self):
        counter = RotatingCounter(slots=3, period=10.0)
        counter.record(5.0)  # slot for period 0
        counter.record(15.0)  # period 1
        counter.record(25.0)  # period 2
        assert counter.total() == 3.0
        counter.record(35.0)  # period 3 reuses slot of period 0
        assert counter.total() == 3.0

    def test_long_gap_clears_everything(self):
        counter = RotatingCounter(slots=3, period=10.0)
        counter.record(1.0)
        counter.advance(1000.0)
        assert counter.is_empty()

    def test_advance_is_monotonic(self):
        counter = RotatingCounter(slots=3, period=10.0)
        counter.record(25.0)
        counter.advance(5.0)  # going back in time is a no-op
        assert counter.total() == 1.0

    def test_rate_per_period(self):
        counter = RotatingCounter(slots=4, period=10.0)
        for t in (1.0, 2.0, 11.0, 21.0):
            counter.record(t)
        assert counter.rate_per_period() == pytest.approx(1.0)

    def test_copy_is_independent(self):
        counter = RotatingCounter(slots=2, period=10.0)
        counter.record(1.0)
        clone = counter.copy()
        clone.record(2.0)
        assert counter.total() == 1.0
        assert clone.total() == 2.0

    def test_rejects_bad_arguments(self):
        with pytest.raises(StorageError):
            RotatingCounter(slots=0)
        with pytest.raises(StorageError):
            RotatingCounter(period=0.0)

    def test_record_amount(self):
        counter = RotatingCounter(slots=2, period=10.0)
        counter.record(0.0, amount=5.0)
        assert counter.total() == 5.0


class TestAccessStatistics:
    def test_reads_by_origin(self):
        stats = AccessStatistics(slots=4, period=10.0)
        stats.record_read(origin=7, timestamp=1.0)
        stats.record_read(origin=7, timestamp=2.0)
        stats.record_read(origin=9, timestamp=3.0)
        assert stats.reads_by_origin() == {7: 2.0, 9: 1.0}
        assert stats.total_reads() == 3.0

    def test_writes(self):
        stats = AccessStatistics(slots=4, period=10.0)
        stats.record_write(1.0)
        stats.record_write(2.0)
        assert stats.total_writes() == 2.0

    def test_window_expiry(self):
        stats = AccessStatistics(slots=2, period=10.0)
        stats.record_read(origin=1, timestamp=0.0)
        stats.advance(100.0)
        assert stats.total_reads() == 0.0
        assert stats.reads_by_origin() == {}

    def test_evaluation_marker(self):
        stats = AccessStatistics()
        stats.record_read(1, 0.0)
        stats.record_read(1, 1.0)
        assert stats.reads_since_last_evaluation() == 2
        stats.mark_evaluated()
        assert stats.reads_since_last_evaluation() == 0

    def test_copy(self):
        stats = AccessStatistics(slots=4, period=10.0)
        stats.record_read(3, 0.0)
        stats.record_write(0.0)
        clone = stats.copy()
        clone.record_read(3, 1.0)
        assert stats.reads_from(3) == 1.0
        assert clone.reads_from(3) == 2.0

    def test_clear(self):
        stats = AccessStatistics()
        stats.record_read(1, 0.0)
        stats.record_write(0.0)
        stats.clear()
        assert stats.total_reads() == 0.0
        assert stats.total_writes() == 0.0


class TestView:
    def test_append_orders_most_recent_first(self):
        view = View(user=1)
        view.append(Event(1, 1.0, b"a"))
        view.append(Event(1, 2.0, b"b"))
        assert view.events[0].payload == b"b"
        assert view.version == 2

    def test_max_events_trims(self):
        view = View(user=1, max_events=2)
        for i in range(5):
            view.append(Event(1, float(i)))
        assert len(view.events) == 2
        assert view.version == 5

    def test_latest(self):
        view = View(user=1)
        for i in range(4):
            view.append(Event(1, float(i)))
        assert [e.timestamp for e in view.latest(2)] == [3.0, 2.0]

    def test_copy_is_deep(self):
        view = View(user=1)
        view.append(Event(1, 1.0))
        clone = view.copy()
        clone.append(Event(1, 2.0))
        assert view.version == 1
        assert clone.version == 2

    def test_replica_sole_utility_is_infinite(self):
        replica = ViewReplica(user=1, server=0, stats=AccessStatistics())
        assert replica.is_sole_replica
        assert replica.effective_utility() == INFINITE_UTILITY
        replica.next_closest_replica = 5
        replica.utility = 3.0
        assert replica.effective_utility() == 3.0


class TestStorageServer:
    def make_server(self, capacity: int = 10) -> StorageServer:
        return StorageServer(server_index=0, capacity=capacity, counter_slots=4, counter_period=10.0)

    def test_add_and_remove(self):
        server = self.make_server()
        server.add_replica(1)
        assert server.has_view(1)
        assert server.used == 1
        server.remove_replica(1)
        assert not server.has_view(1)

    def test_duplicate_add_rejected(self):
        server = self.make_server()
        server.add_replica(1)
        with pytest.raises(StorageError):
            server.add_replica(1)

    def test_full_server_rejects_unless_overflow(self):
        server = self.make_server(capacity=1)
        server.add_replica(1)
        with pytest.raises(StorageError):
            server.add_replica(2)
        server.add_replica(2, allow_overflow=True)
        assert server.used == 2

    def test_remove_unknown_rejected(self):
        server = self.make_server()
        with pytest.raises(StorageError):
            server.remove_replica(9)

    def test_utilisation(self):
        server = self.make_server(capacity=4)
        server.add_replica(1)
        server.add_replica(2)
        assert server.utilisation == pytest.approx(0.5)
        assert server.free_slots == 2

    def test_admission_threshold_zero_when_not_full(self):
        server = self.make_server(capacity=10)
        for user in range(5):
            server.add_replica(user)
        assert server.update_admission_threshold() == 0.0

    def test_admission_threshold_positive_when_nearly_full(self):
        server = self.make_server(capacity=10)
        for user in range(10):
            replica = server.add_replica(user)
            replica.next_closest_replica = 99  # not sole, finite utility
            replica.utility = float(user)
        threshold = server.update_admission_threshold()
        assert threshold > 0.0

    def test_eviction_candidates_exclude_sole_replicas(self):
        server = self.make_server(capacity=5)
        sole = server.add_replica(1)
        replicated = server.add_replica(2)
        replicated.next_closest_replica = 7
        replicated.utility = 1.0
        candidates = server.eviction_candidates()
        assert sole not in candidates
        assert replicated in candidates

    def test_eviction_candidates_sorted_by_utility(self):
        server = self.make_server(capacity=5)
        for user, utility in ((1, 5.0), (2, 1.0), (3, 3.0)):
            replica = server.add_replica(user)
            replica.next_closest_replica = 9
            replica.utility = utility
        users = [r.user for r in server.eviction_candidates()]
        assert users == [2, 3, 1]

    def test_needs_eviction(self):
        server = self.make_server(capacity=100)
        for user in range(100):
            server.add_replica(user)
        assert server.needs_eviction()
        assert server.excess_replicas() == 5

    def test_full_server_always_frees_one_slot(self):
        # Even when 95% of a small capacity rounds up to "full", a full
        # server frees at least one slot so the cluster can keep adapting.
        server = self.make_server(capacity=10)
        for user in range(10):
            server.add_replica(user)
        assert server.needs_eviction()
        assert server.excess_replicas() == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(StorageError):
            StorageServer(server_index=0, capacity=-1)


class TestMemoryBudget:
    def test_total_capacity(self):
        budget = MemoryBudget(views=100, extra_memory_pct=30.0, servers=4)
        assert budget.total_capacity == 130
        assert budget.replication_headroom == 30
        assert budget.average_replication_factor() == pytest.approx(1.3)

    def test_per_server_split_is_exact(self):
        budget = MemoryBudget(views=100, extra_memory_pct=30.0, servers=7)
        capacities = budget.per_server_capacity()
        assert sum(capacities) == budget.total_capacity
        assert max(capacities) - min(capacities) <= 1

    def test_zero_extra_memory(self):
        budget = budget_for(views=50, extra_memory_pct=0.0, servers=5)
        assert budget.total_capacity == 50

    def test_rejects_insufficient_capacity(self):
        with pytest.raises(CapacityError):
            MemoryBudget(views=10, extra_memory_pct=-5.0, servers=2)

    def test_rejects_zero_servers(self):
        with pytest.raises(CapacityError):
            MemoryBudget(views=10, extra_memory_pct=0.0, servers=0)
