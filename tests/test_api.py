"""Tests for the public key-value API (DynaSoReStore)."""

from __future__ import annotations

import pytest

from repro.baselines.random_placement import RandomPlacement
from repro.config import ClusterSpec
from repro.core.api import DynaSoReStore
from repro.exceptions import SimulationError
from repro.persistence.backend import PersistentStore
from repro.persistence.wal import WriteAheadLog
from repro.socialgraph.generators import facebook_like
from repro.topology.tree import TreeTopology


@pytest.fixture
def store():
    topology = TreeTopology(
        ClusterSpec(intermediate_switches=2, racks_per_intermediate=2, machines_per_rack=4)
    )
    graph = facebook_like(users=100, seed=6)
    return DynaSoReStore(topology, graph, extra_memory_pct=50.0, seed=6)


class TestDynaSoReStore:
    def test_write_returns_increasing_versions(self, store):
        user = store.graph.users[0]
        assert store.write(user, b"first") == 1
        assert store.write(user, b"second") == 2

    def test_read_returns_written_events(self, store):
        producer = store.graph.users[0]
        consumer = next(iter(store.graph.followers(producer)), None)
        store.write(producer, b"breaking news")
        views = store.read(consumer if consumer is not None else producer, targets=[producer])
        assert views[producer].version == 1
        assert views[producer].events[0].payload == b"breaking news"

    def test_read_defaults_to_social_graph(self, store):
        reader = next(u for u in store.graph.users if store.graph.out_degree(u) >= 1)
        views = store.read(reader)
        assert set(views) == set(store.graph.following(reader))

    def test_read_records_traffic(self, store):
        reader = next(u for u in store.graph.users if store.graph.out_degree(u) >= 1)
        before = store.accountant.message_count
        store.read(reader)
        assert store.accountant.message_count > before

    def test_write_is_durable(self, store):
        user = store.graph.users[0]
        store.write(user, b"persist me")
        assert store.persistent.current_version(user) == 1
        store.persistent.verify_integrity()

    def test_clock_advances_monotonically(self, store):
        store.advance_time(100.0)
        assert store.now == 100.0
        with pytest.raises(SimulationError):
            store.advance_time(50.0)

    def test_maintenance_runs(self, store):
        user = store.graph.users[0]
        store.write(user)
        store.advance_time(3700.0)
        store.run_maintenance()  # must not raise
        assert store.replica_count(user) >= 1

    def test_top_switch_traffic_reported(self, store):
        reader = next(u for u in store.graph.users if store.graph.out_degree(u) >= 3)
        for _ in range(5):
            store.read(reader)
        assert store.top_switch_traffic() >= 0.0
        snapshot = store.traffic_snapshot()
        assert "top" in snapshot.total_by_level

    def test_custom_strategy_and_persistent_store(self):
        topology = TreeTopology(
            ClusterSpec(intermediate_switches=2, racks_per_intermediate=2, machines_per_rack=4)
        )
        graph = facebook_like(users=60, seed=7)
        persistent = PersistentStore(WriteAheadLog())
        store = DynaSoReStore(
            topology,
            graph,
            extra_memory_pct=0.0,
            strategy=RandomPlacement(seed=7),
            persistent_store=persistent,
            seed=7,
        )
        user = graph.users[0]
        store.write(user, b"x")
        assert persistent.current_version(user) == 1
        assert store.replica_count(user) == 1

    def test_views_of_silent_users_are_empty(self, store):
        reader = next(u for u in store.graph.users if store.graph.out_degree(u) >= 1)
        views = store.read(reader)
        assert all(view.version == 0 for view in views.values())
