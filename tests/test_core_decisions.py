"""Tests for Algorithm 2 (replica creation), Algorithm 3 (migration) and the
proxy-placement optimisation."""

from __future__ import annotations

import pytest

from repro.core.migration import MigrationAction, evaluate_replica_migration
from repro.core.proxies import ProxyDirectory, optimal_proxy_broker
from repro.core.replication import evaluate_replica_creation
from repro.store.stats import AccessStatistics
from repro.store.view import ViewReplica
from repro.topology.flat import FlatTopology
from repro.topology.tree import TreeTopology


@pytest.fixture
def layout(tree_topology: TreeTopology):
    inter_a, inter_b = tree_topology.intermediate_switches[:2]
    rack_a = tree_topology.racks_under_intermediate(inter_a)[0]
    rack_b = tree_topology.racks_under_intermediate(inter_b)[0]
    return {
        "inter_a": inter_a,
        "inter_b": inter_b,
        "rack_a": rack_a,
        "rack_b": rack_b,
        "server_a": tree_topology.servers_in_rack(rack_a)[0],
        "server_b": tree_topology.servers_in_rack(rack_b)[0],
        "broker_a": tree_topology.broker_for_rack(rack_a),
        "broker_b": tree_topology.broker_for_rack(rack_b),
    }


def make_helpers(tree_topology: TreeTopology, target_server: int, threshold: float = 0.0):
    """Bundle of the callables the decision functions expect."""
    position_by_device = {s.index: i for i, s in enumerate(tree_topology.servers)}
    device_by_position = {i: s.index for i, s in enumerate(tree_topology.servers)}

    def least_loaded(origin: int, user: int):
        servers = [s for s in tree_topology.servers_under(origin)]
        if not servers:
            return None
        # Prefer the designated target server when it sits under the origin.
        if target_server in servers:
            return position_by_device[target_server]
        return position_by_device[servers[0]]

    def admission_threshold(origin: int) -> float:
        return threshold

    def device_of(position: int) -> int:
        return device_by_position[position]

    return least_loaded, admission_threshold, device_of, position_by_device


class TestReplicaCreation:
    def test_remote_readers_trigger_replication(self, tree_topology, layout):
        stats = AccessStatistics()
        for i in range(20):
            stats.record_read(layout["inter_b"], float(i))
        replica = ViewReplica(user=1, server=0, stats=stats)
        least_loaded, threshold, device_of, positions = make_helpers(
            tree_topology, layout["server_b"]
        )
        decision = evaluate_replica_creation(
            tree_topology,
            replica,
            layout["server_a"],
            layout["broker_a"],
            least_loaded,
            threshold,
            device_of,
        )
        assert decision.should_replicate
        assert device_of(decision.target_position) == layout["server_b"]
        assert decision.profit > 0

    def test_local_readers_do_not_trigger_replication(self, tree_topology, layout):
        stats = AccessStatistics()
        for i in range(20):
            stats.record_read(layout["rack_a"], float(i))
        replica = ViewReplica(user=1, server=0, stats=stats)
        least_loaded, threshold, device_of, _ = make_helpers(tree_topology, layout["server_b"])
        decision = evaluate_replica_creation(
            tree_topology,
            replica,
            layout["server_a"],
            layout["broker_a"],
            least_loaded,
            threshold,
            device_of,
        )
        assert not decision.should_replicate

    def test_admission_threshold_blocks_marginal_replica(self, tree_topology, layout):
        stats = AccessStatistics()
        for i in range(3):
            stats.record_read(layout["inter_b"], float(i))
        replica = ViewReplica(user=1, server=0, stats=stats)
        least_loaded, threshold, device_of, _ = make_helpers(
            tree_topology, layout["server_b"], threshold=100.0
        )
        decision = evaluate_replica_creation(
            tree_topology,
            replica,
            layout["server_a"],
            layout["broker_a"],
            least_loaded,
            threshold,
            device_of,
        )
        assert not decision.should_replicate

    def test_heavy_writes_block_replication(self, tree_topology, layout):
        stats = AccessStatistics()
        for i in range(4):
            stats.record_read(layout["inter_b"], float(i))
        for i in range(10):
            stats.record_write(float(i))
        replica = ViewReplica(user=1, server=0, stats=stats)
        least_loaded, threshold, device_of, _ = make_helpers(tree_topology, layout["server_b"])
        decision = evaluate_replica_creation(
            tree_topology,
            replica,
            layout["server_a"],
            layout["broker_a"],
            least_loaded,
            threshold,
            device_of,
        )
        assert not decision.should_replicate

    def test_no_candidate_when_no_free_server(self, tree_topology, layout):
        stats = AccessStatistics()
        for i in range(20):
            stats.record_read(layout["inter_b"], float(i))
        replica = ViewReplica(user=1, server=0, stats=stats)

        def no_server(origin: int, user: int):
            return None

        decision = evaluate_replica_creation(
            tree_topology,
            replica,
            layout["server_a"],
            layout["broker_a"],
            no_server,
            lambda origin: 0.0,
            lambda position: layout["server_a"],
        )
        assert not decision.should_replicate


class TestReplicaMigration:
    def test_migrates_toward_dominant_readers(self, tree_topology, layout):
        stats = AccessStatistics()
        for i in range(30):
            stats.record_read(layout["inter_b"], float(i))
        replica = ViewReplica(user=1, server=0, stats=stats)
        least_loaded, threshold, device_of, _ = make_helpers(tree_topology, layout["server_b"])
        decision = evaluate_replica_migration(
            tree_topology,
            replica,
            layout["server_a"],
            None,  # sole replica
            layout["broker_a"],
            least_loaded,
            threshold,
            device_of,
        )
        assert decision.action is MigrationAction.MOVE
        assert device_of(decision.target_position) == layout["server_b"]

    def test_stays_when_readers_are_local(self, tree_topology, layout):
        stats = AccessStatistics()
        for i in range(30):
            stats.record_read(layout["rack_a"], float(i))
        replica = ViewReplica(user=1, server=0, stats=stats)
        least_loaded, threshold, device_of, _ = make_helpers(tree_topology, layout["server_b"])
        decision = evaluate_replica_migration(
            tree_topology,
            replica,
            layout["server_a"],
            None,
            layout["broker_a"],
            least_loaded,
            threshold,
            device_of,
        )
        assert decision.action is MigrationAction.STAY

    def test_useless_secondary_replica_is_removed(self, tree_topology, layout):
        stats = AccessStatistics()
        for i in range(5):
            stats.record_write(float(i))  # only writes, no reads
        replica = ViewReplica(
            user=1, server=0, stats=stats, next_closest_replica=layout["server_b"]
        )
        least_loaded, threshold, device_of, _ = make_helpers(tree_topology, layout["server_b"])
        decision = evaluate_replica_migration(
            tree_topology,
            replica,
            layout["server_a"],
            layout["server_b"],
            layout["broker_a"],
            least_loaded,
            threshold,
            device_of,
        )
        assert decision.action is MigrationAction.REMOVE

    def test_sole_replica_is_never_removed(self, tree_topology, layout):
        stats = AccessStatistics()
        for i in range(5):
            stats.record_write(float(i))
        replica = ViewReplica(user=1, server=0, stats=stats)
        least_loaded, threshold, device_of, _ = make_helpers(tree_topology, layout["server_b"])
        decision = evaluate_replica_migration(
            tree_topology,
            replica,
            layout["server_a"],
            None,
            layout["broker_a"],
            least_loaded,
            threshold,
            device_of,
        )
        assert decision.action is not MigrationAction.REMOVE


class TestProxyPlacement:
    def test_tree_proxy_moves_to_heaviest_branch(self, tree_topology, layout):
        transfers = {layout["server_b"]: 10.0, layout["server_a"]: 2.0}
        best = optimal_proxy_broker(tree_topology, transfers, default=layout["broker_a"])
        assert best == layout["broker_b"]

    def test_tree_proxy_stays_with_local_majority(self, tree_topology, layout):
        transfers = {layout["server_a"]: 10.0, layout["server_b"]: 2.0}
        best = optimal_proxy_broker(tree_topology, transfers, default=layout["broker_b"])
        assert best == layout["broker_a"]

    def test_empty_transfers_keep_default(self, tree_topology, layout):
        assert (
            optimal_proxy_broker(tree_topology, {}, default=layout["broker_a"])
            == layout["broker_a"]
        )

    def test_flat_proxy_is_heaviest_machine(self):
        topology = FlatTopology()
        machines = [m.index for m in topology.servers[:3]]
        transfers = {machines[0]: 1.0, machines[1]: 5.0, machines[2]: 2.0}
        assert optimal_proxy_broker(topology, transfers, default=machines[0]) == machines[1]

    def test_proxy_directory(self):
        directory = ProxyDirectory()
        directory.place_both(7, broker=3)
        assert directory.read_broker(7) == 3
        assert directory.write_broker(7) == 3
        assert directory.read_broker(8) is None
        assert directory.users() == (7,)
