"""Tests for the binary trace file format and its runtime integration."""

from __future__ import annotations

import pickle

import pytest

from repro.exceptions import WorkloadError
from repro.runtime.executor import execute_spec
from repro.runtime.spec import GraphSpec, RunSpec, TopologySpec, WorkloadSpec
from repro.socialgraph.generators import facebook_like
from repro.workload.io import TRACE_MAGIC, read_trace, trace_content_hash, write_trace
from repro.workload.requests import RequestLog
from repro.workload.stream import EventStream, KIND_READ, KIND_WRITE
from repro.workload.synthetic import SyntheticWorkloadConfig, SyntheticWorkloadGenerator


@pytest.fixture
def workload_stream():
    graph = facebook_like(users=120, seed=5)
    return SyntheticWorkloadGenerator(
        graph, SyntheticWorkloadConfig(days=0.5, seed=5)
    ).stream(chunk_size=500)


class TestRoundTrip:
    def test_write_read_identical_chunks(self, tmp_path, workload_stream):
        path = tmp_path / "workload.trace"
        written = write_trace(path, workload_stream)
        loaded = read_trace(path)
        original_chunks = list(workload_stream.chunks())
        loaded_chunks = list(loaded.chunks())
        assert written == sum(len(chunk) for chunk in original_chunks)
        assert loaded_chunks == original_chunks

    def test_read_trace_is_reiterable(self, tmp_path, workload_stream):
        path = tmp_path / "workload.trace"
        write_trace(path, workload_stream)
        loaded = read_trace(path)
        assert list(loaded.rows()) == list(loaded.rows())

    def test_request_log_round_trips_too(self, tmp_path):
        from repro.workload.requests import ReadRequest, WriteRequest

        log = RequestLog()
        log.append(ReadRequest(1.0, 3))
        log.append(WriteRequest(2.5, 4))
        path = tmp_path / "log.trace"
        write_trace(path, log)
        assert read_trace(path).materialise().requests == log.requests

    def test_empty_stream_round_trips(self, tmp_path):
        path = tmp_path / "empty.trace"
        assert write_trace(path, EventStream.empty()) == 0
        assert list(read_trace(path).chunks()) == []

    def test_unsorted_stream_is_rejected(self, tmp_path):
        backwards = EventStream.from_rows(
            [(KIND_READ, 5.0, 1, -1)]
        ).chunks()
        stream = EventStream.from_chunks(
            list(backwards)
            + list(EventStream.from_rows([(KIND_WRITE, 1.0, 2, -1)]).chunks())
        )
        with pytest.raises(WorkloadError):
            write_trace(tmp_path / "bad.trace", stream)


class TestCorruption:
    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "corrupt.trace"
        path.write_bytes(b"NOTATRCE" + b"\x00" * 40)
        with pytest.raises(WorkloadError, match="bad magic"):
            read_trace(path)

    def test_truncated_header_raises(self, tmp_path):
        path = tmp_path / "short.trace"
        path.write_bytes(TRACE_MAGIC[:4])
        with pytest.raises(WorkloadError):
            read_trace(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_bytes(b"")
        with pytest.raises(WorkloadError):
            read_trace(path)

    def test_unsupported_version_raises(self, tmp_path, workload_stream):
        path = tmp_path / "versioned.trace"
        write_trace(path, workload_stream)
        raw = bytearray(path.read_bytes())
        raw[8] = 99  # the little-endian version field follows the magic
        path.write_bytes(bytes(raw))
        with pytest.raises(WorkloadError, match="version"):
            read_trace(path)

    def test_foreign_byte_order_raises(self, tmp_path, workload_stream):
        path = tmp_path / "swapped.trace"
        write_trace(path, workload_stream)
        raw = bytearray(path.read_bytes())
        raw[10] ^= 1  # flip the little-endian flag bit (flags field)
        path.write_bytes(bytes(raw))
        with pytest.raises(WorkloadError, match="byte order"):
            read_trace(path)

    def test_truncated_payload_raises(self, tmp_path, workload_stream):
        path = tmp_path / "truncated.trace"
        write_trace(path, workload_stream)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 64])
        with pytest.raises(WorkloadError, match="truncated"):
            list(read_trace(path).chunks())


class TestContentHash:
    def test_hash_tracks_content_not_name(self, tmp_path, workload_stream):
        a = tmp_path / "a.trace"
        b = tmp_path / "b.trace"
        write_trace(a, workload_stream)
        write_trace(b, workload_stream)
        assert trace_content_hash(a) == trace_content_hash(b)

    def test_workload_spec_from_file(self, tmp_path, workload_stream):
        path = tmp_path / "w.trace"
        write_trace(path, workload_stream)
        spec = WorkloadSpec.from_file(path)
        assert spec.kind == "file"
        assert spec.content_hash == trace_content_hash(path)
        stream, tracked = spec.build_stream(None)
        assert tracked == ()
        assert list(stream.rows()) == list(workload_stream.rows())

    def test_cache_key_is_content_addressed(self, tmp_path, workload_stream):
        a = tmp_path / "a.trace"
        b = tmp_path / "b" / "renamed.trace"
        b.parent.mkdir()
        write_trace(a, workload_stream)
        write_trace(b, workload_stream)

        def run_spec(path):
            return RunSpec(
                topology=TopologySpec.flat(6),
                graph=GraphSpec(dataset="facebook", users=120, seed=5),
                workload=WorkloadSpec.from_file(path),
                strategy="random",
            )

        assert run_spec(a).cache_key() == run_spec(b).cache_key()

    def test_hashless_file_specs_never_share_a_cache_token(self):
        a = WorkloadSpec(kind="file", days=0.0, seed=0, path="/tmp/a.trace")
        b = WorkloadSpec(kind="file", days=0.0, seed=0, path="/tmp/b.trace")
        assert a.cache_token() != b.cache_token()

    def test_from_file_accepts_a_flash_seed(self, tmp_path, workload_stream):
        from repro.runtime.spec import FlashSpec

        path = tmp_path / "w.trace"
        write_trace(path, workload_stream)
        flash = FlashSpec(followers=5, start_day=0.1, end_day=0.2)
        a = WorkloadSpec.from_file(path, flash=flash, seed=1)
        b = WorkloadSpec.from_file(path, flash=flash, seed=2)
        assert a.seed == 1 and b.seed == 2
        assert a.cache_token() != b.cache_token()

    def test_flash_seed_changes_file_cache_token(self):
        """The seed drives flash injection, so it must split cache keys."""
        from repro.runtime.spec import FlashSpec

        flash = FlashSpec(followers=5, start_day=0.1, end_day=0.2)
        a = WorkloadSpec(
            kind="file", days=0.0, seed=1, path="/tmp/a.trace",
            content_hash="abc", flash=flash,
        )
        b = WorkloadSpec(
            kind="file", days=0.0, seed=2, path="/tmp/a.trace",
            content_hash="abc", flash=flash,
        )
        assert a.cache_token() != b.cache_token()
        # Without a flash event the seed is inert and must NOT split keys.
        plain_a = WorkloadSpec(
            kind="file", days=0.0, seed=1, path="/tmp/a.trace", content_hash="abc"
        )
        plain_b = WorkloadSpec(
            kind="file", days=0.0, seed=2, path="/tmp/a.trace", content_hash="abc"
        )
        assert plain_a.cache_token() == plain_b.cache_token()

    def test_changed_file_is_refused(self, tmp_path, workload_stream):
        path = tmp_path / "w.trace"
        write_trace(path, workload_stream)
        spec = WorkloadSpec.from_file(path)
        write_trace(
            path,
            EventStream.from_rows([(KIND_READ, 1.0, 1, -1)]),
        )
        with pytest.raises(WorkloadError, match="changed on disk"):
            spec.build_stream(None)


class TestFileWorkloadExecution:
    def test_saved_trace_replays_identically_to_generated(self, tmp_path):
        """A spec replaying a saved trace equals the generating spec's run."""
        generated = RunSpec(
            topology=TopologySpec.flat(6),
            graph=GraphSpec(dataset="facebook", users=120, seed=5),
            workload=WorkloadSpec(kind="synthetic", days=0.5, seed=5),
            strategy="random",
        )
        graph = generated.graph.build()
        stream, _ = generated.workload.build_stream(graph)
        path = tmp_path / "saved.trace"
        write_trace(path, stream)
        replayed = RunSpec(
            topology=generated.topology,
            graph=generated.graph,
            workload=WorkloadSpec.from_file(path),
            strategy="random",
        )
        assert pickle.dumps(execute_spec(generated)) == pickle.dumps(execute_spec(replayed))
        assert generated.cache_key() != replayed.cache_key()
