"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.utility import estimate_profit
from repro.partitioning.kway import partition_kway
from repro.partitioning.quality import part_weights, validate_partition
from repro.socialgraph.graph import SocialGraph
from repro.store.counters import RotatingCounter
from repro.store.memory import MemoryBudget
from repro.store.stats import AccessStatistics
from repro.topology.tree import TreeTopology
from repro.config import ClusterSpec
from repro.workload.requests import ReadRequest, RequestLog, WriteRequest


# --------------------------------------------------------------------------- counters
@given(
    events=st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=1e6), st.integers(1, 5)), max_size=60
    )
)
@settings(max_examples=60, deadline=None)
def test_rotating_counter_total_never_exceeds_recorded(events):
    """The sliding-window total never exceeds the total amount recorded."""
    counter = RotatingCounter(slots=6, period=100.0)
    recorded = 0.0
    for timestamp, amount in sorted(events):
        counter.record(timestamp, amount)
        recorded += amount
        assert counter.total() <= recorded + 1e-9
        assert counter.total() >= 0.0


@given(
    timestamps=st.lists(st.floats(min_value=0.0, max_value=1e5), min_size=1, max_size=40)
)
@settings(max_examples=60, deadline=None)
def test_counter_window_only_keeps_recent_periods(timestamps):
    """After a long silence the window drains completely."""
    counter = RotatingCounter(slots=4, period=10.0)
    for timestamp in sorted(timestamps):
        counter.record(timestamp)
    counter.advance(max(timestamps) + 10.0 * 4 + 1.0)
    assert counter.is_empty()


# --------------------------------------------------------------------------- stats
@given(
    reads=st.lists(st.tuples(st.integers(0, 5), st.floats(0.0, 1000.0)), max_size=50),
    writes=st.lists(st.floats(0.0, 1000.0), max_size=20),
)
@settings(max_examples=50, deadline=None)
def test_access_statistics_totals_are_consistent(reads, writes):
    stats = AccessStatistics(slots=8, period=500.0)
    for origin, timestamp in sorted(reads, key=lambda item: item[1]):
        stats.record_read(origin, timestamp)
    for timestamp in sorted(writes):
        stats.record_write(timestamp)
    by_origin = stats.reads_by_origin()
    assert sum(by_origin.values()) == stats.total_reads()
    assert all(count > 0 for count in by_origin.values())
    assert stats.total_writes() <= len(writes)


# --------------------------------------------------------------------------- memory
@given(
    views=st.integers(1, 5000),
    extra=st.floats(0.0, 300.0),
    servers=st.integers(1, 64),
)
@settings(max_examples=80, deadline=None)
def test_memory_budget_split_is_exact_and_even(views, extra, servers):
    budget = MemoryBudget(views=views, extra_memory_pct=extra, servers=servers)
    capacities = budget.per_server_capacity()
    assert sum(capacities) == budget.total_capacity
    assert max(capacities) - min(capacities) <= 1
    assert budget.total_capacity >= views


# --------------------------------------------------------------------------- graph
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 30)).filter(lambda e: e[0] != e[1]),
        max_size=150,
    )
)
@settings(max_examples=50, deadline=None)
def test_social_graph_degree_invariants(edges):
    graph = SocialGraph()
    for follower, followee in edges:
        graph.add_edge(follower, followee)
    assert graph.num_edges == sum(graph.out_degree(u) for u in graph.users)
    assert graph.num_edges == sum(graph.in_degree(u) for u in graph.users)
    for follower, followee in set(edges):
        assert graph.has_edge(follower, followee)


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 25), st.integers(0, 25)).filter(lambda e: e[0] != e[1]),
        min_size=1,
        max_size=120,
    ),
    parts=st.integers(2, 8),
    seed=st.integers(0, 100),
)
@settings(max_examples=30, deadline=None)
def test_partition_covers_every_node_and_respects_part_range(edges, parts, seed):
    graph = SocialGraph()
    for follower, followee in edges:
        graph.add_edge(follower, followee)
    adjacency = graph.undirected_adjacency()
    result = partition_kway(adjacency, parts=parts, seed=seed)
    validate_partition(result.assignment, set(adjacency), parts)
    weights = part_weights(result.assignment, parts)
    assert sum(weights) == len(adjacency)


# --------------------------------------------------------------------------- request log
@given(
    items=st.lists(
        st.tuples(st.floats(0.0, 1e6), st.booleans(), st.integers(0, 50)), max_size=80
    )
)
@settings(max_examples=50, deadline=None)
def test_request_log_counts_match_contents(items):
    log = RequestLog()
    for timestamp, is_read, user in sorted(items, key=lambda item: item[0]):
        if is_read:
            log.append(ReadRequest(timestamp, user))
        else:
            log.append(WriteRequest(timestamp, user))
    assert log.read_count + log.write_count == len(log)
    log.validate()
    per_day = log.requests_per_day()
    assert sum(d["reads"] for d in per_day.values()) == log.read_count
    assert sum(d["writes"] for d in per_day.values()) == log.write_count


# --------------------------------------------------------------------------- utility
_topology = TreeTopology(
    ClusterSpec(intermediate_switches=2, racks_per_intermediate=2, machines_per_rack=4)
)


@given(
    read_counts=st.lists(st.integers(0, 20), min_size=1, max_size=5),
    writes=st.integers(0, 10),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_estimate_profit_bounded_by_read_volume(read_counts, writes, data):
    """Profit can never exceed the maximum possible read saving (4 switches
    per read) and is never below the negated write cost (5 per write)."""
    rng = random.Random(data.draw(st.integers(0, 1000)))
    server_a = _topology.servers[0].index
    server_b = _topology.servers[-1].index
    origins = _topology.origin_regions(server_a)
    stats = AccessStatistics()
    total_reads = 0
    for count in read_counts:
        origin = origins[rng.randrange(len(origins))]
        if count:
            stats.record_read(origin, 0.0, count)
            total_reads += count
    if writes:
        stats.record_write(0.0, writes)
    broker = _topology.brokers[0].index
    profit = estimate_profit(_topology, stats, server_b, server_a, broker)
    assert profit <= 4 * total_reads + 1e-9
    assert profit >= -5 * writes - 1e-9


# ------------------------------------------------------------------ churn
# Invariants of partitioning/replication under node churn: across random
# join/leave sequences, every user keeps at least one master replica, no
# replica ever sits on a departed server, and the memory budget is never
# exceeded.

_churn_graph = None


def _get_churn_graph():
    global _churn_graph
    if _churn_graph is None:
        from repro.socialgraph.generators import dataset_preset, generate_social_graph

        spec = dataset_preset("facebook", users=90)
        _churn_graph = generate_social_graph(spec, seed=13)
    return _churn_graph


def _churn_engine(seed: int):
    from repro.core.engine import DynaSoRe
    from repro.traffic.accounting import TrafficAccountant

    graph = _get_churn_graph()
    strategy = DynaSoRe(initializer="random", seed=seed)
    budget = MemoryBudget(
        views=graph.num_users,
        extra_memory_pct=100.0,
        servers=len(_topology.servers),
    )
    strategy.bind(_topology, graph, TrafficAccountant(_topology), budget, seed=seed)
    strategy.build_initial_placement()
    return strategy, graph, budget


def _assert_churn_invariants(strategy, graph, budget, down):
    locations = strategy.replica_locations()
    down_devices = {strategy.device_of_position(p) for p in down}
    for user in graph.users:
        devices = locations.get(user)
        assert devices, f"user {user} lost every replica"
        assert not devices & down_devices, f"user {user} has a replica on a down server"
    assert strategy.memory_in_use() <= budget.total_capacity


@given(
    seed=st.integers(0, 10_000),
    steps=st.integers(4, 10),
)
@settings(max_examples=50, deadline=None)
def test_churn_preserves_replication_and_budget_invariants(seed, steps):
    """50 random join/leave sequences never lose a view or bust the budget."""
    strategy, graph, budget = _churn_engine(seed)
    rng = random.Random(seed)
    servers = len(_topology.servers)
    down: set[int] = set()
    now = 0.0
    users = list(graph.users)
    for _ in range(steps):
        rejoin = down and (len(down) >= 3 or rng.random() < 0.5)
        if rejoin:
            position = rng.choice(sorted(down))
            down.discard(position)
            strategy.on_server_up(position, now)
        else:
            candidates = [p for p in range(servers) if p not in down]
            position = rng.choice(candidates)
            down.add(position)
            strategy.on_server_down(position, now, graceful=rng.random() < 0.5)
        # Interleave traffic so replication keeps running during churn.
        for user in rng.sample(users, 5):
            strategy.execute_read(user, now)
        strategy.execute_write(rng.choice(users), now)
        strategy.on_tick(now)
        now += 3600.0
        _assert_churn_invariants(strategy, graph, budget, down)
    # Bring everyone back: the cluster ends at full strength and healthy.
    for position in sorted(down):
        strategy.on_server_up(position, now)
    strategy.on_tick(now)
    _assert_churn_invariants(strategy, graph, budget, set())


# ------------------------------------------------------------------- traffic deltas
from repro.topology.tree import TreeTopology as _TreeTopology
from repro.config import ClusterSpec as _ClusterSpec
from repro.traffic.accounting import TrafficAccountant
from repro.traffic.messages import MessageKind

_DELTA_TOPOLOGY = _TreeTopology(
    _ClusterSpec(
        intermediate_switches=2,
        racks_per_intermediate=2,
        machines_per_rack=2,
        brokers_per_rack=1,
    )
)
_DELTA_LEAVES = [device.index for device in _DELTA_TOPOLOGY.servers] + [
    device.index for device in _DELTA_TOPOLOGY.brokers
]


@given(
    events=st.lists(
        st.tuples(
            st.integers(0, len(_DELTA_LEAVES) - 1),  # source leaf slot
            st.integers(0, len(_DELTA_LEAVES) - 1),  # destination leaf slot
            st.floats(min_value=0.0, max_value=20000.0, allow_nan=False),
            st.integers(0, 7),  # owning shard (mod k)
            st.booleans(),  # roundtrip vs one-way system message
        ),
        max_size=60,
    ),
    shards=st.integers(1, 4),
    measure_from=st.sampled_from([0.0, 3600.0]),
)
@settings(max_examples=60, deadline=None)
def test_traffic_delta_merge_equals_unsplit(events, shards, measure_from):
    """merge(split(workload, k)) == unsplit, for any split of the events.

    The sharded replay engine's exactness hinges on this: distributing a
    workload's messages across k accountants (in any grouping) and summing
    their deltas must reproduce the single accountant bit-for-bit —
    snapshot, top-switch series and message count — including events inside
    the warm-up window (counted, never measured).
    """
    events = sorted(events, key=lambda event: event[2])

    def build() -> TrafficAccountant:
        return TrafficAccountant(
            _DELTA_TOPOLOGY, bucket_width=3600.0, measure_from=measure_from
        )

    def apply(accountant, source_slot, destination_slot, timestamp, roundtrip):
        source = _DELTA_LEAVES[source_slot]
        destination = _DELTA_LEAVES[destination_slot]
        if roundtrip:
            accountant.record_roundtrip(
                source,
                destination,
                MessageKind.READ_REQUEST,
                MessageKind.READ_RESPONSE,
                timestamp,
            )
        else:
            accountant.record(
                source, destination, MessageKind.REPLICA_CONTROL, timestamp
            )

    whole = build()
    parts = [build() for _ in range(shards)]
    for source_slot, destination_slot, timestamp, owner, roundtrip in events:
        apply(whole, source_slot, destination_slot, timestamp, roundtrip)
        apply(parts[owner % shards], source_slot, destination_slot, timestamp, roundtrip)

    merged = build()
    for part in parts:
        merged.merge_delta(part.export_delta())

    assert merged.snapshot() == whole.snapshot()
    assert merged.top_switch_series() == whole.top_switch_series()
    assert merged.message_count == whole.message_count
