"""Tests for the parallel experiment runtime (specs, grids, executor, cache)."""

from __future__ import annotations

import pickle

import pytest

from repro.config import ClusterSpec, SimulationConfig
from repro.exceptions import ConfigurationError
from repro.runtime import (
    FlashSpec,
    GraphSpec,
    ResultCache,
    RunGrid,
    RunSpec,
    RuntimeExecutor,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    build_strategy,
    execute_spec,
)
from repro.runtime import executor as executor_module
from repro.scenarios.faults import CrashRecoverScenario
from repro.simulator.results import SimulationResult
from repro.topology.flat import FlatTopology
from repro.topology.tree import TreeTopology


TINY_CLUSTER = ClusterSpec(
    intermediate_switches=2,
    racks_per_intermediate=2,
    machines_per_rack=4,
    brokers_per_rack=1,
)


def tiny_spec(strategy: str = "random", memory: float = 50.0, **kwargs) -> RunSpec:
    """A spec small enough to execute many times in tests."""
    return RunSpec(
        topology=TopologySpec.tree(TINY_CLUSTER),
        graph=GraphSpec(dataset="facebook", users=120, seed=3),
        workload=WorkloadSpec(kind="synthetic", days=0.2, seed=11),
        strategy=strategy,
        config=SimulationConfig(extra_memory_pct=memory, seed=5),
        **kwargs,
    )


class TestSpecs:
    def test_run_spec_is_hashable_and_picklable(self):
        spec = tiny_spec()
        assert hash(spec) == hash(tiny_spec())
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_cache_key_is_stable_and_distinct(self):
        spec = tiny_spec()
        assert spec.cache_key() == tiny_spec().cache_key()
        assert spec.cache_key() != tiny_spec(memory=100.0).cache_key()
        assert spec.cache_key() != tiny_spec(strategy="spar").cache_key()

    def test_topology_spec_builds_both_kinds(self):
        assert isinstance(TopologySpec.tree(TINY_CLUSTER).build(), TreeTopology)
        assert isinstance(TopologySpec.flat(10).build(), FlatTopology)
        with pytest.raises(ConfigurationError):
            TopologySpec(kind="torus")

    def test_graph_spec_is_deterministic(self):
        spec = GraphSpec(dataset="facebook", users=120, seed=3)
        a, b = spec.build(), spec.build()
        assert a.num_users == b.num_users == 120
        assert sorted(a.edges()) == sorted(b.edges())

    def test_workload_spec_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(kind="replay", days=1.0, seed=1)

    def test_flash_workload_reports_tracked_target(self):
        graph = GraphSpec(dataset="facebook", users=120, seed=3).build()
        workload = WorkloadSpec(
            kind="synthetic",
            days=0.3,
            seed=11,
            flash=FlashSpec(followers=10, start_day=0.05, end_day=0.2),
        )
        log, tracked = workload.build(graph)
        assert len(tracked) == 1
        assert graph.has_user(tracked[0])
        assert log.mutation_count >= 10

    def test_scenario_spec_roundtrip(self):
        spec = ScenarioSpec.of("crash_recover", crash_time=10.0, recover_time=20.0, count=1)
        scenario = spec.build()
        assert isinstance(scenario, CrashRecoverScenario)
        assert scenario.crash_time == 10.0
        with pytest.raises(ConfigurationError):
            ScenarioSpec.of("volcano").build()

    def test_build_strategy_registry(self):
        assert build_strategy("spar", seed=1).name == "spar"
        assert build_strategy("dynasore_hmetis", seed=1).name == "dynasore[hmetis]"
        with pytest.raises(ConfigurationError):
            build_strategy("oracle", seed=1)


class TestGrid:
    def test_product_expansion_order(self):
        configs = [SimulationConfig(extra_memory_pct=m, seed=5) for m in (0.0, 50.0)]
        grid = RunGrid.product(
            TopologySpec.tree(TINY_CLUSTER),
            GraphSpec(dataset="facebook", users=120, seed=3),
            WorkloadSpec(kind="synthetic", days=0.2, seed=11),
            configs,
            ("random", "spar"),
        )
        assert len(grid) == 4
        # Strategy is the innermost axis.
        assert [spec.strategy for spec in grid] == ["random", "spar", "random", "spar"]
        assert [spec.config.extra_memory_pct for spec in grid] == [0.0, 0.0, 50.0, 50.0]

    def test_grid_result_select(self):
        grid = RunGrid.product(
            TopologySpec.tree(TINY_CLUSTER),
            GraphSpec(dataset="facebook", users=120, seed=3),
            WorkloadSpec(kind="synthetic", days=0.2, seed=11),
            [SimulationConfig(extra_memory_pct=m, seed=5) for m in (0.0, 50.0)],
            ("random", "spar"),
        )
        outcome = grid.run(RuntimeExecutor())
        by_strategy = outcome.by_strategy(extra_memory_pct=50.0)
        assert set(by_strategy) == {"random", "spar"}
        assert all(isinstance(r, SimulationResult) for r in by_strategy.values())


class TestExecutor:
    def test_execute_spec_runs_scenario_and_tracking(self):
        spec = tiny_spec(
            strategy="dynasore_hmetis",
            scenario=ScenarioSpec.of("crash_recover", crash_time=600.0, count=1),
            tracked_views=(0,),
        )
        result = execute_spec(spec)
        assert result.requests_executed > 0
        assert [record.kind for record in result.fault_records] == ["crash"]
        assert 0 in result.tracked_views

    def test_serial_and_parallel_results_are_byte_identical(self):
        specs = [tiny_spec("random"), tiny_spec("spar"), tiny_spec("dynasore_hmetis")]
        serial = RuntimeExecutor(jobs=1).run(specs)
        parallel = RuntimeExecutor(jobs=2).run(specs)
        assert [pickle.dumps(a) for a in serial] == [pickle.dumps(b) for b in parallel]

    def test_cached_rerun_returns_identical_result_without_executing(
        self, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path)
        executor = RuntimeExecutor(jobs=1, cache=cache)
        spec = tiny_spec("spar")
        first = executor.run([spec])[0]

        def boom(_spec):  # pragma: no cover - must never run
            raise AssertionError("cache miss: spec was re-executed")

        monkeypatch.setattr(executor_module, "execute_spec", boom)
        second = executor.run([spec])[0]
        assert pickle.dumps(first) == pickle.dumps(second)

    def test_cache_survives_corrupt_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec("random")
        cache.path_for(spec).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(spec).write_bytes(b"not a pickle")
        assert cache.get(spec) is None
        result = RuntimeExecutor(cache=cache).run([spec])[0]
        assert cache.get(spec) is not None
        assert pickle.dumps(cache.get(spec)) == pickle.dumps(result)

    def test_cache_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        RuntimeExecutor(cache=cache).run([tiny_spec("random")])
        assert cache.clear() == 1
        assert cache.get(tiny_spec("random")) is None

    def test_run_labelled(self):
        labelled = [("a", tiny_spec("random")), ("b", tiny_spec("spar"))]
        results = RuntimeExecutor().run_labelled(labelled)
        assert list(results) == ["a", "b"]

    def test_progress_reports_completion(self):
        seen = []
        executor = RuntimeExecutor(progress=seen.append)
        executor.run([tiny_spec("random"), tiny_spec("spar")])
        assert seen[-1].completed == seen[-1].total == 2
        assert seen[-1].describe().startswith("2/2")

    def test_rejects_bad_job_count(self):
        with pytest.raises(ValueError):
            RuntimeExecutor(jobs=0)


class TestDeterminismAcrossBackends:
    """Satellite: serial vs --jobs 2 vs cached re-run, byte-identical."""

    def test_grid_serial_parallel_cache_identical(self, tmp_path):
        configs = [SimulationConfig(extra_memory_pct=m, seed=5) for m in (0.0, 50.0)]
        grid = RunGrid.product(
            TopologySpec.tree(TINY_CLUSTER),
            GraphSpec(dataset="facebook", users=120, seed=3),
            WorkloadSpec(kind="synthetic", days=0.2, seed=11),
            configs,
            ("random", "dynasore_hmetis"),
        )
        serial = RuntimeExecutor(jobs=1, cache=ResultCache(tmp_path)).run(grid.specs)
        parallel = RuntimeExecutor(jobs=2).run(grid.specs)
        cached = RuntimeExecutor(jobs=1, cache=ResultCache(tmp_path)).run(grid.specs)
        payloads = [pickle.dumps(result) for result in serial]
        assert payloads == [pickle.dumps(result) for result in parallel]
        assert payloads == [pickle.dumps(result) for result in cached]
