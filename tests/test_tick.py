"""Batched vs per-slot maintenance tick parity (the fused column sweep).

``DynaSoRe.on_tick`` dispatches between the fused column sweep (rotation +
utility refresh + threshold recompute in one chain walk per dirty position)
and the per-slot reference path; the contract is that both produce
**byte-identical** :class:`SimulationResult`\\ s for every strategy,
scenario and fault/tick interleaving.  This suite pins that contract, plus
the dirty-set tracking the sweep relies on:

* the full strategy × scenario matrix with ``batch_tick`` toggled;
* property tests over random interleavings of faults, maintenance ticks and
  replay modes (``batch_replay`` is drawn at random so the tick sweep is
  exercised against both request paths);
* convergence: positions untouched between ticks are skipped outright (no
  pricing, no threshold recompute) until a counter window expires;
* the negative-utility removal pass and the proactive eviction pass
  interact deterministically across both tick paths;
* the read-only origin views handed out under ``REPRO_CHECK_TABLES=1``
  (the shared ``_origins_cache`` dict must not leak mutable on the pricing
  path), and a full audited run through the batched sweep.
"""

from __future__ import annotations

import random

import pytest

from parity import SCENARIOS, canonical_result_bytes, parity_cluster, parity_graph, parity_stream
from repro.config import ClusterSpec, DynaSoReConfig, SimulationConfig
from repro.constants import HOUR
from repro.runtime.spec import STRATEGY_KEYS, build_strategy
from repro.simulator.engine import ClusterSimulator
from repro.store.tables import NO_SLOT
from repro.topology.tree import TreeTopology

from test_batching import _RandomFaultScenario, _random_stream


def _run_tick_matrix(strategy_key: str, scenario_key: str, batch_tick: bool):
    topology, _ = parity_cluster()
    graph = parity_graph(users=120)
    stream = parity_stream(graph, days=0.25)
    strategy = build_strategy(strategy_key, 7, DynaSoReConfig())
    config = SimulationConfig(extra_memory_pct=60.0, seed=7, batch_tick=batch_tick)
    simulator = ClusterSimulator(
        topology, graph, strategy, config=config, scenario=SCENARIOS[scenario_key]()
    )
    return simulator.run(stream)


@pytest.mark.parametrize("scenario_key", sorted(SCENARIOS))
@pytest.mark.parametrize("strategy_key", STRATEGY_KEYS)
def test_batched_tick_byte_identical(strategy_key, scenario_key):
    """The fused sweep must not change a single byte of the result."""
    batched = _run_tick_matrix(strategy_key, scenario_key, batch_tick=True)
    per_slot = _run_tick_matrix(strategy_key, scenario_key, batch_tick=False)
    assert canonical_result_bytes(batched) == canonical_result_bytes(per_slot)


def _interleaving_run(seed: int, batch_tick: bool):
    """Random workload, faults, tick cadence and replay mode; tick toggled."""
    rng = random.Random(seed)
    spec = ClusterSpec(
        intermediate_switches=2,
        racks_per_intermediate=2,
        machines_per_rack=3,
        brokers_per_rack=1,
    )
    topology = TreeTopology(spec)
    graph = parity_graph(users=80, seed=seed)
    horizon = rng.uniform(4 * HOUR, 30 * HOUR)
    stream = _random_stream(rng, users=80, horizon=horizon)
    strategy_key = rng.choice(STRATEGY_KEYS)
    strategy = build_strategy(strategy_key, 7, DynaSoReConfig())
    config = SimulationConfig(
        extra_memory_pct=rng.choice([40.0, 60.0, 100.0]),
        tick_period=rng.choice([HOUR / 2, HOUR, 2 * HOUR]),
        measure_from=rng.choice([0.0, HOUR]),
        seed=7,
        batch_replay=rng.random() < 0.5,
        batch_tick=batch_tick,
    )
    scenario = _RandomFaultScenario(
        seed=seed, horizon=horizon, servers=len(topology.servers)
    )
    simulator = ClusterSimulator(
        topology, graph, strategy, config=config, scenario=scenario
    )
    result = simulator.run(stream)
    return result, simulator.accountant.snapshot()


@pytest.mark.parametrize("seed", range(8))
def test_random_tick_interleavings_byte_identical(seed):
    """Faults, tick cadence and replay mode never separate the two ticks.

    Each seed draws a random strategy, workload, fault schedule, tick
    period and replay mode (batched or per-event); flipping only
    ``batch_tick`` must leave the result and the traffic snapshot
    byte-identical.
    """
    result_a, snapshot_a = _interleaving_run(seed, batch_tick=True)
    result_b, snapshot_b = _interleaving_run(seed, batch_tick=False)
    assert canonical_result_bytes(result_a) == canonical_result_bytes(result_b)
    assert snapshot_a == snapshot_b


def test_batch_tick_disabled_matches_default():
    """``batch_tick=False`` is the reference path and changes nothing."""
    on = _run_tick_matrix("dynasore_hmetis", "plain", batch_tick=True)
    off = _run_tick_matrix("dynasore_hmetis", "plain", batch_tick=False)
    assert canonical_result_bytes(on) == canonical_result_bytes(off)


# ---------------------------------------------------------------------------
# Dirty-set tracking: converged positions skip the sweep
# ---------------------------------------------------------------------------
def test_converged_positions_skip_sweep():
    """With no traffic between ticks, the sweep prices nothing at all.

    After one sweep every position is clean; until a counter window is due
    to drop history (24 hours after the last record), subsequent ticks must
    skip pricing and threshold recomputation entirely.
    """
    topology, _ = parity_cluster()
    graph = parity_graph(users=80)
    stream = parity_stream(graph, days=0.1)
    strategy = build_strategy("dynasore_hmetis", 7, DynaSoReConfig())
    simulator = ClusterSimulator(
        topology, graph, strategy, config=SimulationConfig(seed=7)
    )
    simulator.run(stream)

    table = strategy.tables
    # The run's final tick may still evict (evictions re-dirty the touched
    # positions); one quiet settling tick later the placement is converged.
    # Dirty sweeps publish the lazy "sweep again next tick" bound, so a
    # second quiet tick is needed before the exact expiry bounds exist.
    strategy.on_tick(strategy._last_tick + HOUR)
    assert not any(table._tick_dirty)
    strategy.on_tick(strategy._last_tick + HOUR)
    assert not any(table._tick_dirty)

    threshold_calls: list[int] = []
    original = table.update_admission_threshold

    def spy(position, admission_fill):
        threshold_calls.append(position)
        return original(position, admission_fill)

    table.update_admission_threshold = spy
    try:
        # No position is dirty and no window is near expiry (the workload
        # spans ~2.4 hours, windows hold 24): the sweep must skip them all.
        strategy.on_tick(strategy._last_tick + 2 * HOUR)
    finally:
        del table.update_admission_threshold
    assert threshold_calls == []
    assert not any(table._tick_dirty)


def test_sweep_reprices_after_traffic():
    """A read between ticks re-dirties exactly the touched positions."""
    topology, _ = parity_cluster()
    graph = parity_graph(users=80)
    stream = parity_stream(graph, days=0.1)
    strategy = build_strategy("dynasore_hmetis", 7, DynaSoReConfig())
    simulator = ClusterSimulator(
        topology, graph, strategy, config=SimulationConfig(seed=7)
    )
    simulator.run(stream)
    table = strategy.tables
    quiet = strategy._last_tick + HOUR
    strategy.on_tick(quiet)
    assert not any(table._tick_dirty)
    reader = next(iter(graph.users))
    strategy.execute_read(reader, quiet + 60.0)
    touched = {
        position for position, dirty in enumerate(table._tick_dirty) if dirty
    }
    assert touched

    swept: list[int] = []
    original = table.update_admission_threshold

    def spy(position, admission_fill):
        swept.append(position)
        return original(position, admission_fill)

    table.update_admission_threshold = spy
    try:
        strategy.on_tick(quiet + HOUR)
    finally:
        del table.update_admission_threshold
    # Every position the read touched was re-priced; the sweep never
    # reprices more than the dirty set (the read may cascade into
    # placement changes, which dirty further positions for the next tick).
    assert touched <= set(swept)


# ---------------------------------------------------------------------------
# Negative-utility removal x proactive eviction, across both tick paths
# ---------------------------------------------------------------------------
def _placement_fingerprint(strategy):
    table = strategy.tables
    return (
        [(user, table.user_positions(user)) for user in sorted(table.users())],
        list(table.admission_thresholds),
        [table._utility[slot] for slot in range(len(table._utility))
         if table._server[slot] != NO_SLOT],
    )


def _negative_utility_course(batch_tick: bool):
    """Drive a replica from creation to negative-utility removal by hand.

    A remote reader's traffic replicates an author's view near the reader;
    the reads then stop while the author keeps writing, so once the read
    windows rotate out, the replica's upkeep cost exceeds its benefit and
    the tick's negative-utility pass must drop it — at the same tick on
    both paths.
    """
    topology, _ = parity_cluster()
    graph = parity_graph(users=40)
    strategy = build_strategy("dynasore_random", 7, DynaSoReConfig())
    simulator = ClusterSimulator(
        topology,
        graph,
        strategy,
        config=SimulationConfig(
            extra_memory_pct=200.0, seed=7, batch_tick=batch_tick
        ),
    )
    simulator.prepare()
    table = strategy.tables
    users = list(graph.users)
    # Find a reader whose proxy sits away from the author's replica, so the
    # read traffic actually motivates a second replica (Algorithm 2).
    author = None
    for candidate_author in users:
        for candidate_reader in users:
            if candidate_reader == candidate_author:
                continue
            for step in range(6):
                strategy.execute_read(
                    candidate_reader, 60.0 * step, targets=(candidate_author,)
                )
            if table.user_replica_count(candidate_author) > 1:
                author = candidate_author
                break
        if author is not None:
            break
    assert author is not None, "no read pattern produced a replication"

    course = [_placement_fingerprint(strategy)]
    for hour in range(1, 30):
        now = hour * HOUR
        # Steady writes keep the upkeep cost alive while the reads decay.
        for burst in range(5):
            strategy.execute_write(author, now - 1800.0 + burst * 60.0)
        strategy.on_tick(now)
        course.append(_placement_fingerprint(strategy))
    return course, table.user_replica_count(author)


def test_negative_removal_and_eviction_interact_deterministically():
    """Both tick paths walk the same removal course, tick for tick."""
    course_batched, final_batched = _negative_utility_course(batch_tick=True)
    course_reference, final_reference = _negative_utility_course(batch_tick=False)
    assert course_batched == course_reference
    # The decayed replica was actually removed by the negative pass.
    assert final_batched == 1
    assert final_reference == 1


# ---------------------------------------------------------------------------
# Read-only origin views under REPRO_CHECK_TABLES (shared-cache aliasing)
# ---------------------------------------------------------------------------
def test_audit_mode_serves_readonly_origin_views(monkeypatch):
    from types import MappingProxyType

    from repro.store.tables import ReplicaTable

    monkeypatch.setenv("REPRO_CHECK_TABLES", "1")
    table = ReplicaTable(positions=2)
    slot = table.allocate(1, 0)
    table.stats.record_read(slot, origin=3, timestamp=0.0)
    table.stats.record_read(slot, origin=5, timestamp=10.0)
    view = table.stats.reads_by_origin(slot)
    assert isinstance(view, MappingProxyType)
    assert dict(view) == {3: 1.0, 5: 1.0}
    with pytest.raises(TypeError):
        view[3] = 99.0
    # The underlying cache stays writable for its owner (the record path).
    table.stats.record_read(slot, origin=3, timestamp=20.0)
    assert dict(table.stats.reads_by_origin(slot)) == {3: 2.0, 5: 1.0}


def test_default_mode_serves_raw_cache_dict(monkeypatch):
    from repro.store.tables import ReplicaTable

    monkeypatch.delenv("REPRO_CHECK_TABLES", raising=False)
    table = ReplicaTable(positions=1)
    slot = table.allocate(1, 0)
    table.stats.record_read(slot, origin=2, timestamp=0.0)
    view = table.stats.reads_by_origin(slot)
    assert isinstance(view, dict)
    # Shared cache: same object on the next query (the fast path the
    # decision kernel's candidate memo keys on).
    assert table.stats.reads_by_origin(slot) is view


def test_audit_mode_prices_through_readonly_views(monkeypatch):
    """Algorithm 1 works unchanged on the immutable origin views."""
    monkeypatch.setenv("REPRO_CHECK_TABLES", "1")
    topology, _ = parity_cluster()
    graph = parity_graph(users=80)
    stream = parity_stream(graph, days=0.25)
    strategy = build_strategy("dynasore_hmetis", 7, DynaSoReConfig())
    simulator = ClusterSimulator(
        topology,
        graph,
        strategy,
        config=SimulationConfig(seed=7, batch_tick=True),
        scenario=SCENARIOS["crash"](),
    )
    assert simulator._check_tables
    result = simulator.run(stream)
    assert result.requests_executed > 0


def test_audited_batched_tick_matches_unaudited(monkeypatch):
    """The audit views are observation-only: results stay byte-identical."""

    def run(audit: bool):
        if audit:
            monkeypatch.setenv("REPRO_CHECK_TABLES", "1")
        else:
            monkeypatch.delenv("REPRO_CHECK_TABLES", raising=False)
        return _run_tick_matrix("dynasore_metis", "plain", batch_tick=True)

    assert canonical_result_bytes(run(True)) == canonical_result_bytes(run(False))
