"""Shared harness of the golden parity suite.

Builds matched simulation runs for the table-backed strategies and their
frozen seed twins (:mod:`repro.legacy`) and canonicalises
:class:`~repro.simulator.results.SimulationResult`\\ s into bytes so the
suite can assert **byte-identical** outcomes.  Kept outside the test module
so the strategy benchmarks can reuse the exact same scenario matrix.
"""

from __future__ import annotations

import dataclasses
import pickle

from repro.config import ClusterSpec, DynaSoReConfig, SimulationConfig
from repro.constants import HOUR
from repro.legacy import build_legacy_strategy

# Imported from the run registry so a newly registered strategy
# automatically joins the parity matrix (and fails loudly until it has a
# legacy twin or an explicit exemption).
from repro.runtime.spec import STRATEGY_KEYS, build_strategy
from repro.scenarios import CrashRecoverScenario, DiurnalLoadScenario
from repro.simulator.engine import ClusterSimulator
from repro.socialgraph.generators import dataset_preset, generate_social_graph
from repro.topology.tree import TreeTopology
from repro.workload.synthetic import SyntheticWorkloadConfig, SyntheticWorkloadGenerator


#: Scenario factories of the parity matrix (fresh instance per run).
SCENARIOS = {
    "plain": lambda: None,
    "diurnal": lambda: DiurnalLoadScenario(trough_fraction=0.3),
    "crash": lambda: CrashRecoverScenario(
        crash_time=2 * HOUR, recover_time=5 * HOUR, count=2
    ),
}


def parity_cluster() -> tuple[TreeTopology, int]:
    """Small 2x2x3 tree (12 servers) shared by every parity run."""
    spec = ClusterSpec(
        intermediate_switches=2,
        racks_per_intermediate=2,
        machines_per_rack=3,
        brokers_per_rack=1,
    )
    return TreeTopology(spec), 12


def parity_graph(users: int = 220, seed: int = 7):
    """Community-structured graph small enough to replay the full matrix."""
    return generate_social_graph(dataset_preset("facebook", users=users), seed=seed)


def parity_stream(graph, days: float = 0.5, seed: int = 7):
    """Synthetic event stream (reads, writes and graph churn) for one run."""
    config = SyntheticWorkloadConfig(days=days, seed=seed)
    return SyntheticWorkloadGenerator(graph, config).stream()


def run_strategy(
    strategy_key: str,
    scenario_key: str,
    *,
    legacy: bool,
    users: int = 220,
    extra_memory_pct: float = 60.0,
    tracked: int = 2,
):
    """One simulation run of the parity matrix; returns a SimulationResult."""
    topology, _ = parity_cluster()
    graph = parity_graph(users=users)
    stream = parity_stream(graph)
    build = build_legacy_strategy if legacy else build_strategy
    strategy = build(strategy_key, 7, DynaSoReConfig())
    config = SimulationConfig(extra_memory_pct=extra_memory_pct, seed=7)
    simulator = ClusterSimulator(
        topology,
        graph,
        strategy,
        config=config,
        scenario=SCENARIOS[scenario_key](),
    )
    for user in list(graph.users)[:tracked]:
        simulator.track_view(user)
    return simulator.run(stream)


def canonical_result_bytes(result) -> bytes:
    """Canonical byte serialisation of a SimulationResult.

    ``pickle`` of the plain-data tree is deterministic here: every container
    is built in the same order by both paths when their decision sequences
    match, and all arithmetic is exact (integer-valued floats), so equal
    behaviour implies equal bytes — and any drift shows up as a diff.
    """
    tree = dataclasses.asdict(result)
    return pickle.dumps(tree, protocol=4)


def result_digest(result) -> str:
    """Short hex digest used in assertion messages."""
    import hashlib

    return hashlib.sha256(canonical_result_bytes(result)).hexdigest()[:16]
