"""Sharded multi-process replay: byte-identity, fallbacks, and plumbing.

The contract under test is *exactness*: for every strategy and scenario of
the golden parity matrix, replaying through ``shards`` worker processes
must produce a :class:`~repro.simulator.results.SimulationResult` that is
**byte-identical** to the single-process batched path — partitioned
execution for the pure strategies, transparent replicated fallback for the
rest.  The suite also pins the fallback reasons, the closed-universe guard,
the partitioner entry point, the ``RunSpec``/executor integration (one
cache entry across shard counts) and the heartbeat protocol.

CI's sharded parity job selects the crash scenario with ``-k crash``; keep
scenario names inside the test ids.
"""

from __future__ import annotations

import dataclasses
import functools

import pytest

from parity import (
    SCENARIOS,
    canonical_result_bytes,
    parity_cluster,
    parity_graph,
    parity_stream,
    run_strategy,
)
from repro.config import DynaSoReConfig, SimulationConfig
from repro.exceptions import ShardFallbackError, SimulationError
from repro.partitioning import assign_user_shards
from repro.runtime.executor import Progress, ResultCache, RuntimeExecutor, execute_spec
from repro.runtime.spec import (
    STRATEGY_KEYS,
    GraphSpec,
    RunSpec,
    TopologySpec,
    WorkloadSpec,
    build_strategy,
)
from repro.simulator.shard import (
    ShardHeartbeat,
    ShardLoadSummary,
    ShardMaterials,
    _build_owner_map,
    _execute_shard,
    materials_from_spec,
    placement_digest,
    run_sharded,
    run_sharded_detailed,
)
from repro.workload.activity import activity_for_spec
from repro.workload.stream import KIND_READ, KIND_WRITE, NO_AUX, EventStream

#: Strategies whose request execution never feeds back into placement —
#: exactly the set the engine may partition (``shard_requests_pure``).
PURE_STRATEGIES = frozenset({"random", "metis", "hmetis", "spar"})


def parity_materials(strategy_key: str, scenario_key: str) -> ShardMaterials:
    """Shard materials mirroring :func:`parity.run_strategy` (tracked=0)."""
    return ShardMaterials(
        topology_factory=lambda: parity_cluster()[0],
        graph_factory=parity_graph,
        strategy_factory=lambda: build_strategy(strategy_key, 7, DynaSoReConfig()),
        stream_factory=parity_stream,
        config=SimulationConfig(extra_memory_pct=60.0, seed=7),
        scenario_factory=SCENARIOS[scenario_key],
    )


# ---------------------------------------------------------------------------
# Byte-identity across the full parity matrix
# ---------------------------------------------------------------------------
class TestShardedParity:
    """shards=k replay is byte-identical to the single-process path."""

    @pytest.mark.parametrize("scenario_key", sorted(SCENARIOS))
    @pytest.mark.parametrize("strategy_key", STRATEGY_KEYS)
    def test_two_shards_byte_identical(self, strategy_key, scenario_key):
        report = run_sharded_detailed(parity_materials(strategy_key, scenario_key), 2)
        reference = run_strategy(strategy_key, scenario_key, legacy=False, tracked=0)
        assert canonical_result_bytes(report.result) == canonical_result_bytes(
            reference
        ), f"sharded replay diverged for {strategy_key}/{scenario_key}"
        expected = "partitioned" if strategy_key in PURE_STRATEGIES else "replicated"
        assert report.mode == expected

    def test_four_shards_byte_identical(self):
        report = run_sharded_detailed(parity_materials("spar", "crash"), 4)
        reference = run_strategy("spar", "crash", legacy=False, tracked=0)
        assert report.mode == "partitioned"
        assert len(report.outcomes) == 4
        assert canonical_result_bytes(report.result) == canonical_result_bytes(
            reference
        )

    def test_one_shard_runs_in_process(self):
        report = run_sharded_detailed(parity_materials("random", "plain"), 1)
        reference = run_strategy("random", "plain", legacy=False, tracked=0)
        assert report.mode == "single"
        assert report.fallback_reason is None
        assert canonical_result_bytes(report.result) == canonical_result_bytes(
            reference
        )

    def test_wave_scheduling_changes_nothing(self):
        """Workers never wait on each other, so running the fleet one
        process at a time (max_workers=1) is byte-identical."""
        waves = run_sharded(parity_materials("spar", "plain"), 3, max_workers=1)
        at_once = run_sharded(parity_materials("spar", "plain"), 3)
        assert canonical_result_bytes(waves) == canonical_result_bytes(at_once)

    def test_partitioned_workers_agree_on_placement(self):
        """The replicated-decision-plane audit: every worker ends with the
        same placement digest, and the merge records the assignment."""
        report = run_sharded_detailed(parity_materials("metis", "diurnal"), 2)
        assert report.mode == "partitioned"
        digests = {outcome.digest for outcome in report.outcomes}
        assert len(digests) == 1 and None not in digests
        assert report.assignment is not None
        assert report.assignment.shards == 2


# ---------------------------------------------------------------------------
# Byte-identity with activity-weighted assignment on a skewed workload
# ---------------------------------------------------------------------------
def skewed_workload() -> WorkloadSpec:
    """A celebrity read storm: the canonical activity-skewed workload."""
    return WorkloadSpec.of(
        "celebrity_storm", days=1.0, seed=5, celebrities=3, reads_per_follower=6.0
    )


def skewed_materials(
    strategy_key: str, scenario_key: str, activity: bool = True
) -> ShardMaterials:
    """Shard materials replaying the skewed workload over the parity graph."""
    workload = skewed_workload()

    def stream_factory(graph):
        stream, _ = workload.build_stream(graph)
        return stream

    return ShardMaterials(
        topology_factory=lambda: parity_cluster()[0],
        graph_factory=parity_graph,
        strategy_factory=lambda: build_strategy(strategy_key, 7, DynaSoReConfig()),
        stream_factory=stream_factory,
        config=SimulationConfig(extra_memory_pct=60.0, seed=7),
        scenario_factory=SCENARIOS[scenario_key],
        activity_factory=(
            (lambda graph: activity_for_spec(workload, graph)) if activity else None
        ),
    )


@functools.lru_cache(maxsize=None)
def skewed_reference_bytes(strategy_key: str, scenario_key: str) -> bytes:
    """Single-process reference of the skewed workload, cached per cell."""
    report = run_sharded_detailed(
        skewed_materials(strategy_key, scenario_key, activity=False), 1
    )
    return canonical_result_bytes(report.result)


class TestWeightedShardedParity:
    """Activity-weighted assignment changes which worker executes which
    event — never the merged result.  The skewed workload is exactly where
    the weighted partition diverges most from the population one, so this
    matrix is the regression net for the activity-weighted path."""

    @pytest.mark.parametrize("scenario_key", sorted(SCENARIOS))
    @pytest.mark.parametrize("strategy_key", STRATEGY_KEYS)
    def test_weighted_two_shards_byte_identical(self, strategy_key, scenario_key):
        report = run_sharded_detailed(skewed_materials(strategy_key, scenario_key), 2)
        assert canonical_result_bytes(report.result) == skewed_reference_bytes(
            strategy_key, scenario_key
        ), f"weighted sharded replay diverged for {strategy_key}/{scenario_key}"
        expected = "partitioned" if strategy_key in PURE_STRATEGIES else "replicated"
        assert report.mode == expected

    @pytest.mark.parametrize("scenario_key", sorted(SCENARIOS))
    @pytest.mark.parametrize("strategy_key", sorted(PURE_STRATEGIES))
    def test_weighted_four_shards_byte_identical(self, strategy_key, scenario_key):
        report = run_sharded_detailed(skewed_materials(strategy_key, scenario_key), 4)
        assert report.mode == "partitioned"
        assert canonical_result_bytes(report.result) == skewed_reference_bytes(
            strategy_key, scenario_key
        ), f"weighted 4-shard replay diverged for {strategy_key}/{scenario_key}"
        assert report.assignment.weighted_populations is not None
        assert report.load_summary is not None
        assert report.load_summary.balanced_by == "activity"

    def test_weighted_assignment_lowers_expected_imbalance(self):
        """On the skewed workload the activity-weighted partition spreads
        expected events strictly more evenly than the population one."""
        graph = parity_graph()
        profile = activity_for_spec(skewed_workload(), graph)

        def expected_imbalance(assignment) -> float:
            loads = [0.0] * assignment.shards
            for user, rate in profile.rates.items():
                loads[assignment.owner_of(user)] += rate
            return max(loads) * assignment.shards / sum(loads)

        unweighted = assign_user_shards(graph, 4, seed=7)
        weighted = assign_user_shards(graph, 4, seed=7, activity=profile)
        assert weighted.shard_map != unweighted.shard_map
        assert expected_imbalance(weighted) < expected_imbalance(unweighted)
        assert weighted.weighted_imbalance is not None
        assert weighted.weighted_imbalance < expected_imbalance(unweighted)


# ---------------------------------------------------------------------------
# Fallback semantics
# ---------------------------------------------------------------------------
class TestReplicatedFallback:
    def test_impure_strategy_reports_reason(self):
        report = run_sharded_detailed(parity_materials("dynasore_metis", "plain"), 2)
        assert report.mode == "replicated"
        assert "shard_requests_pure" in report.fallback_reason

    def test_per_event_config_reports_reason(self):
        materials = parity_materials("random", "plain")
        materials.config = dataclasses.replace(materials.config, batch_replay=False)
        report = run_sharded_detailed(materials, 2)
        assert report.mode == "replicated"
        assert "batch_replay" in report.fallback_reason

    def test_open_universe_triggers_guard_then_replicated(self):
        """An event touching a user outside the initial graph makes a worker
        raise ShardFallbackError *before* executing the chunk; the
        coordinator restarts replicated and still matches serial replay."""
        materials = parity_materials("random", "plain")
        base_stream = materials.stream_factory

        def with_alien(graph):
            alien = max(graph.users) + 17
            rows = [
                (KIND_WRITE, 30.0, alien, NO_AUX),
                (KIND_READ, 60.0, alien, NO_AUX),
            ]
            prefix = EventStream.from_rows(rows)
            from repro.workload.stream import merge_streams

            return merge_streams(prefix, base_stream(graph))

        materials.stream_factory = with_alien
        report = run_sharded_detailed(materials, 2)
        assert report.mode == "replicated"
        assert "initial graph" in report.fallback_reason
        reference = run_sharded(materials, 1)
        assert canonical_result_bytes(report.result) == canonical_result_bytes(
            reference
        )

    def test_guard_raises_before_any_event_executes(self):
        """Unit-level: a partitioned worker whose owner map cannot resolve
        the chunk's users fails with ShardFallbackError."""
        materials = parity_materials("random", "plain")
        with pytest.raises(ShardFallbackError):
            _execute_shard(0, 2, True, b"", materials)

    def test_shard_count_validation(self):
        materials = parity_materials("random", "plain")
        with pytest.raises(SimulationError):
            run_sharded_detailed(materials, 0)
        with pytest.raises(SimulationError):
            run_sharded_detailed(materials, 2, max_workers=0)


# ---------------------------------------------------------------------------
# Partitioner entry point
# ---------------------------------------------------------------------------
class TestUserSharding:
    def test_assignment_is_balanced_and_total(self):
        graph = parity_graph()
        assignment = assign_user_shards(graph, 4)
        assert assignment.shards == 4
        assert sum(assignment.populations) == len(graph.users)
        assert max(assignment.populations) - min(assignment.populations) <= max(
            2, len(graph.users) // 8
        )

    def test_assignment_is_deterministic(self):
        graph = parity_graph()
        first = assign_user_shards(graph, 3)
        second = assign_user_shards(graph, 3)
        assert first.shard_map == second.shard_map
        assert first.edge_cut == second.edge_cut

    def test_owner_of_covers_unmapped_users(self):
        graph = parity_graph()
        assignment = assign_user_shards(graph, 3)
        beyond = len(assignment.shard_map) + 5
        assert assignment.owner_of(beyond) == beyond % 3
        for user in list(graph.users)[:10]:
            assert assignment.owner_of(user) == assignment.shard_map[user]

    def test_single_shard_is_trivial(self):
        graph = parity_graph()
        assignment = assign_user_shards(graph, 1)
        assert set(assignment.shard_map) == {0}
        assert assignment.edge_cut == 0

    def test_shard_count_bounds(self):
        from repro.exceptions import PartitioningError

        graph = parity_graph()
        with pytest.raises(PartitioningError):
            assign_user_shards(graph, 0)
        with pytest.raises(PartitioningError):
            assign_user_shards(graph, 257)

    def test_owner_map_marks_holes_unowned(self):
        from repro.simulator.engine import UNOWNED

        graph = parity_graph()
        assignment = assign_user_shards(graph, 2)
        owner_map = _build_owner_map(graph, assignment)
        users = set(graph.users)
        for user in range(len(owner_map)):
            if user in users:
                assert owner_map[user] == assignment.shard_map[user]
            else:
                assert owner_map[user] == UNOWNED


# ---------------------------------------------------------------------------
# Placement digests
# ---------------------------------------------------------------------------
class TestPlacementDigest:
    def test_equal_runs_equal_digest(self):
        results = []
        for _ in range(2):
            materials = parity_materials("spar", "plain")
            outcome = _execute_shard(0, 1, False, b"", materials)
            results.append(placement_digest_from(materials, outcome))
        assert results[0] == results[1]
        assert results[0] is not None

    def test_different_strategies_differ(self):
        digests = set()
        for key in ("random", "spar"):
            materials = parity_materials(key, "plain")
            strategy = materials.strategy_factory()
            topology = materials.topology_factory()
            graph = materials.graph_factory()
            from repro.simulator.engine import ClusterSimulator

            simulator = ClusterSimulator(topology, graph, strategy, materials.config)
            simulator.run(materials.stream_factory(graph))
            digests.add(placement_digest(strategy))
        assert len(digests) == 2


def placement_digest_from(materials, outcome) -> str | None:
    """Re-run and digest — helper keeping the digest test honest: digests
    must be reproducible from a fresh build, not from shared state."""
    strategy = materials.strategy_factory()
    topology = materials.topology_factory()
    graph = materials.graph_factory()
    from repro.simulator.engine import ClusterSimulator

    simulator = ClusterSimulator(topology, graph, strategy, materials.config)
    result = simulator.run(materials.stream_factory(graph))
    assert canonical_result_bytes(result) == canonical_result_bytes(outcome.result)
    return placement_digest(strategy)


# ---------------------------------------------------------------------------
# RunSpec / executor / CLI integration
# ---------------------------------------------------------------------------
def small_spec(**overrides) -> RunSpec:
    base = dict(
        topology=TopologySpec(),
        graph=GraphSpec(dataset="facebook", users=120, seed=3),
        workload=WorkloadSpec(kind="synthetic", days=0.2, seed=11),
        strategy="spar",
    )
    base.update(overrides)
    return RunSpec(**base)


class TestSpecIntegration:
    def test_execute_spec_routes_shards(self):
        spec = small_spec()
        single = execute_spec(spec)
        sharded = execute_spec(dataclasses.replace(spec, shards=2))
        assert canonical_result_bytes(sharded) == canonical_result_bytes(single)

    def test_cache_key_ignores_shards(self):
        spec = small_spec()
        assert spec.cache_key() == dataclasses.replace(spec, shards=4).cache_key()

    def test_cache_key_ignores_shard_activity(self):
        """Like ``shards``, the balance objective only moves work between
        workers — results (and so cache entries) are shared."""
        spec = small_spec()
        assert (
            spec.cache_key()
            == dataclasses.replace(spec, shard_activity=False).cache_key()
        )

    def test_spec_activity_toggle_controls_materials(self):
        materials = materials_from_spec(small_spec())
        assert materials.activity_factory is not None
        profile = materials.activity_factory(parity_graph())
        assert profile.rates and profile.source == "analytic"
        opt_out = materials_from_spec(small_spec(shard_activity=False))
        assert opt_out.activity_factory is None

    def test_executor_population_balancing_is_byte_identical(self):
        """``shard_activity=False`` (the executor-level opt-out) changes the
        assignment, never the result."""
        spec = small_spec()
        result = RuntimeExecutor(shards=2, shard_activity=False).run([spec])[0]
        assert canonical_result_bytes(result) == canonical_result_bytes(
            execute_spec(spec)
        )

    def test_executor_shares_cache_across_shard_counts(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(tmp_path / "cache")
        serial = RuntimeExecutor(cache=cache).run([spec])[0]
        seen: list[Progress] = []
        sharded_executor = RuntimeExecutor(
            cache=cache, shards=2, progress=seen.append
        )
        sharded = sharded_executor.run([spec])[0]
        assert canonical_result_bytes(sharded) == canonical_result_bytes(serial)
        assert seen[-1].cached == 1  # second run was a pure cache hit

    def test_executor_validates_shards(self):
        with pytest.raises(ValueError):
            RuntimeExecutor(shards=0)

    def test_materials_from_spec_rejects_tracked_views(self):
        spec = small_spec(tracked_views=(3,))
        with pytest.raises(SimulationError):
            materials_from_spec(spec)

    def test_cli_exposes_shards_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["run", "figure3c", "--shards", "4"])
        assert args.shards == 4
        assert args.shard_balance == "activity"

    def test_cli_shard_balance_flag_reaches_executor(self):
        from repro.cli import build_executor, build_parser
        from repro.config import ExperimentProfile

        args = build_parser().parse_args(
            ["run", "figure3c", "--shards", "2", "--shard-balance", "population"]
        )
        executor = build_executor(
            ExperimentProfile.by_name("ci"),
            no_cache=True,
            shards=args.shards,
            shard_balance=args.shard_balance,
        )
        assert executor.shards == 2
        assert executor.shard_activity is False


# ---------------------------------------------------------------------------
# Heartbeats
# ---------------------------------------------------------------------------
class TestHeartbeats:
    def test_single_mode_emits_heartbeats(self):
        beats = []
        run_sharded_detailed(
            parity_materials("random", "plain"),
            1,
            progress=beats.append,
            heartbeat_interval=0.0,
            horizon=43200.0,
        )
        assert beats
        first = beats[0]
        assert first.mode == "single"
        assert "shard 1/1" in first.describe()
        assert any(beat.eta_seconds is not None for beat in beats)

    def test_partitioned_workers_emit_heartbeats(self):
        beats = []
        report = run_sharded_detailed(
            parity_materials("spar", "plain"),
            2,
            progress=beats.append,
            heartbeat_interval=0.0,
        )
        assert report.mode == "partitioned"
        heartbeats = [beat for beat in beats if isinstance(beat, ShardHeartbeat)]
        assert {beat.shard_id for beat in heartbeats} <= {0, 1}
        assert all(beat.mode == "partitioned" for beat in heartbeats)
        assert heartbeats, "workers never reported"

    def test_partitioned_run_emits_load_summary(self):
        """After the merge, the coordinator reports expected vs. actual
        per-shard load through the same progress channel."""
        beats = []
        report = run_sharded_detailed(
            parity_materials("spar", "plain"), 2, progress=beats.append
        )
        assert report.mode == "partitioned"
        summaries = [beat for beat in beats if isinstance(beat, ShardLoadSummary)]
        assert len(summaries) == 1
        summary = summaries[0]
        assert summary is report.load_summary
        assert summary.balanced_by == "population"  # no activity_factory here
        assert len(summary.cpu_shares) == 2
        assert abs(sum(summary.cpu_shares) - 1.0) < 1e-9
        assert abs(sum(summary.expected_shares) - 1.0) < 1e-9
        assert summary.cpu_imbalance >= 1.0
        line = summary.describe()
        assert "population-balanced" in line and "cpu imbalance" in line

    def test_progress_note_rendering(self):
        progress = Progress(
            completed=1, total=2, cached=0, elapsed=3.0, eta=None, note="shard 1/2"
        )
        assert progress.describe().endswith("— shard 1/2")
