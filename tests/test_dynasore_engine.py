"""Tests for the DynaSoRe placement engine."""

from __future__ import annotations

import pytest

from repro.config import DynaSoReConfig
from repro.constants import HOUR
from repro.core.engine import DynaSoRe, fit_assignment_to_capacity
from repro.exceptions import ConfigurationError, SimulationError
from repro.store.memory import MemoryBudget
from repro.traffic.accounting import TrafficAccountant


def bind_dynasore(
    topology,
    graph,
    extra_memory_pct=50.0,
    initializer="hmetis",
    config=None,
    seed=3,
):
    strategy = DynaSoRe(initializer=initializer, config=config or DynaSoReConfig(), seed=seed)
    accountant = TrafficAccountant(topology)
    budget = MemoryBudget(
        views=graph.num_users, extra_memory_pct=extra_memory_pct, servers=len(topology.servers)
    )
    strategy.bind(topology, graph, accountant, budget, seed=seed)
    strategy.build_initial_placement()
    return strategy, accountant


class TestFitAssignment:
    def test_respects_capacity(self):
        assignment = {user: 0 for user in range(10)}
        fitted = fit_assignment_to_capacity(assignment, [4, 4, 4])
        counts = [list(fitted.values()).count(i) for i in range(3)]
        assert all(count <= 4 for count in counts)
        assert set(fitted) == set(assignment)

    def test_noop_when_already_fitting(self):
        assignment = {0: 0, 1: 1, 2: 2}
        assert fit_assignment_to_capacity(assignment, [1, 1, 1]) == assignment

    def test_raises_when_impossible(self):
        with pytest.raises(SimulationError):
            fit_assignment_to_capacity({0: 0, 1: 0, 2: 0}, [1, 1])

    def test_rejects_invalid_position(self):
        with pytest.raises(SimulationError):
            fit_assignment_to_capacity({0: 5}, [1, 1])


class TestInitialPlacement:
    def test_every_view_has_one_replica(self, tree_topology, small_graph):
        strategy, _ = bind_dynasore(tree_topology, small_graph)
        locations = strategy.replica_locations()
        assert set(locations) == set(small_graph.users)
        assert all(len(devices) == 1 for devices in locations.values())

    def test_capacity_respected_at_zero_extra_memory(self, tree_topology, small_graph):
        strategy, _ = bind_dynasore(tree_topology, small_graph, extra_memory_pct=0.0)
        for server in strategy.servers:
            assert server.used <= server.capacity

    def test_proxies_start_in_view_rack(self, tree_topology, small_graph):
        strategy, _ = bind_dynasore(tree_topology, small_graph)
        for user in list(small_graph.users)[:20]:
            device = next(iter(strategy.replica_locations()[user]))
            broker = strategy.proxies.read_broker(user)
            assert tree_topology.rack_of(broker) == tree_topology.rack_of(device)

    def test_unknown_initializer_rejected(self):
        with pytest.raises(ConfigurationError):
            DynaSoRe(initializer="sorting-hat")

    def test_callable_initializer(self, tree_topology, small_graph):
        def everyone_on_server_zero(graph, topology, seed):
            return {user: 0 for user in graph.users}

        strategy = DynaSoRe(initializer=everyone_on_server_zero)
        accountant = TrafficAccountant(tree_topology)
        budget = MemoryBudget(
            views=small_graph.num_users,
            extra_memory_pct=200.0,
            servers=len(tree_topology.servers),
        )
        strategy.bind(tree_topology, small_graph, accountant, budget, seed=1)
        strategy.build_initial_placement()
        # Capacity fitting spreads the overflow across other servers.
        assert strategy.memory_in_use() == small_graph.num_users


class TestExecution:
    def test_read_records_traffic_and_statistics(self, tree_topology, small_graph):
        strategy, accountant = bind_dynasore(tree_topology, small_graph)
        reader = next(u for u in small_graph.users if small_graph.out_degree(u) >= 2)
        strategy.execute_read(reader, now=10.0)
        assert accountant.message_count > 0
        target = next(iter(small_graph.following(reader)))
        position = strategy.replica_positions(target)[0]
        replica = strategy.servers[position].replica(target)
        assert replica.stats.total_reads() >= 1

    def test_write_updates_all_replicas(self, tree_topology, small_graph):
        strategy, accountant = bind_dynasore(tree_topology, small_graph)
        user = small_graph.users[0]
        strategy.execute_write(user, now=10.0)
        for position in strategy.replica_positions(user):
            assert strategy.servers[position].replica(user).stats.total_writes() >= 1

    def test_hot_remote_view_gets_replicated(self, tree_topology, small_graph):
        strategy, _ = bind_dynasore(tree_topology, small_graph, extra_memory_pct=100.0)
        # Pick a view and a reader whose proxies live in another sub-tree.
        target = small_graph.users[0]
        target_device = next(iter(strategy.replica_locations()[target]))
        target_inter = tree_topology.intermediate_of(target_device)
        reader = next(
            u
            for u in small_graph.users
            if tree_topology.intermediate_of(
                next(iter(strategy.replica_locations()[u]))
            )
            != target_inter
        )
        before = strategy.replica_count(target)
        for i in range(30):
            strategy.execute_read(reader, now=float(i), targets=(target,))
        assert strategy.replica_count(target) > before

    def test_replication_respects_capacity(self, tree_topology, small_graph):
        strategy, _ = bind_dynasore(tree_topology, small_graph, extra_memory_pct=30.0)
        for i, user in enumerate(list(small_graph.users)[:60]):
            strategy.execute_read(user, now=float(i))
        for server in strategy.servers:
            assert server.used <= server.capacity
        budget_capacity = strategy.memory_capacity()
        assert strategy.memory_in_use() <= budget_capacity

    def test_every_view_keeps_at_least_one_replica(self, tree_topology, small_graph):
        strategy, _ = bind_dynasore(tree_topology, small_graph, extra_memory_pct=50.0)
        for i, user in enumerate(list(small_graph.users)[:80]):
            strategy.execute_read(user, now=float(i))
            strategy.execute_write(user, now=float(i) + 0.5)
        strategy.on_tick(HOUR)
        locations = strategy.replica_locations()
        assert all(len(devices) >= 1 for devices in locations.values())

    def test_new_user_is_provisioned_on_demand(self, tree_topology, small_graph):
        strategy, _ = bind_dynasore(tree_topology, small_graph)
        small_graph.add_edge(10_000, small_graph.users[0])
        strategy.on_edge_added(10_000, small_graph.users[0], now=0.0)
        assert strategy.replica_count(10_000) == 1

    def test_read_proxy_migrates_toward_data(self, tree_topology, small_graph):
        strategy, _ = bind_dynasore(tree_topology, small_graph, extra_memory_pct=0.0)
        reader = small_graph.users[0]
        # Force the read proxy far from the single target view.
        target = next(iter(small_graph.following(reader)))
        target_device = next(iter(strategy.replica_locations()[target]))
        far_broker = next(
            b.index
            for b in tree_topology.brokers
            if tree_topology.intermediate_of(b.index)
            != tree_topology.intermediate_of(target_device)
        )
        strategy.proxies.read_proxy[reader] = far_broker
        strategy.execute_read(reader, now=0.0, targets=(target,))
        new_broker = strategy.proxies.read_broker(reader)
        assert tree_topology.rack_of(new_broker) == tree_topology.rack_of(target_device)

    def test_tick_updates_thresholds_and_counters(self, tree_topology, small_graph):
        strategy, _ = bind_dynasore(tree_topology, small_graph, extra_memory_pct=0.0)
        for i, user in enumerate(list(small_graph.users)[:30]):
            strategy.execute_read(user, now=float(i))
        strategy.on_tick(HOUR)
        assert strategy._threshold_cache == {}
        assert all(server.admission_threshold >= 0.0 for server in strategy.servers)

    def test_counters_track_decisions(self, tree_topology, small_graph):
        strategy, _ = bind_dynasore(tree_topology, small_graph, extra_memory_pct=100.0)
        for i, user in enumerate(list(small_graph.users)[:80]):
            strategy.execute_read(user, now=float(i))
        counts = strategy.counters.as_dict()
        assert counts["replicas_created"] >= 0
        assert counts["replicas_created"] >= counts["replicas_migrated"]

    def test_flat_topology_execution(self, flat_topology, tiny_graph):
        strategy, accountant = bind_dynasore(
            flat_topology, tiny_graph, extra_memory_pct=100.0, initializer="random"
        )
        for i, user in enumerate(tiny_graph.users):
            strategy.execute_read(user, now=float(i))
            strategy.execute_write(user, now=float(i) + 0.1)
        strategy.on_tick(HOUR)
        assert accountant.message_count > 0
        assert all(len(d) >= 1 for d in strategy.replica_locations().values())
