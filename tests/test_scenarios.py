"""Tests for the failure & churn scenario subsystem.

Covers the scenario event model, the simulator's fault application (mask,
hooks, WAL-driven recovery), the per-strategy evacuation logic, and the
crash → recovery round-trip acceptance property: a seeded run with a
mid-run server crash ends with every view available and memory within
budget.
"""

from __future__ import annotations

import pytest

from repro.baselines.random_placement import RandomPlacement
from repro.baselines.spar import SparPlacement
from repro.config import SimulationConfig
from repro.constants import DAY, HOUR
from repro.core.engine import DynaSoRe
from repro.exceptions import SimulationError
from repro.persistence.backend import PersistentStore
from repro.scenarios import (
    CompositeScenario,
    CrashRecoverScenario,
    DiurnalLoadScenario,
    NodeChurnScenario,
    RackOutageScenario,
    RegionalFlashCrowdScenario,
    ScenarioContext,
)
from repro.scenarios.events import NodeJoin, NodeLeave, ServerCrash, ServerRecovery
from repro.simulator.engine import ClusterSimulator
from repro.simulator.runner import normalise_results, run_comparison
from repro.workload.requests import EdgeAdded, EdgeRemoved, RequestLog, WriteRequest


@pytest.fixture
def context(tree_topology, small_graph) -> ScenarioContext:
    return ScenarioContext(topology=tree_topology, graph=small_graph, seed=7)


def crash_scenario(log, count=2, graceful=False):
    """Crash ``count`` servers a third of the way in, recover at two thirds."""
    duration = log.requests[-1].timestamp
    return CrashRecoverScenario(
        crash_time=duration / 3.0,
        recover_time=2.0 * duration / 3.0,
        count=count,
        graceful=graceful,
    )


class TestScenarioGenerators:
    def test_crash_recover_emits_paired_events(self, context):
        scenario = CrashRecoverScenario(crash_time=HOUR, recover_time=3 * HOUR, count=2)
        events = scenario.fault_events(context)
        crashes = [e for e in events if isinstance(e, ServerCrash)]
        recoveries = [e for e in events if isinstance(e, ServerRecovery)]
        assert len(crashes) == 2 and len(recoveries) == 2
        assert {e.position for e in crashes} == {e.position for e in recoveries}
        assert all(e.timestamp == HOUR for e in crashes)
        assert all(e.timestamp == 3 * HOUR for e in recoveries)

    def test_crash_recover_is_deterministic(self, context):
        scenario = CrashRecoverScenario(crash_time=HOUR, recover_time=2 * HOUR, count=3)
        assert scenario.fault_events(context) == scenario.fault_events(context)

    def test_crash_recover_rejects_bad_windows(self):
        with pytest.raises(SimulationError):
            CrashRecoverScenario(crash_time=2 * HOUR, recover_time=HOUR)
        with pytest.raises(SimulationError):
            CrashRecoverScenario(crash_time=HOUR, count=0)

    def test_rack_outage_targets_exactly_one_rack(self, context):
        scenario = RackOutageScenario(start_time=HOUR, end_time=2 * HOUR)
        events = scenario.fault_events(context)
        crashed = {e.position for e in events if isinstance(e, ServerCrash)}
        topology = context.topology
        racks = {
            topology.rack_of(topology.servers[position].index) for position in crashed
        }
        assert len(racks) == 1
        # Every server of that rack is down, none from other racks.
        (rack,) = racks
        expected = {
            position
            for position, server in enumerate(topology.servers)
            if topology.rack_of(server.index) == rack
        }
        assert crashed == expected

    def test_rack_outage_requires_rack_switches(self, flat_topology, small_graph):
        context = ScenarioContext(topology=flat_topology, graph=small_graph, seed=7)
        with pytest.raises(SimulationError):
            RackOutageScenario(start_time=HOUR).fault_events(context)

    def test_node_churn_rejoins_everyone_and_bounds_concurrency(self, context):
        scenario = NodeChurnScenario(
            start_time=0.0, end_time=DAY, changes=9, max_concurrent_down=2
        )
        events = scenario.fault_events(context)
        down: set[int] = set()
        for event in events:
            if isinstance(event, (NodeLeave, ServerCrash)):
                assert event.position not in down
                down.add(event.position)
                assert len(down) <= 2
            elif isinstance(event, (NodeJoin, ServerRecovery)):
                assert event.position in down
                down.discard(event.position)
        assert not down, "every departed node must rejoin by end_time"

    def test_diurnal_keeps_mutations_and_thins_requests(self, context, small_log):
        scenario = DiurnalLoadScenario(trough_fraction=0.2)
        thinned = scenario.transform_log(small_log, context)
        assert len(thinned) < len(small_log)
        assert thinned.mutation_count == small_log.mutation_count
        thinned.validate()
        # Same seed, same thinning.
        again = scenario.transform_log(small_log, context)
        assert again.requests == thinned.requests

    def test_diurnal_keep_probability_bounds(self):
        scenario = DiurnalLoadScenario(trough_fraction=0.3)
        for t in (0.0, 0.25 * DAY, 0.5 * DAY, 0.9 * DAY):
            assert 0.3 <= scenario.keep_probability(t) <= 1.0

    def test_regional_flash_crowd_injects_edges_and_reads(self, context, small_log):
        scenario = RegionalFlashCrowdScenario(
            start_time=HOUR, end_time=5 * HOUR, targets=2, followers=10
        )
        log = scenario.transform_log(small_log, context)
        added = [r for r in log if isinstance(r, EdgeAdded)]
        removed = [r for r in log if isinstance(r, EdgeRemoved)]
        assert added and len(added) == len(removed)
        assert log.read_count > small_log.read_count
        log.validate()
        specs = scenario.plan(context)
        assert 1 <= len(specs) <= 2
        for spec in specs:
            assert spec.target_user not in spec.new_followers

    def test_composite_merges_events_in_time_order(self, context, small_log):
        composite = CompositeScenario(
            CrashRecoverScenario(crash_time=2 * HOUR, recover_time=4 * HOUR),
            DiurnalLoadScenario(trough_fraction=0.5),
        )
        events = composite.fault_events(context)
        assert events == sorted(events, key=lambda e: e.timestamp)
        assert len(composite.transform_log(small_log, context)) < len(small_log)


class TestSimulatorFaultCore:
    @pytest.fixture
    def simulator(self, tree_topology, small_graph):
        return ClusterSimulator(
            tree_topology,
            small_graph.copy(),
            DynaSoRe(initializer="random", seed=5),
            SimulationConfig(extra_memory_pct=100.0, seed=5),
        )

    def test_crash_updates_mask_and_records(self, simulator):
        simulator.prepare()
        record = simulator.crash_server(3, now=HOUR)
        assert simulator.server_up[3] is False
        assert record.kind == "crash" and record.position == 3
        assert 3 not in simulator.available_server_positions()

    def test_double_crash_is_rejected(self, simulator):
        simulator.prepare()
        simulator.crash_server(3, now=HOUR)
        with pytest.raises(SimulationError):
            simulator.crash_server(3, now=2 * HOUR)

    def test_restore_requires_a_down_server(self, simulator):
        simulator.prepare()
        with pytest.raises(SimulationError):
            simulator.restore_server(3, now=HOUR)
        simulator.crash_server(3, now=HOUR)
        simulator.restore_server(3, now=2 * HOUR)
        assert simulator.server_up[3] is True

    def test_last_server_cannot_go_down(self, simulator):
        simulator.prepare()
        positions = list(range(len(simulator.server_up)))
        for position in positions[:-1]:
            simulator.crash_server(position, now=HOUR)
        with pytest.raises(SimulationError):
            simulator.crash_server(positions[-1], now=HOUR)

    def test_invalid_position_is_rejected(self, simulator):
        simulator.prepare()
        with pytest.raises(SimulationError):
            simulator.crash_server(999, now=HOUR)

    def test_crash_creates_store_and_fetches_lost_views(self, simulator):
        simulator.prepare()
        assert simulator.persistent_store is None
        record = simulator.crash_server(0, now=HOUR)
        if record.views_from_disk:
            assert simulator.persistent_store is not None

    def test_hooks_fire(self, tree_topology, small_graph, small_log):
        simulator = ClusterSimulator(
            tree_topology,
            small_graph.copy(),
            RandomPlacement(seed=1),
            SimulationConfig(extra_memory_pct=0.0, seed=1),
        )
        ticks: list[float] = []
        requests: list[object] = []
        simulator.add_pre_tick_hook(ticks.append)
        simulator.add_post_request_hook(requests.append)
        simulator.run(small_log)
        assert ticks, "pre-tick hooks must fire"
        assert len(requests) == len(small_log)

    def test_writes_are_mirrored_into_the_store(self, tree_topology, small_graph, small_log):
        store = PersistentStore()
        simulator = ClusterSimulator(
            tree_topology,
            small_graph.copy(),
            RandomPlacement(seed=1),
            SimulationConfig(extra_memory_pct=0.0, seed=1),
            persistent_store=store,
        )
        result = simulator.run(small_log)
        writers = {
            r.user for r in small_log if isinstance(r, WriteRequest)
        }
        assert result.writes_executed == small_log.write_count
        assert all(store.current_version(user) > 0 for user in writers)
        store.verify_integrity()


class TestCrashRecoveryRoundTrip:
    """The acceptance property: mid-run crash, full recovery, budget kept."""

    @pytest.mark.parametrize(
        "strategy_factory",
        [
            lambda: DynaSoRe(initializer="hmetis", seed=11),
            lambda: RandomPlacement(seed=11),
            lambda: SparPlacement(seed=11),
        ],
        ids=["dynasore", "random", "spar"],
    )
    def test_crash_recovery_round_trip(
        self, tree_topology, small_graph, small_log, strategy_factory
    ):
        graph = small_graph.copy()
        simulator = ClusterSimulator(
            tree_topology,
            graph,
            strategy_factory(),
            SimulationConfig(extra_memory_pct=100.0, seed=11),
            scenario=crash_scenario(small_log, count=2),
        )
        result = simulator.run(small_log)

        crashes = [r for r in result.fault_records if r.kind == "crash"]
        restores = [r for r in result.fault_records if r.kind == "restore"]
        assert len(crashes) == 2 and len(restores) == 2
        # Every view survived: nothing permanently lost ...
        assert result.unavailable_views == 0
        locations = simulator.strategy.replica_locations()
        assert all(devices for devices in locations.values())
        # ... every server is back in service ...
        assert all(simulator.server_up)
        # ... and memory ended within budget.
        assert result.memory_in_use <= simulator.budget.total_capacity
        # The WAL store is consistent with what was written during the run.
        simulator.persistent_store.verify_integrity()

    def test_graceful_drain_never_touches_the_disk(
        self, tree_topology, small_graph, small_log
    ):
        simulator = ClusterSimulator(
            tree_topology,
            small_graph.copy(),
            DynaSoRe(initializer="random", seed=11),
            SimulationConfig(extra_memory_pct=100.0, seed=11),
            scenario=crash_scenario(small_log, count=2, graceful=True),
        )
        result = simulator.run(small_log)
        drains = [r for r in result.fault_records if r.kind == "drain"]
        assert len(drains) == 2
        assert all(r.views_from_disk == 0 for r in drains)
        assert result.unavailable_views == 0

    def test_dynasore_recovers_replicated_views_from_memory(
        self, tree_topology, small_graph, small_log
    ):
        """With generous memory DynaSoRe replicates, so part of a crashed
        server's content recovers without the persistent store."""
        simulator = ClusterSimulator(
            tree_topology,
            small_graph.copy(),
            DynaSoRe(initializer="hmetis", seed=11),
            SimulationConfig(extra_memory_pct=100.0, seed=11),
            scenario=crash_scenario(small_log, count=1),
        )
        result = simulator.run(small_log)
        (crash,) = [r for r in result.fault_records if r.kind == "crash"]
        assert crash.views_from_memory > 0
        assert result.unavailable_views == 0

    def test_rack_outage_round_trip(self, tree_topology, small_graph, small_log):
        duration = small_log.requests[-1].timestamp
        simulator = ClusterSimulator(
            tree_topology,
            small_graph.copy(),
            DynaSoRe(initializer="random", seed=11),
            SimulationConfig(extra_memory_pct=100.0, seed=11),
            scenario=RackOutageScenario(
                start_time=duration / 4.0, end_time=duration / 2.0
            ),
        )
        result = simulator.run(small_log)
        assert result.unavailable_views == 0
        assert all(simulator.server_up)

    def test_node_churn_round_trip(self, tree_topology, small_graph, small_log):
        duration = small_log.requests[-1].timestamp
        simulator = ClusterSimulator(
            tree_topology,
            small_graph.copy(),
            DynaSoRe(initializer="random", seed=11),
            SimulationConfig(extra_memory_pct=100.0, seed=11),
            scenario=NodeChurnScenario(
                start_time=duration * 0.1,
                end_time=duration * 0.9,
                changes=6,
                max_concurrent_down=2,
            ),
        )
        result = simulator.run(small_log)
        assert result.unavailable_views == 0
        assert all(simulator.server_up)
        assert result.memory_in_use <= simulator.budget.total_capacity


class TestStrategyEvacuation:
    """Direct unit coverage of the per-strategy fault handlers."""

    def _bound(self, strategy, tree_topology, small_graph):
        from repro.store.memory import MemoryBudget
        from repro.traffic.accounting import TrafficAccountant

        accountant = TrafficAccountant(tree_topology)
        budget = MemoryBudget(
            views=small_graph.num_users,
            extra_memory_pct=100.0,
            servers=len(tree_topology.servers),
        )
        strategy.bind(tree_topology, small_graph, accountant, budget, seed=5)
        strategy.build_initial_placement()
        return strategy

    def test_static_reassigns_off_the_crashed_server(self, tree_topology, small_graph):
        strategy = self._bound(RandomPlacement(seed=5), tree_topology, small_graph)
        plan = strategy.on_server_down(0, now=HOUR)
        assert plan.total_views > 0
        assert not plan.recoverable_from_memory  # single replica -> disk only
        assignment = strategy.assignment()
        assert 0 not in assignment.values()
        # Lazy placement for new users also avoids the down server.
        strategy.on_server_up(0, now=2 * HOUR)
        with pytest.raises(SimulationError):
            strategy.on_server_up(0, now=3 * HOUR)

    def test_spar_promotes_surviving_replicas(self, tree_topology, small_graph):
        strategy = self._bound(SparPlacement(seed=5), tree_topology, small_graph)
        plan = strategy.on_server_down(1, now=HOUR)
        locations = strategy.replica_locations()
        crashed_device = strategy.server_device(1)
        assert all(crashed_device not in devices for devices in locations.values())
        assert all(devices for devices in locations.values())
        # SPAR co-locates aggressively, so some masters had survivors.
        assert plan.recoverable_from_memory

    def test_dynasore_down_then_up_restores_capacity(self, tree_topology, small_graph):
        strategy = self._bound(
            DynaSoRe(initializer="random", seed=5), tree_topology, small_graph
        )
        capacity_before = strategy.memory_capacity()
        strategy.on_server_down(2, now=HOUR)
        assert strategy.servers[2].capacity == 0
        assert strategy.memory_capacity() < capacity_before
        assert not strategy.position_available(2)
        locations = strategy.replica_locations()
        crashed_device = strategy.device_of_position(2)
        assert all(crashed_device not in devices for devices in locations.values())
        strategy.on_server_up(2, now=2 * HOUR)
        assert strategy.memory_capacity() == capacity_before
        assert strategy.position_available(2)

    def test_base_strategy_refuses_faults(self, tree_topology, small_graph):
        from repro.baselines.base import PlacementStrategy

        class Stub(PlacementStrategy):
            def build_initial_placement(self):  # pragma: no cover - unused
                pass

            def execute_read(self, user, now, targets=None):  # pragma: no cover
                pass

            def execute_write(self, user, now):  # pragma: no cover - unused
                pass

            def replica_locations(self):  # pragma: no cover - unused
                return {}

        stub = Stub()
        with pytest.raises(SimulationError):
            stub.on_server_down(0, now=0.0)
        with pytest.raises(SimulationError):
            stub.on_server_up(0, now=0.0)


class TestNormalisationGuard:
    def test_zero_traffic_baseline_raises(self, tree_topology, small_graph):
        """A Random baseline that recorded nothing must fail loudly, not
        silently normalise everything to zero."""
        empty_log = RequestLog()
        results = run_comparison(
            lambda: tree_topology,
            lambda: small_graph.copy(),
            {
                "random": lambda: RandomPlacement(seed=1),
                "spar": lambda: SparPlacement(seed=1),
            },
            empty_log,
            SimulationConfig(extra_memory_pct=0.0, seed=1),
        )
        with pytest.raises(SimulationError, match="no top-switch traffic"):
            normalise_results(results)

    def test_missing_baseline_raises(self):
        with pytest.raises(SimulationError, match="not among the results"):
            normalise_results({}, baseline_label="random")
