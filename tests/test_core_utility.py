"""Tests for Algorithm 1 (utility / profit estimation) and the routing layer."""

from __future__ import annotations

import pytest

from repro.core.routing import RoutingService
from repro.core.utility import estimate_profit, replica_utility
from repro.exceptions import RoutingError
from repro.store.stats import AccessStatistics
from repro.topology.tree import TreeTopology


@pytest.fixture
def layout(tree_topology: TreeTopology):
    """Convenient handles on two racks in different intermediate sub-trees."""
    inter_a, inter_b = tree_topology.intermediate_switches[:2]
    rack_a = tree_topology.racks_under_intermediate(inter_a)[0]
    rack_b = tree_topology.racks_under_intermediate(inter_b)[0]
    return {
        "inter_a": inter_a,
        "inter_b": inter_b,
        "rack_a": rack_a,
        "rack_b": rack_b,
        "server_a": tree_topology.servers_in_rack(rack_a)[0],
        "server_b": tree_topology.servers_in_rack(rack_b)[0],
        "broker_a": tree_topology.broker_for_rack(rack_a),
        "broker_b": tree_topology.broker_for_rack(rack_b),
    }


class TestEstimateProfit:
    def test_replicating_near_remote_readers_is_profitable(self, tree_topology, layout):
        stats = AccessStatistics()
        # 10 reads from intermediate B recorded at the replica in sub-tree A.
        for i in range(10):
            stats.record_read(layout["inter_b"], float(i))
        profit = estimate_profit(
            tree_topology,
            stats,
            candidate_server=layout["server_b"],
            reference_server=layout["server_a"],
            write_broker=layout["broker_a"],
        )
        # Reads drop from cost 5 to cost 3 → 10 * 2 = 20 saved, no writes.
        assert profit == pytest.approx(20.0)

    def test_write_cost_reduces_profit(self, tree_topology, layout):
        stats = AccessStatistics()
        for i in range(10):
            stats.record_read(layout["inter_b"], float(i))
        for i in range(2):
            stats.record_write(float(i))
        profit = estimate_profit(
            tree_topology,
            stats,
            candidate_server=layout["server_b"],
            reference_server=layout["server_a"],
            write_broker=layout["broker_a"],
        )
        # 20 read gain minus 2 writes * distance 5.
        assert profit == pytest.approx(10.0)

    def test_reads_never_become_more_expensive(self, tree_topology, layout):
        """Reads from origins closer to the reference replica are unaffected
        by a new replica (the routing policy keeps serving them locally)."""
        stats = AccessStatistics()
        for i in range(10):
            stats.record_read(layout["rack_a"], float(i))  # local reads in A
        profit = estimate_profit(
            tree_topology,
            stats,
            candidate_server=layout["server_b"],
            reference_server=layout["server_a"],
            write_broker=None,
        )
        assert profit == pytest.approx(0.0)

    def test_profit_of_useless_replica_is_write_cost(self, tree_topology, layout):
        stats = AccessStatistics()
        stats.record_write(0.0)
        profit = estimate_profit(
            tree_topology,
            stats,
            candidate_server=layout["server_b"],
            reference_server=layout["server_a"],
            write_broker=layout["broker_a"],
        )
        assert profit == pytest.approx(-5.0)

    def test_no_write_broker_means_no_write_cost(self, tree_topology, layout):
        stats = AccessStatistics()
        stats.record_write(0.0)
        profit = estimate_profit(
            tree_topology,
            stats,
            candidate_server=layout["server_b"],
            reference_server=layout["server_a"],
            write_broker=None,
        )
        assert profit == pytest.approx(0.0)

    def test_replica_utility_matches_estimate(self, tree_topology, layout):
        stats = AccessStatistics()
        for i in range(4):
            stats.record_read(layout["rack_a"], float(i))
        utility = replica_utility(
            tree_topology,
            stats,
            server=layout["server_a"],
            next_closest_replica=layout["server_b"],
            write_broker=layout["broker_a"],
        )
        # Losing the local replica would push 4 reads from cost 1 to cost 5.
        assert utility == pytest.approx(16.0)

    def test_sole_replica_utility_without_reference(self, tree_topology, layout):
        stats = AccessStatistics()
        stats.record_read(layout["rack_a"], 0.0)
        utility = replica_utility(
            tree_topology,
            stats,
            server=layout["server_a"],
            next_closest_replica=None,
            write_broker=layout["broker_a"],
        )
        assert utility <= 0.0  # no alternative replica → no measurable gain


class TestRoutingService:
    def test_closest_replica_prefers_same_rack(self, tree_topology, layout):
        routing = RoutingService(tree_topology)
        same_rack_server = tree_topology.servers_in_rack(layout["rack_a"])[1]
        chosen = routing.closest_replica(
            layout["broker_a"], {layout["server_b"], same_rack_server}
        )
        assert chosen == same_rack_server

    def test_closest_replica_breaks_ties_by_index(self, tree_topology, layout):
        routing = RoutingService(tree_topology)
        servers = tree_topology.servers_in_rack(layout["rack_a"])[:2]
        chosen = routing.closest_replica(layout["broker_a"], set(servers))
        assert chosen == min(servers)

    def test_empty_replica_set_raises(self, tree_topology):
        routing = RoutingService(tree_topology)
        with pytest.raises(RoutingError):
            routing.closest_replica(tree_topology.brokers[0].index, set())

    def test_affected_brokers_on_new_replica(self, tree_topology, layout):
        routing = RoutingService(tree_topology)
        before = {layout["server_a"]}
        after = {layout["server_a"], layout["server_b"]}
        affected = routing.affected_brokers(before, after)
        # Brokers in sub-tree B now route to the new local replica.
        assert layout["broker_b"] in affected
        assert layout["broker_a"] not in affected

    def test_next_closest(self, tree_topology, layout):
        routing = RoutingService(tree_topology)
        devices = {layout["server_a"], layout["server_b"]}
        assert routing.next_closest(layout["server_a"], devices) == layout["server_b"]
        assert routing.next_closest(layout["server_a"], {layout["server_a"]}) is None

    def test_routing_table_for(self, tree_topology, layout):
        routing = RoutingService(tree_topology)
        replica_map = {1: {layout["server_a"]}, 2: {layout["server_b"]}}
        table = routing.routing_table_for(layout["broker_a"], replica_map)
        assert table[1] == layout["server_a"]
        assert table[2] == layout["server_b"]
