"""Golden parity suite and property tests of the placement tables.

Three layers of protection for the struct-of-arrays refactor:

* **Golden parity** — every placement strategy replays identical workloads
  through the table-backed path and through the frozen seed object path
  (:mod:`repro.legacy`), and the resulting
  :class:`~repro.simulator.results.SimulationResult`\\ s must be
  **byte-identical** (canonical serialisation), across plain, diurnal-load
  and crash-recover scenarios with tracked views.
* **Properties** — random create/remove/migrate churn against a dict/set
  reference model, with free-list reuse and chain-index integrity audited
  after every step, plus a windows-arithmetic equivalence check of
  :class:`~repro.store.tables.StatsTable` against ``AccessStatistics``.
* **Counter regressions** — crash → evacuate → restore must leave the O(1)
  per-server counters (``memory_in_use``/``server_utilisations``) exactly
  consistent with a from-scratch recount.
"""

from __future__ import annotations

import math
import random

import pytest

from parity import (
    SCENARIOS,
    STRATEGY_KEYS,
    canonical_result_bytes,
    parity_cluster,
    parity_graph,
    parity_stream,
    result_digest,
    run_strategy,
)
from repro.config import DynaSoReConfig, SimulationConfig
from repro.exceptions import StorageError
from repro.runtime.spec import build_strategy
from repro.simulator.engine import ClusterSimulator
from repro.store.stats import AccessStatistics
from repro.store.tables import ReplicaTable, StatsTable, pick_least_loaded


# ---------------------------------------------------------------------------
# Golden parity: table path vs frozen seed object path
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("scenario_key", sorted(SCENARIOS))
@pytest.mark.parametrize("strategy_key", STRATEGY_KEYS)
def test_byte_identical_with_seed_object_path(strategy_key, scenario_key):
    """The flagship guarantee: same workload, byte-identical result."""
    table_result = run_strategy(strategy_key, scenario_key, legacy=False)
    legacy_result = run_strategy(strategy_key, scenario_key, legacy=True)
    assert canonical_result_bytes(table_result) == canonical_result_bytes(
        legacy_result
    ), (
        f"{strategy_key}/{scenario_key}: table path diverged from the seed "
        f"object path ({result_digest(table_result)} != {result_digest(legacy_result)})"
    )


def test_parity_runs_exercise_dynamic_placement():
    """Sanity: the parity workload actually replicates and recovers."""
    result = run_strategy("dynasore_hmetis", "crash", legacy=False)
    assert result.replication_factor > 1.0
    assert result.fault_records
    assert result.unavailable_views == 0
    assert all(timeline.replica_counts for timeline in result.tracked_views.values())


# ---------------------------------------------------------------------------
# ReplicaTable properties under random churn
# ---------------------------------------------------------------------------
class ReferenceModel:
    """Dict/set shadow of a ReplicaTable, the pre-refactor representation."""

    def __init__(self, positions: int) -> None:
        self.by_user: dict[int, list[int]] = {}
        self.by_position: dict[int, list[int]] = {p: [] for p in range(positions)}

    def add(self, user: int, position: int) -> None:
        self.by_user.setdefault(user, []).append(position)
        self.by_position[position].append(user)

    def remove(self, user: int, position: int) -> None:
        self.by_user[user].remove(position)
        if not self.by_user[user]:
            del self.by_user[user]
        self.by_position[position].remove(user)


def test_replica_table_random_churn_matches_reference_model():
    rng = random.Random(20260728)
    positions = 6
    table = ReplicaTable(positions=positions, counter_slots=4, counter_period=10.0)
    model = ReferenceModel(positions)
    live: list[tuple[int, int]] = []

    for step in range(2000):
        action = rng.random()
        if action < 0.5 or not live:
            user = rng.randrange(40)
            position = rng.randrange(positions)
            if table.slot_of(user, position) is not None:
                continue
            table.allocate(user, position)
            model.add(user, position)
            live.append((user, position))
        elif action < 0.8:
            user, position = live.pop(rng.randrange(len(live)))
            slot = table.slot_of(user, position)
            assert slot is not None
            table.free(slot)
            model.remove(user, position)
        else:
            # Migrate: move a replica to a random other position.
            index = rng.randrange(len(live))
            user, position = live[index]
            target = rng.randrange(positions)
            if target == position or table.slot_of(user, target) is not None:
                continue
            table.free(table.slot_of(user, position))
            model.remove(user, position)
            table.allocate(user, target)
            model.add(user, target)
            live[index] = (user, target)

        if step % 50 == 0:
            table.check_integrity()
            assert sorted(map(tuple, (sorted(v) for v in model.by_user.values()))) == sorted(
                tuple(sorted(table.user_positions(u))) for u in model.by_user
            )
    # Final audit: per-user and per-position views agree with the model.
    table.check_integrity()
    assert set(table.users()) == set(model.by_user)
    for user, posns in model.by_user.items():
        assert sorted(table.user_positions(user)) == sorted(posns)
    for position, users in model.by_position.items():
        assert sorted(table.users_at(position)) == sorted(users)
        assert table.used_of(position) == len(users)
    assert table.active_count == len(live)


def test_free_list_recycles_slots():
    table = ReplicaTable(positions=2, counter_slots=4, counter_period=10.0)
    first = table.allocate(1, 0)
    second = table.allocate(2, 1)
    table.stats.record_read(first, origin=9, timestamp=1.0)
    table.stats.record_write(first, 1.0)
    table.free(first)
    # The freed slot is reused before the columns grow...
    reused = table.allocate(3, 0)
    assert reused == first
    # ...and comes back with pristine statistics and links.
    assert table.stats.total_reads(reused) == 0.0
    assert table.stats.total_writes(reused) == 0.0
    assert table.stats.reads_by_origin(reused) == {}
    assert table.stats.reads_since_evaluation(reused) == 0
    assert table.position_of(reused) == 0
    assert table.user_of(reused) == 3
    assert table.slot_of(2, 1) == second
    table.check_integrity()


def test_check_integrity_detects_corruption():
    table = ReplicaTable(positions=2, counter_slots=4, counter_period=10.0)
    slot = table.allocate(1, 0)
    table.allocate(2, 1)
    table._server[slot] = 1  # corrupt: chained under position 0, claims 1
    with pytest.raises(StorageError):
        table.check_integrity()


def test_detach_keeps_statistics_until_release():
    table = ReplicaTable(positions=2, counter_slots=4, counter_period=10.0)
    slot = table.allocate(1, 0)
    table.stats.record_read(slot, origin=3, timestamp=1.0)
    table.detach(slot)
    assert table.stats.total_reads(slot) == 1.0  # still readable
    target = table.allocate(1, 1)
    table.stats.move_slot(slot, target)
    table.release(slot)
    assert table.stats.reads_from(target, 3) == 1.0
    assert table.user_positions(1) == (1,)
    table.check_integrity()


def test_pick_least_loaded_matches_min_semantics():
    loads = [3, 1, 1, 5]
    assert pick_least_loaded(loads) == 1  # ties break on the lower position
    assert pick_least_loaded(loads, down={1}) == 2
    caps = [4, 2, 8, 8]
    # Utilisation keys: 3/4, 1/2, 1/8, 5/8 -> position 2.
    assert pick_least_loaded(loads, capacities=caps) == 2
    assert pick_least_loaded([2, 2], capacities=[2, 2], skip_full=True) is None
    assert pick_least_loaded([0, 0], down={0, 1}) is None


# ---------------------------------------------------------------------------
# StatsTable windows == AccessStatistics windows, op for op
# ---------------------------------------------------------------------------
def test_stats_table_matches_access_statistics_under_random_ops():
    rng = random.Random(42)
    stats_table = StatsTable(slots=4, period=10.0)
    table_slots = 3
    for _ in range(table_slots):
        stats_table.append_slot()
    objects = [AccessStatistics(slots=4, period=10.0) for _ in range(table_slots)]

    clock = 0.0
    for _ in range(3000):
        clock += rng.random() * 7.0
        slot = rng.randrange(table_slots)
        op = rng.random()
        if op < 0.6:
            origin = rng.randrange(5)
            stats_table.record_read(slot, origin, clock)
            objects[slot].record_read(origin, clock)
        elif op < 0.8:
            stats_table.record_write(slot, clock)
            objects[slot].record_write(clock)
        elif op < 0.95:
            stats_table.advance_slot(slot, clock)
            objects[slot].advance(clock)
        else:
            stats_table.advance_pool(clock)
            for obj in objects:
                obj.advance(clock)
        assert stats_table.reads_by_origin(slot) == objects[slot].reads_by_origin()
        assert stats_table.total_reads(slot) == objects[slot].total_reads()
        assert stats_table.total_writes(slot) == objects[slot].total_writes()
    for slot in range(table_slots):
        exported = stats_table.export(slot)
        assert exported.reads_by_origin() == objects[slot].reads_by_origin()
        assert exported.total_writes() == objects[slot].total_writes()


def test_stats_adopt_round_trips_an_object():
    stats = AccessStatistics(slots=4, period=10.0)
    stats.record_read(2, 3.0)
    stats.record_read(5, 7.0, amount=2.0)
    stats.record_write(4.0)
    stats_table = StatsTable(slots=4, period=10.0)
    stats_table.append_slot()
    stats_table.adopt(0, stats)
    assert stats_table.reads_by_origin(0) == stats.reads_by_origin()
    assert stats_table.total_writes(0) == stats.total_writes()
    assert stats_table.reads_since_evaluation(0) == stats.reads_since_last_evaluation()


# ---------------------------------------------------------------------------
# Crash -> evacuate -> restore counter consistency (O(1) counters regression)
# ---------------------------------------------------------------------------
def _recounted_state(strategy):
    """Recount occupancy from the authoritative replica locations."""
    locations = strategy.replica_locations()
    total = sum(len(devices) for devices in locations.values())
    per_position = [0] * len(strategy.servers)
    for devices in locations.values():
        for device in devices:
            per_position[strategy._position_of_device[device]] += 1
    return total, per_position


def assert_counters_consistent(strategy):
    table = strategy.tables
    total, per_position = _recounted_state(strategy)
    assert strategy.memory_in_use() == total
    assert table.active_count == total
    assert list(table.used) == per_position
    utilisations = strategy.server_utilisations()
    for position, used in enumerate(per_position):
        capacity = table.capacities[position]
        expected = (used / capacity) if capacity else (1.0 if used else 0.0)
        assert utilisations[position] == pytest.approx(expected)
    table.check_integrity()


def test_crash_evacuate_restore_leaves_counters_consistent():
    topology, _ = parity_cluster()
    graph = parity_graph(users=150)
    stream = parity_stream(graph, days=0.2)
    strategy = build_strategy("dynasore_hmetis", 7, DynaSoReConfig())
    simulator = ClusterSimulator(
        topology, graph, strategy, config=SimulationConfig(extra_memory_pct=80.0, seed=7)
    )
    simulator.prepare()
    simulator.run(stream)
    assert_counters_consistent(strategy)

    crashed = simulator.available_server_positions()[2]
    simulator.crash_server(crashed, now=1_000_000.0)
    assert strategy.servers[crashed].capacity == 0
    assert strategy.tables.used[crashed] == 0
    assert_counters_consistent(strategy)

    # Traffic while degraded, then the server rejoins empty.
    for index, user in enumerate(list(graph.users)[:40]):
        strategy.execute_read(user, now=1_000_100.0 + index)
        strategy.execute_write(user, now=1_000_100.5 + index)
    assert_counters_consistent(strategy)

    simulator.restore_server(crashed, now=1_100_000.0)
    assert strategy.servers[crashed].capacity > 0
    assert strategy.tables.used[crashed] == 0
    for index, user in enumerate(list(graph.users)[:40]):
        strategy.execute_read(user, now=1_100_100.0 + index)
    strategy.on_tick(1_200_000.0)
    assert_counters_consistent(strategy)
    assert simulator._count_unavailable_views() == 0


def test_spar_crash_counters_consistent():
    topology, _ = parity_cluster()
    graph = parity_graph(users=150)
    strategy = build_strategy("spar", 7)
    simulator = ClusterSimulator(
        topology, graph, strategy, config=SimulationConfig(extra_memory_pct=80.0, seed=7)
    )
    simulator.prepare()
    table = strategy.tables
    before = table.active_count
    assert strategy.memory_in_use() == before

    crashed = simulator.available_server_positions()[0]
    simulator.crash_server(crashed, now=10.0)
    assert table.used[crashed] == 0
    locations = strategy.replica_locations()
    assert sum(len(d) for d in locations.values()) == table.active_count
    assert all(devices for devices in locations.values())
    table.check_integrity()
    simulator.restore_server(crashed, now=20.0)
    table.check_integrity()


# ---------------------------------------------------------------------------
# Maintenance-tick primitives: pool rotation, thresholds, eviction ordering
# ---------------------------------------------------------------------------
def _churned_stats_pair(seed: int):
    """Two StatsTables driven through identical record/alloc/free churn."""
    rng = random.Random(seed)
    pooled = StatsTable(slots=6, period=10.0)
    scalar = StatsTable(slots=6, period=10.0)
    live: list[int] = []
    cleared: list[int] = []
    total_slots = 0
    clock = 0.0
    for _ in range(400):
        clock += rng.random() * 9.0
        op = rng.random()
        if op < 0.15 or not live:
            pooled.append_slot()
            scalar.append_slot()
            live.append(total_slots)
            total_slots += 1
        elif op < 0.25 and len(live) > 1:
            # Free a slot mid-stream: its counter nodes go to the free list
            # (the pool sweep must skip them via the allocation bitmap).
            slot = live.pop(rng.randrange(len(live)))
            pooled.reset_slot(slot)
            scalar.reset_slot(slot)
            cleared.append(slot)
        elif op < 0.35 and cleared:
            # Revive a cleared slot so freed nodes get recycled too.
            slot = cleared.pop()
            live.append(slot)
        elif op < 0.75:
            slot = rng.choice(live)
            origin = rng.randrange(5)
            pooled.record_read(slot, origin, clock)
            scalar.record_read(slot, origin, clock)
        else:
            slot = rng.choice(live)
            pooled.record_write(slot, clock)
            scalar.record_write(slot, clock)
    return pooled, scalar, total_slots, clock


@pytest.mark.parametrize("seed", range(6))
def test_advance_pool_equals_per_slot_advance_after_churn(seed):
    """Pool rotation == per-slot rotation on every column, after churn.

    Regression for the pool sweep walking recycled (free-listed) counter
    nodes: after random record/alloc/free churn, ``advance_pool`` must
    leave byte-identical node columns to advancing every slot through
    ``advance_slot`` — including the windows of freed nodes, which neither
    path may touch.
    """
    rng = random.Random(1000 + seed)
    pooled, scalar, total_slots, clock = _churned_stats_pair(seed)
    horizon = clock + rng.random() * 130.0
    pooled.advance_pool(horizon)
    for slot in range(total_slots):
        scalar.advance_slot(slot, horizon)
    assert list(pooled._node_period) == list(scalar._node_period)
    assert list(pooled._node_total) == list(scalar._node_total)
    assert list(pooled._node_buckets) == list(scalar._node_buckets)
    assert list(pooled._node_alloc) == list(scalar._node_alloc)
    for slot in range(total_slots):
        assert list(pooled.reads_by_origin(slot).items()) == list(
            scalar.reads_by_origin(slot).items()
        )
        assert pooled.total_writes(slot) == scalar.total_writes(slot)


def _threshold_fixture(utilities):
    """Matched legacy server and replica table holding ``utilities``.

    Each entry is ``(utility, sole)``; sole replicas have no next-closest
    sibling and price as infinitely useful at the admission boundary.
    """
    from repro.legacy.server import LegacyStorageServer

    legacy = LegacyStorageServer(
        server_index=0, capacity=3, admission_fill=0.67
    )
    table = ReplicaTable(positions=1)
    table.set_capacity(0, 3)
    for user, (utility, sole) in enumerate(utilities):
        replica = legacy.add_replica(user)
        slot = table.allocate(user, 0)
        if sole:
            replica.next_closest_replica = None
        else:
            replica.next_closest_replica = 7
            replica.utility = utility
            table._next_closest[slot] = 7
            table._utility[slot] = utility
    return legacy, table


@pytest.mark.parametrize(
    "utilities, expected",
    [
        # Fill boundary (capacity 3, fill 0.67 -> 2nd most useful) lands on
        # a sole replica: the infinite threshold collapses to 0.0 ("admit
        # everything").  Pinned as the legacy reference semantics of paper
        # section 3.2 rather than fixed: the boundary replica cannot be
        # displaced anyway, so a 0.0 threshold only ever under-filters, and
        # the golden parity suite holds the seed behaviour byte for byte.
        ([(0.0, True), (0.0, True), (5.0, False)], 0.0),
        # Finite boundary: plain 2nd-largest utility.
        ([(0.0, True), (7.0, False), (5.0, False)], 7.0),
        ([(9.0, False), (7.0, False), (5.0, False)], 7.0),
        # Negative boundary clamps at zero.
        ([(0.0, True), (-3.0, False), (-5.0, False)], 0.0),
    ],
)
def test_admission_threshold_boundary_matches_legacy(utilities, expected):
    """Top-k selection == legacy sort-and-index, including the collapse."""
    legacy, table = _threshold_fixture(utilities)
    legacy_value = legacy.update_admission_threshold()
    table_value = table.update_admission_threshold(0, admission_fill=0.67)
    assert legacy_value == expected
    assert table_value == expected
    assert table.admission_thresholds[0] == expected


def test_admission_threshold_under_fill_and_zero_capacity():
    table = ReplicaTable(positions=1)
    # Zero capacity (a crashed server): infinite threshold, admit nothing.
    assert table.update_admission_threshold(0, admission_fill=0.9) == math.inf
    # Below the fill boundary: threshold 0, admit everything.
    table.set_capacity(0, 3)
    table.allocate(1, 0)
    assert table.update_admission_threshold(0, admission_fill=0.9) == 0.0


def test_eviction_candidates_stable_on_insertion_order_with_recycled_slots():
    """Equal utilities keep chain insertion order, not slot-id order.

    Recycled slot ids are not monotone in insertion order, so the sort key
    must never tie-break on the slot: after freeing and re-allocating the
    middle slot, the chain reads [0, 2, 1] and the candidate list must too.
    """
    table = ReplicaTable(positions=1)
    table.set_capacity(0, 4)
    slots = [table.allocate(user, 0) for user in (10, 11, 12)]
    table.free(slots[1])
    recycled = table.allocate(13, 0)  # reuses slot id 1, chained at the tail
    assert recycled == slots[1]
    chain = table.position_slots(0)
    assert chain == [slots[0], slots[2], recycled]
    for slot in chain:
        table._next_closest[slot] = 7
        table._utility[slot] = 3.0
    assert table.eviction_candidate_slots(0) == chain
    # Sole replicas and infinite utilities never become candidates.
    table._next_closest[slots[2]] = -1
    assert table.eviction_candidate_slots(0) == [slots[0], recycled]
    table._utility[recycled] = math.inf
    assert table.eviction_candidate_slots(0) == [slots[0]]


def test_eviction_candidates_sort_on_utility_first():
    table = ReplicaTable(positions=1)
    table.set_capacity(0, 4)
    values = {20: 5.0, 21: -2.0, 22: 1.0}
    for user, value in values.items():
        slot = table.allocate(user, 0)
        table._next_closest[slot] = 9
        table._utility[slot] = value
    ordered = [table.user_of(slot) for slot in table.eviction_candidate_slots(0)]
    assert ordered == [21, 22, 20]
