"""End-to-end integration tests crossing module boundaries.

These tests exercise the same paths as the paper's evaluation at a very small
scale and assert the qualitative results the paper reports: DynaSoRe reduces
top-switch traffic relative to the baselines, keeps every view available,
respects the memory budget, reacts to flash events, and recovers from
crashes through replicas or the persistent store.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.random_placement import RandomPlacement
from repro.baselines.spar import SparPlacement
from repro.config import ClusterSpec, FlatClusterSpec, SimulationConfig
from repro.constants import DAY
from repro.core.engine import DynaSoRe
from repro.persistence.backend import PersistentStore
from repro.persistence.recovery import execute_recovery, plan_recovery
from repro.simulator.engine import ClusterSimulator
from repro.socialgraph.generators import facebook_like
from repro.topology.flat import FlatTopology
from repro.topology.tree import TreeTopology
from repro.workload.flash import inject_flash_event, plan_flash_event
from repro.workload.synthetic import SyntheticWorkloadConfig, SyntheticWorkloadGenerator


SPEC = ClusterSpec(intermediate_switches=3, racks_per_intermediate=2, machines_per_rack=4)


@pytest.fixture(scope="module")
def scenario():
    graph = facebook_like(users=250, seed=13)
    log = SyntheticWorkloadGenerator(
        graph, SyntheticWorkloadConfig(days=0.5, seed=13)
    ).generate()
    return graph, log


def run_strategy(strategy, graph, log, extra_memory_pct, measure_from=0.0, topology=None):
    topology = topology or TreeTopology(SPEC)
    simulator = ClusterSimulator(
        topology,
        graph.copy(),
        strategy,
        SimulationConfig(extra_memory_pct=extra_memory_pct, measure_from=measure_from, seed=13),
    )
    return simulator.run(log), simulator


class TestEndToEndComparison:
    def test_dynasore_beats_random_and_spar(self, scenario):
        graph, log = scenario
        cutoff = log.duration / 2
        random_result, _ = run_strategy(RandomPlacement(seed=13), graph, log, 50.0, cutoff)
        spar_result, _ = run_strategy(SparPlacement(seed=13), graph, log, 50.0, cutoff)
        dynasore_result, _ = run_strategy(
            DynaSoRe(initializer="hmetis", seed=13), graph, log, 50.0, cutoff
        )
        assert dynasore_result.top_switch_traffic < spar_result.top_switch_traffic
        assert dynasore_result.top_switch_traffic < 0.6 * random_result.top_switch_traffic
        assert spar_result.top_switch_traffic <= random_result.top_switch_traffic * 1.02

    def test_memory_budget_is_never_exceeded(self, scenario):
        graph, log = scenario
        _, simulator = run_strategy(DynaSoRe(initializer="random", seed=13), graph, log, 30.0)
        strategy = simulator.strategy
        assert strategy.memory_in_use() <= strategy.memory_capacity()
        for server in strategy.servers:
            assert server.used <= server.capacity

    def test_every_view_remains_available(self, scenario):
        graph, log = scenario
        _, simulator = run_strategy(DynaSoRe(initializer="metis", seed=13), graph, log, 30.0)
        locations = simulator.strategy.replica_locations()
        assert set(graph.users) <= set(locations)
        assert all(len(devices) >= 1 for devices in locations.values())

    def test_more_memory_means_less_top_traffic(self, scenario):
        graph, log = scenario
        cutoff = log.duration / 2
        lean, _ = run_strategy(DynaSoRe(initializer="hmetis", seed=13), graph, log, 0.0, cutoff)
        rich, _ = run_strategy(DynaSoRe(initializer="hmetis", seed=13), graph, log, 150.0, cutoff)
        assert rich.top_switch_traffic <= lean.top_switch_traffic * 1.05

    def test_flat_topology_end_to_end(self, scenario):
        graph, log = scenario
        # A flat cluster where, as in the paper, machines hold many views each.
        flat_spec = FlatClusterSpec(machines=20)
        cutoff = log.duration / 2
        random_result, _ = run_strategy(
            RandomPlacement(seed=13), graph, log, 100.0, cutoff, topology=FlatTopology(flat_spec)
        )
        dynasore_result, _ = run_strategy(
            DynaSoRe(initializer="metis", seed=13),
            graph,
            log,
            100.0,
            cutoff,
            topology=FlatTopology(flat_spec),
        )
        assert dynasore_result.top_switch_traffic < random_result.top_switch_traffic


class TestFlashEventIntegration:
    def test_replicas_grow_then_shrink(self):
        graph = facebook_like(users=200, seed=21)
        rng = random.Random(21)
        base = SyntheticWorkloadGenerator(
            graph, SyntheticWorkloadConfig(days=1.0, seed=21)
        ).generate()
        spec = plan_flash_event(graph, rng, followers=80, start_day=0.2, end_day=0.6)
        log = inject_flash_event(base, spec, reads_per_follower_per_day=6.0, seed=21)
        simulator = ClusterSimulator(
            TreeTopology(SPEC),
            graph,
            DynaSoRe(initializer="hmetis", seed=21),
            SimulationConfig(extra_memory_pct=30.0, seed=21),
        )
        simulator.track_view(spec.target_user)
        result = simulator.run(log)
        timeline = result.tracked_views[spec.target_user]
        counts = dict(timeline.replica_counts)
        peak = max(counts.values())
        during = [c for t, c in counts.items() if 0.25 * DAY <= t <= 0.6 * DAY]
        after = [c for t, c in counts.items() if t >= 0.95 * DAY]
        assert peak >= 2, "the hot view should be replicated during the flash event"
        assert during and max(during) >= 2
        assert after and min(after) <= max(during), "replicas should not keep growing after the event"


class TestCrashRecoveryIntegration:
    def test_recovery_uses_replicas_and_persistent_store(self, scenario):
        graph, log = scenario
        _, simulator = run_strategy(DynaSoRe(initializer="hmetis", seed=13), graph, log, 100.0)
        strategy = simulator.strategy
        locations = {user: set(devs) for user, devs in strategy.replica_locations().items()}

        persistent = PersistentStore()
        for user in graph.users:
            persistent.process_write(user, 0.0, b"event")

        crashed = next(iter(next(iter(locations.values()))))
        plan = plan_recovery(crashed, locations)
        survivors = [d.index for d in simulator.topology.servers if d.index != crashed]
        targets = {
            user: survivors[i % len(survivors)]
            for i, user in enumerate(plan.recoverable_from_memory + plan.recoverable_from_disk)
        }
        recovered = execute_recovery(plan, locations, targets, persistent)
        assert set(recovered) == set(
            plan.recoverable_from_memory + plan.recoverable_from_disk
        )
        assert all(crashed not in devices for devices in locations.values())
        # With 100% extra memory a good share of views had surviving replicas.
        assert plan.memory_recovery_fraction > 0.2
