"""Tests for the write-ahead log, persistent store and recovery planner."""

from __future__ import annotations

import pytest

from repro.exceptions import PersistenceError
from repro.persistence.backend import PersistentStore
from repro.persistence.recovery import execute_recovery, plan_recovery
from repro.persistence.wal import LogRecord, WriteAheadLog


class TestWriteAheadLog:
    def test_append_assigns_sequence_numbers(self):
        wal = WriteAheadLog()
        first = wal.append("write", user=1, timestamp=0.0)
        second = wal.append("write", user=2, timestamp=1.0)
        assert first.sequence == 0
        assert second.sequence == 1
        assert wal.last_sequence() == 1
        assert len(wal) == 2

    def test_replay_from_sequence(self):
        wal = WriteAheadLog()
        for user in range(5):
            wal.append("write", user=user, timestamp=float(user))
        replayed = wal.replay(from_sequence=3)
        assert [r.user for r in replayed] == [3, 4]

    def test_persistence_on_disk(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append("write", user=1, timestamp=0.0, payload="hello")
        reloaded = WriteAheadLog(path)
        assert len(reloaded) == 1
        assert reloaded.replay()[0].payload == "hello"
        reloaded.append("write", user=2, timestamp=1.0)
        assert reloaded.last_sequence() == 1

    def test_truncate(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        for user in range(4):
            wal.append("write", user=user, timestamp=float(user))
        dropped = wal.truncate(up_to_sequence=2)
        assert dropped == 2
        assert [r.sequence for r in wal.replay()] == [2, 3]
        assert [r.sequence for r in WriteAheadLog(path).replay()] == [2, 3]

    def test_corrupt_record_raises(self):
        with pytest.raises(PersistenceError):
            LogRecord.from_json("not json at all")

    def test_record_round_trip(self):
        record = LogRecord(sequence=3, timestamp=1.5, kind="write", user=9, payload="x")
        assert LogRecord.from_json(record.to_json()) == record


class TestPersistentStore:
    def test_write_then_fetch(self):
        store = PersistentStore()
        version = store.process_write(user=1, timestamp=0.0, payload=b"event-1")
        assert version == 1
        view = store.fetch_view(1)
        assert view.version == 1
        assert view.events[0].payload == b"event-1"

    def test_versions_increase(self):
        store = PersistentStore()
        assert store.process_write(1, 0.0) == 1
        assert store.process_write(1, 1.0) == 2
        assert store.current_version(1) == 2

    def test_fetch_unknown_user_returns_empty_view(self):
        store = PersistentStore()
        view = store.fetch_view(42)
        assert view.version == 0
        assert view.events == []
        assert not store.has_view(42)

    def test_fetch_returns_copy(self):
        store = PersistentStore()
        store.process_write(1, 0.0, b"a")
        fetched = store.fetch_view(1)
        fetched.append_payload = None  # mutate the copy object freely
        fetched.events.clear()
        assert store.fetch_view(1).events

    def test_rebuild_from_wal(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        store = PersistentStore(WriteAheadLog(path))
        store.process_write(1, 0.0, b"a")
        store.process_write(1, 1.0, b"b")
        store.process_write(2, 2.0, b"c")
        recovered = PersistentStore(WriteAheadLog(path))
        assert recovered.current_version(1) == 2
        assert recovered.current_version(2) == 1

    def test_verify_integrity(self):
        store = PersistentStore()
        store.process_write(1, 0.0)
        store.verify_integrity()
        # Corrupt the materialised state on purpose.
        store._views[1].version = 99
        with pytest.raises(PersistenceError):
            store.verify_integrity()


class TestRecovery:
    def test_plan_splits_memory_and_disk(self):
        locations = {1: {10, 11}, 2: {10}, 3: {12}}
        plan = plan_recovery(crashed_server=10, replica_locations=locations)
        assert set(plan.recoverable_from_memory) == {1}
        assert set(plan.recoverable_from_disk) == {2}
        assert plan.total_views == 2
        assert 0.0 < plan.memory_recovery_fraction < 1.0

    def test_execute_recovery_updates_locations(self):
        locations = {1: {10, 11}, 2: {10}}
        plan = plan_recovery(10, locations)
        store = PersistentStore()
        recovered = execute_recovery(
            plan, locations, target_servers={1: 13, 2: 14}, persistent_store=store
        )
        assert recovered == {1: 13, 2: 14}
        assert 10 not in locations[1] and 13 in locations[1]
        assert locations[2] == {14}

    def test_disk_recovery_requires_persistent_store(self):
        locations = {2: {10}}
        plan = plan_recovery(10, locations)
        with pytest.raises(PersistenceError):
            execute_recovery(plan, locations, target_servers={2: 11}, persistent_store=None)

    def test_missing_target_raises(self):
        locations = {1: {10, 11}}
        plan = plan_recovery(10, locations)
        with pytest.raises(PersistenceError):
            execute_recovery(plan, locations, target_servers={}, persistent_store=None)

    def test_unaffected_server_has_empty_plan(self):
        locations = {1: {11}, 2: {12}}
        plan = plan_recovery(10, locations)
        assert plan.total_views == 0
        assert plan.memory_recovery_fraction == 1.0
