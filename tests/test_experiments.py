"""Tests for the experiment harness (every figure/table runner and the CLI).

These tests run the experiments at a reduced scale (shorter logs, fewer
memory points) so the whole suite stays fast; the full CI-profile runs live
in the benchmark suite.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import ExperimentProfile
from repro.experiments import report
from repro.experiments.datasets import PAPER_TABLE1, run_table1
from repro.experiments.figure2 import run_figure2, trace_summary
from repro.experiments.figure3 import run_memory_sweep
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_convergence
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.tables import run_switch_traffic_table
from repro.cli import main as cli_main


@pytest.fixture(scope="module")
def tiny_profile() -> ExperimentProfile:
    """Even smaller than the CI profile: used to keep experiment tests fast."""
    ci = ExperimentProfile.ci()
    return dataclasses.replace(
        ci,
        users={"twitter": 200, "facebook": 250, "livejournal": 300},
        synthetic_days=0.5,
        trace_days=1.0,
        memory_sweep=(0.0, 50.0),
        flash_repetitions=1,
    )


class TestTable1:
    def test_rows_cover_all_datasets(self, tiny_profile):
        rows = run_table1(tiny_profile)
        assert [row.dataset for row in rows] == ["twitter", "facebook", "livejournal"]
        for row in rows:
            assert row.generated_users == tiny_profile.users[row.dataset]
            assert row.generated_links > 0
            assert row.paper_users == PAPER_TABLE1[row.dataset]["users"]

    def test_render(self, tiny_profile):
        text = report.render_table1(run_table1(tiny_profile))
        assert "twitter" in text and "facebook" in text


class TestFigure2:
    def test_trace_is_write_heavy_like_the_paper(self, tiny_profile):
        series = run_figure2(tiny_profile)
        summary = trace_summary(series)
        assert summary["total_writes"] > summary["total_reads"]
        assert summary["days"] >= 1

    def test_render(self, tiny_profile):
        text = report.render_figure2(run_figure2(tiny_profile))
        assert "day" in text


class TestFigure3:
    @pytest.fixture(scope="class")
    def sweep(self, tiny_profile):
        return run_memory_sweep(
            tiny_profile,
            "facebook",
            memory_points=(0.0, 100.0),
            strategies=("random", "spar", "dynasore_hmetis"),
        )

    def test_random_normalises_to_one(self, sweep):
        for values in sweep.points.values():
            assert values["random"] == pytest.approx(1.0)

    def test_dynasore_beats_spar_with_memory(self, sweep):
        values = sweep.points[100.0]
        assert values["dynasore_hmetis"] < values["spar"]
        assert values["spar"] <= 1.05

    def test_more_memory_does_not_hurt_dynasore(self, sweep):
        assert (
            sweep.points[100.0]["dynasore_hmetis"]
            <= sweep.points[0.0]["dynasore_hmetis"] + 0.05
        )

    def test_series_accessor(self, sweep):
        series = sweep.series("dynasore_hmetis")
        assert [memory for memory, _ in series] == [0.0, 100.0]

    def test_render(self, sweep):
        text = report.render_figure3(sweep)
        assert "dynasore_hmetis" in text


class TestTables23:
    def test_dynasore_below_spar_at_every_level(self, tiny_profile):
        table = run_switch_traffic_table(tiny_profile, 100.0, datasets=("facebook",))
        for level in ("top", "intermediate", "rack"):
            dynasore = table.value("facebook", "dynasore_hmetis", level)
            spar = table.value("facebook", "spar", level)
            assert dynasore <= spar + 0.05
        assert table.value("facebook", "dynasore_hmetis", "top") < 1.0

    def test_render(self, tiny_profile):
        table = run_switch_traffic_table(tiny_profile, 100.0, datasets=("facebook",))
        text = report.render_switch_table(table)
        assert "facebook" in text


class TestFigure4:
    def test_series_and_totals(self, tiny_profile):
        result = run_figure4(
            tiny_profile, extra_memory_pct=50.0, strategies=("random", "dynasore_metis")
        )
        totals = result.normalised_totals()
        assert totals["random"] == pytest.approx(1.0)
        assert totals["dynasore_metis"] < 1.0
        series = result.normalised_series()
        assert series["dynasore_metis"]

    def test_render(self, tiny_profile):
        result = run_figure4(
            tiny_profile, extra_memory_pct=50.0, strategies=("random", "dynasore_metis")
        )
        assert "Figure 4" in report.render_figure4(result)


class TestFigure5:
    def test_flash_event_grows_replicas(self, tiny_profile):
        outcome = run_figure5(
            tiny_profile,
            followers=40,
            start_day=0.15,
            end_day=0.35,
            duration_days=0.5,
            repetitions=1,
        )
        assert outcome.replicas_by_day
        before = outcome.replicas_during(0.0, 0.15)
        during = max(outcome.replicas_by_day.values())
        assert during >= before
        assert during >= 1.0

    def test_render(self, tiny_profile):
        outcome = run_figure5(
            tiny_profile,
            followers=20,
            start_day=0.15,
            end_day=0.35,
            duration_days=0.5,
            repetitions=1,
        )
        assert "Figure 5" in report.render_figure5(outcome)


class TestFigure6:
    def test_convergence_series_shape(self, tiny_profile):
        result = run_convergence(
            tiny_profile,
            "synthetic",
            extra_memory_pct=100.0,
            strategies=("random", "dynasore_hmetis"),
        )
        series = result.series["dynasore_hmetis"]
        assert series.application
        # System traffic decays (or at least does not grow) after convergence.
        first, second = series.system_halves()
        assert second <= first + 1e-6

    def test_render(self, tiny_profile):
        result = run_convergence(
            tiny_profile,
            "synthetic",
            extra_memory_pct=100.0,
            strategies=("random", "dynasore_hmetis"),
        )
        assert "Figure 6" in report.render_figure6(result)


class TestRegistryAndCli:
    def test_registry_covers_every_paper_item(self):
        expected = {
            "table1",
            "table2",
            "table3",
            "figure2",
            "figure3a",
            "figure3b",
            "figure3c",
            "figure3d",
            "figure4",
            "figure5",
            "figure6a",
            "figure6b",
            # beyond the paper: crash-and-recover comparison
            "figure7",
        }
        assert expected == set(EXPERIMENTS)

    def test_get_experiment_unknown(self):
        with pytest.raises(KeyError):
            get_experiment("figure99")

    def test_cli_list(self, capsys):
        assert cli_main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure3a" in output and "table2" in output

    def test_cli_unknown_experiment(self, capsys):
        assert cli_main(["run", "figure99"]) == 2

    def test_cli_runs_table1(self, capsys):
        assert cli_main(["run", "table1", "--profile", "ci"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
