"""Tests for the columnar event-stream pipeline.

Covers the chunk/stream substrate (adapters, merging, chunk-level queries),
the seed-stability of the stream-native generators across chunk boundaries,
and the headline guarantee of the refactor: streaming and materialised
replay produce byte-identical :class:`SimulationResult`s for every
registered placement strategy, with and without load scenarios.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.config import SimulationConfig
from repro.constants import DAY, HOUR
from repro.exceptions import WorkloadError
from repro.runtime.spec import STRATEGY_KEYS, WorkloadSpec, build_strategy
from repro.scenarios import (
    CompositeScenario,
    CrashRecoverScenario,
    DiurnalLoadScenario,
    RegionalFlashCrowdScenario,
    Scenario,
    ScenarioContext,
)
from repro.simulator.engine import ClusterSimulator
from repro.socialgraph.generators import facebook_like
from repro.topology.tree import TreeTopology
from repro.workload.flash import inject_flash_event, inject_flash_stream, plan_flash_event
from repro.workload.models import (
    CelebrityReadStormGenerator,
    CelebrityStormConfig,
    ParetoBurstConfig,
    ParetoBurstWorkloadGenerator,
)
from repro.workload.requests import EdgeAdded, ReadRequest, RequestLog, WriteRequest
from repro.workload.stream import (
    EventChunk,
    EventStream,
    KIND_READ,
    KIND_WRITE,
    allocate_proportionally,
    as_stream,
    events_per_day,
    merge_streams,
    pack_rows,
)
from repro.workload.synthetic import SyntheticWorkloadConfig, SyntheticWorkloadGenerator
from repro.workload.trace import NewsActivityTraceConfig, NewsActivityTraceGenerator


class TestChunksAndAdapters:
    def test_chunk_round_trips_request_objects(self):
        log = RequestLog()
        log.append(ReadRequest(1.0, 4))
        log.append(WriteRequest(2.0, 5))
        log.append(EdgeAdded(3.0, 1, 2))
        stream = as_stream(log)
        assert [type(r).__name__ for r in stream] == [
            "ReadRequest",
            "WriteRequest",
            "EdgeAdded",
        ]
        assert stream.materialise().requests == log.requests

    def test_pack_rows_respects_chunk_size(self):
        rows = [(KIND_READ, float(i), i, -1) for i in range(10)]
        chunks = list(pack_rows(iter(rows), chunk_size=4))
        assert [len(chunk) for chunk in chunks] == [4, 4, 2]
        assert list(EventStream.from_chunks(chunks).rows()) == rows

    def test_pack_rows_rejects_bad_chunk_size(self):
        with pytest.raises(WorkloadError):
            list(pack_rows(iter(()), chunk_size=0))

    def test_chunk_validate_catches_disorder(self):
        chunk = EventChunk()
        chunk.append(KIND_READ, 5.0, 1)
        chunk.append(KIND_READ, 1.0, 2)
        with pytest.raises(WorkloadError):
            chunk.validate()

    def test_stats_match_request_log_counts(self):
        graph = facebook_like(users=100, seed=3)
        generator = SyntheticWorkloadGenerator(graph, SyntheticWorkloadConfig(days=0.5, seed=3))
        stream = generator.stream()
        log = generator.generate()
        stats = stream.stats()
        assert stats.events == len(log)
        assert stats.reads == log.read_count
        assert stats.writes == log.write_count
        assert stats.mutations == log.mutation_count
        assert stats.duration == pytest.approx(log.duration)

    def test_events_per_day_matches_object_histogram(self):
        graph = facebook_like(users=100, seed=4)
        generator = NewsActivityTraceGenerator(
            graph, NewsActivityTraceConfig(days=2.0, writes_per_user=2.0, seed=4)
        )
        assert events_per_day(generator.stream()) == generator.generate().requests_per_day()


class TestMerge:
    def test_merge_orders_and_keeps_all_events(self):
        a = EventStream.from_rows([(KIND_READ, t, 1, -1) for t in (1.0, 4.0, 9.0)])
        b = EventStream.from_rows([(KIND_WRITE, t, 2, -1) for t in (2.0, 4.0, 8.0)])
        merged = list(merge_streams(a, b).rows())
        timestamps = [row[1] for row in merged]
        assert timestamps == sorted(timestamps)
        assert len(merged) == 6

    def test_merge_is_stable_for_ties(self):
        a = EventStream.from_rows([(KIND_READ, 5.0, 1, -1)])
        b = EventStream.from_rows([(KIND_WRITE, 5.0, 2, -1)])
        merged = list(merge_streams(a, b).rows())
        assert [row[2] for row in merged] == [1, 2]

    def test_merge_is_reiterable(self):
        a = EventStream.from_rows([(KIND_READ, 1.0, 1, -1)])
        b = EventStream.from_rows([(KIND_WRITE, 2.0, 2, -1)])
        merged = merge_streams(a, b)
        assert list(merged.rows()) == list(merged.rows())


class TestGeneratorSeedStability:
    """Chunk boundaries must never perturb the generated events."""

    @pytest.fixture
    def graph(self):
        return facebook_like(users=150, seed=9)

    @pytest.mark.parametrize("chunk_size", [64, 257, 100_000])
    def test_synthetic_stable_across_chunk_sizes(self, graph, chunk_size):
        generator = SyntheticWorkloadGenerator(graph, SyntheticWorkloadConfig(days=0.5, seed=5))
        reference = list(generator.stream().rows())
        assert list(generator.stream(chunk_size=chunk_size).rows()) == reference

    @pytest.mark.parametrize("chunk_size", [64, 257])
    def test_trace_stable_across_chunk_sizes(self, graph, chunk_size):
        generator = NewsActivityTraceGenerator(
            graph, NewsActivityTraceConfig(days=1.0, writes_per_user=2.0, seed=5)
        )
        reference = list(generator.stream().rows())
        assert list(generator.stream(chunk_size=chunk_size).rows()) == reference

    @pytest.mark.parametrize("chunk_size", [64, 257])
    def test_pareto_stable_across_chunk_sizes(self, graph, chunk_size):
        generator = ParetoBurstWorkloadGenerator(graph, ParetoBurstConfig(days=0.5, seed=5))
        reference = list(generator.stream().rows())
        assert list(generator.stream(chunk_size=chunk_size).rows()) == reference

    @pytest.mark.parametrize("chunk_size", [64, 257])
    def test_celebrity_stable_across_chunk_sizes(self, graph, chunk_size):
        generator = CelebrityReadStormGenerator(
            graph, CelebrityStormConfig(days=0.5, celebrities=2, seed=5)
        )
        reference = list(generator.stream().rows())
        assert list(generator.stream(chunk_size=chunk_size).rows()) == reference

    def test_generate_equals_materialised_stream(self, graph):
        generator = SyntheticWorkloadGenerator(graph, SyntheticWorkloadConfig(days=0.5, seed=6))
        assert generator.generate().requests == generator.stream().materialise().requests

    def test_streams_are_reiterable(self, graph):
        stream = SyntheticWorkloadGenerator(
            graph, SyntheticWorkloadConfig(days=0.25, seed=7)
        ).stream()
        assert list(stream.rows()) == list(stream.rows())

    def test_allocate_proportionally_is_exact(self):
        shares = allocate_proportionally(10, [1.0, 1.0, 1.0])
        assert sum(shares) == 10
        assert allocate_proportionally(7, [0.0, 0.0]) == [7, 0]
        assert allocate_proportionally(0, [1.0]) == [0]

    def test_partial_final_window_keeps_event_rate_even(self, graph):
        """A fractional-day span must not concentrate events at the end.

        0.3 days splits into a 6h window and a 1.2h tail; the tail must
        carry roughly width-proportional traffic (~17%), not half of it.
        """
        generator = SyntheticWorkloadGenerator(
            graph, SyntheticWorkloadConfig(days=0.3, seed=5)
        )
        cutoff = 6 * 3600.0
        times = [row[1] for row in generator.stream().rows()]
        tail = sum(1 for t in times if t >= cutoff)
        tail_fraction = tail / len(times)
        expected = (0.3 * 86400.0 - cutoff) / (0.3 * 86400.0)
        assert tail_fraction == pytest.approx(expected, abs=0.03)


class TestFlashInjection:
    def test_stream_injection_matches_object_injection(self):
        graph = facebook_like(users=120, seed=7)
        base = SyntheticWorkloadGenerator(graph, SyntheticWorkloadConfig(days=3.0, seed=7))
        spec = plan_flash_event(
            graph, random.Random(2), followers=10, start_day=1.0, end_day=2.0
        )
        via_log = inject_flash_event(base.generate(), spec, 2.0, seed=4)
        via_stream = inject_flash_stream(base.stream(), spec, 2.0, seed=4).materialise()
        assert via_log.requests == via_stream.requests
        via_log.validate()


def _equivalence_setup(seed: int = 21):
    graph = facebook_like(users=90, seed=seed)
    generator = SyntheticWorkloadGenerator(
        graph, SyntheticWorkloadConfig(days=0.5, seed=seed)
    )
    from repro.config import ClusterSpec

    spec = ClusterSpec(intermediate_switches=2, racks_per_intermediate=2, machines_per_rack=3)
    return graph, generator, spec


def _run(workload, graph, cluster_spec, strategy_key, scenario=None, tracked=()):
    simulator = ClusterSimulator(
        TreeTopology(cluster_spec),
        graph.copy(),
        build_strategy(strategy_key, seed=21),
        SimulationConfig(extra_memory_pct=50.0, seed=21),
        scenario=scenario,
    )
    for user in tracked:
        simulator.track_view(user)
    return simulator.run(workload)


class TestStreamingMaterialisedEquivalence:
    """Streaming and materialised replay must be byte-identical."""

    @pytest.mark.parametrize("strategy_key", STRATEGY_KEYS)
    def test_equivalent_for_every_strategy(self, strategy_key):
        graph, generator, cluster = _equivalence_setup()
        from_stream = _run(generator.stream(), graph, cluster, strategy_key)
        from_log = _run(generator.generate(), graph, cluster, strategy_key)
        assert pickle.dumps(from_stream) == pickle.dumps(from_log)

    @pytest.mark.parametrize(
        "scenario_factory",
        [
            lambda: DiurnalLoadScenario(trough_fraction=0.3),
            lambda: RegionalFlashCrowdScenario(
                start_time=HOUR, end_time=6 * HOUR, targets=2, followers=8
            ),
            lambda: CompositeScenario(
                DiurnalLoadScenario(trough_fraction=0.5),
                RegionalFlashCrowdScenario(
                    start_time=HOUR, end_time=4 * HOUR, targets=1, followers=5
                ),
            ),
            # Fault path: exercises the inlined fault guard and the
            # persistent-store local refresh of the columnar loop.
            lambda: CrashRecoverScenario(
                crash_time=2 * HOUR, recover_time=6 * HOUR, count=1
            ),
            lambda: CompositeScenario(
                DiurnalLoadScenario(trough_fraction=0.5),
                CrashRecoverScenario(crash_time=3 * HOUR, recover_time=8 * HOUR),
            ),
        ],
    )
    def test_equivalent_under_load_scenarios(self, scenario_factory):
        graph, generator, cluster = _equivalence_setup()
        from_stream = _run(
            generator.stream(), graph, cluster, "dynasore_random", scenario_factory()
        )
        from_log = _run(
            generator.generate(), graph, cluster, "dynasore_random", scenario_factory()
        )
        assert pickle.dumps(from_stream) == pickle.dumps(from_log)

    def test_equivalent_with_tracked_views(self):
        graph, generator, cluster = _equivalence_setup()
        tracked = (graph.users[0],)
        from_stream = _run(generator.stream(), graph, cluster, "dynasore_random", tracked=tracked)
        from_log = _run(generator.generate(), graph, cluster, "dynasore_random", tracked=tracked)
        assert pickle.dumps(from_stream) == pickle.dumps(from_log)

    def test_workload_spec_build_paths_agree(self):
        graph = facebook_like(users=80, seed=5)
        spec = WorkloadSpec(kind="synthetic", days=0.5, seed=5)
        stream, tracked_s = spec.build_stream(graph)
        log, tracked_l = spec.build(graph)
        assert tracked_s == tracked_l
        assert stream.materialise().requests == log.requests

    def test_post_request_hooks_see_identical_objects(self):
        graph, generator, cluster = _equivalence_setup()

        def run_with_hook(workload):
            simulator = ClusterSimulator(
                TreeTopology(cluster),
                graph.copy(),
                build_strategy("random", seed=21),
                SimulationConfig(extra_memory_pct=0.0, seed=21),
            )
            seen = []
            simulator.add_post_request_hook(seen.append)
            simulator.run(workload)
            return seen

        assert run_with_hook(generator.stream()) == run_with_hook(generator.generate())


class TestLegacyScenarioAdapter:
    def test_legacy_override_may_delegate_to_super(self, tree_topology, small_graph, small_log):
        """A transform_log override ending in super() must not recurse."""

        class Throttle(Scenario):
            name = "throttle"

            def transform_log(self, log, context):
                kept = RequestLog()
                kept.requests = list(log)[: len(log) // 2]
                return super().transform_log(kept, context)

        context = ScenarioContext(topology=tree_topology, graph=small_graph, seed=3)
        out = Throttle().transform_log(small_log, context)
        assert len(out) == len(small_log) // 2
        via_stream = Throttle().transform_stream(as_stream(small_log), context)
        assert via_stream.stats().events == len(out)

    def test_log_only_scenario_still_transforms_streams(self, tree_topology, small_graph):
        class DropWrites(Scenario):
            name = "drop-writes"

            def transform_log(self, log, context):
                kept = RequestLog()
                kept.requests = [r for r in log if not isinstance(r, WriteRequest)]
                return kept

        context = ScenarioContext(topology=tree_topology, graph=small_graph, seed=3)
        stream = SyntheticWorkloadGenerator(
            small_graph, SyntheticWorkloadConfig(days=0.25, seed=3)
        ).stream()
        transformed = DropWrites().transform_stream(stream, context)
        assert transformed.stats().writes == 0
        assert transformed.stats().reads == stream.stats().reads


class TestNewWorkloadModels:
    @pytest.fixture
    def graph(self):
        return facebook_like(users=150, seed=11)

    def test_pareto_burst_is_ordered_and_sized(self, graph):
        generator = ParetoBurstWorkloadGenerator(
            graph, ParetoBurstConfig(days=0.5, events_per_user_per_day=4.0, seed=3)
        )
        log = generator.generate()
        log.validate()
        assert len(log) == generator.total_events()
        assert log.read_count > log.write_count  # read_fraction defaults to 0.8

    def test_pareto_burst_is_bursty(self, graph):
        """Heavy-tailed gaps: the largest interarrival dwarfs the median."""
        generator = ParetoBurstWorkloadGenerator(
            graph, ParetoBurstConfig(days=0.5, shape=1.2, seed=3)
        )
        times = [row[1] for row in generator.stream().rows()]
        gaps = sorted(b - a for a, b in zip(times, times[1:]))
        median = gaps[len(gaps) // 2]
        assert gaps[-1] > 20 * max(median, 1e-9)

    def test_pareto_rejects_bad_config(self):
        with pytest.raises(WorkloadError):
            ParetoBurstConfig(shape=1.0)
        with pytest.raises(WorkloadError):
            ParetoBurstConfig(read_fraction=1.5)

    def test_celebrity_storm_concentrates_reads_on_followers(self, graph):
        config = CelebrityStormConfig(
            days=0.5,
            celebrities=1,
            storms_per_celebrity=1,
            storm_duration=HOUR,
            reads_per_follower=4.0,
            seed=3,
        )
        generator = CelebrityReadStormGenerator(graph, config)
        (celebrity,) = generator.celebrity_users()
        followers = set(graph.followers(celebrity))
        (start,) = generator.storm_windows(celebrity)
        in_window = [
            row
            for row in generator.stream().rows()
            if start <= row[1] <= start + config.storm_duration and row[0] == KIND_READ
        ]
        follower_reads = sum(1 for row in in_window if row[2] in followers)
        assert follower_reads >= len(followers) * 3
        stream = generator.stream()
        stream.materialise().validate()

    def test_celebrity_storm_rejects_bad_config(self):
        with pytest.raises(WorkloadError):
            CelebrityStormConfig(celebrities=0)
        with pytest.raises(WorkloadError):
            CelebrityStormConfig(background_read_fraction=1.0)

    def test_models_run_through_the_simulator(self, graph):
        from repro.config import ClusterSpec

        cluster = ClusterSpec(
            intermediate_switches=2, racks_per_intermediate=2, machines_per_rack=3
        )
        stream = ParetoBurstWorkloadGenerator(
            graph, ParetoBurstConfig(days=0.25, seed=3)
        ).stream()
        result = _run(stream, graph, cluster, "random")
        assert result.requests_executed == stream.stats().events
        assert result.top_switch_traffic > 0

    def test_workload_spec_builds_new_kinds(self, graph):
        pareto = WorkloadSpec.of("pareto_burst", days=0.25, seed=3, shape=1.4)
        stream, tracked = pareto.build_stream(graph)
        assert tracked == ()
        assert stream.stats().events > 0
        storm = WorkloadSpec.of("celebrity_storm", days=0.25, seed=3, celebrities=2)
        stream, _ = storm.build_stream(graph)
        assert stream.stats().events > 0

    def test_workload_spec_rejects_unknown_kind(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            WorkloadSpec(kind="nope", days=1.0, seed=1)


class TestDayHistogramStream:
    def test_requests_per_day_still_works_on_logs(self):
        log = RequestLog()
        log.append(ReadRequest(0.5 * DAY, 1))
        log.append(WriteRequest(1.5 * DAY, 1))
        assert events_per_day(as_stream(log)) == log.requests_per_day()
