"""Shared fixtures of the test suite.

The fixtures build small but non-trivial instances of the main objects: a
tree topology with three levels, a flat topology, a community-structured
social graph, and a short synthetic request log.  Keeping them here avoids
repeating setup code across the ~30 test modules.
"""

from __future__ import annotations

import random

import pytest

from repro.config import ClusterSpec, DynaSoReConfig, ExperimentProfile, FlatClusterSpec, SimulationConfig
from repro.socialgraph.generators import dataset_preset, generate_social_graph
from repro.socialgraph.graph import SocialGraph
from repro.store.memory import MemoryBudget
from repro.topology.flat import FlatTopology
from repro.topology.tree import TreeTopology
from repro.traffic.accounting import TrafficAccountant
from repro.workload.synthetic import SyntheticWorkloadConfig, SyntheticWorkloadGenerator


@pytest.fixture
def cluster_spec() -> ClusterSpec:
    """Small 2x2x4 cluster: 2 intermediates, 2 racks each, 4 machines/rack."""
    return ClusterSpec(
        intermediate_switches=2,
        racks_per_intermediate=2,
        machines_per_rack=4,
        brokers_per_rack=1,
    )


@pytest.fixture
def tree_topology(cluster_spec: ClusterSpec) -> TreeTopology:
    """Tree topology built from the small cluster spec (12 servers)."""
    return TreeTopology(cluster_spec)


@pytest.fixture
def flat_topology() -> FlatTopology:
    """Flat topology with 10 machines."""
    return FlatTopology(FlatClusterSpec(machines=10))


@pytest.fixture
def small_graph() -> SocialGraph:
    """Community-structured graph with 120 users."""
    spec = dataset_preset("facebook", users=120)
    return generate_social_graph(spec, seed=3)


@pytest.fixture
def tiny_graph() -> SocialGraph:
    """Hand-built 6-user graph with known structure."""
    graph = SocialGraph(range(6))
    edges = [(0, 1), (0, 2), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (1, 3)]
    for follower, followee in edges:
        graph.add_edge(follower, followee)
    return graph


@pytest.fixture
def small_log(small_graph: SocialGraph):
    """Half-day synthetic request log over the small graph."""
    generator = SyntheticWorkloadGenerator(
        small_graph, SyntheticWorkloadConfig(days=0.5, seed=11)
    )
    return generator.generate()


@pytest.fixture
def accountant(tree_topology: TreeTopology) -> TrafficAccountant:
    """Traffic accountant bound to the tree topology."""
    return TrafficAccountant(tree_topology, bucket_width=3600.0)


@pytest.fixture
def budget(small_graph: SocialGraph, tree_topology: TreeTopology) -> MemoryBudget:
    """Memory budget with 50% extra memory for the small graph."""
    return MemoryBudget(
        views=small_graph.num_users,
        extra_memory_pct=50.0,
        servers=len(tree_topology.servers),
    )


@pytest.fixture
def dynasore_config() -> DynaSoReConfig:
    """Default DynaSoRe configuration."""
    return DynaSoReConfig()


@pytest.fixture
def sim_config() -> SimulationConfig:
    """Simulation configuration with 50% extra memory."""
    return SimulationConfig(extra_memory_pct=50.0, seed=5)


@pytest.fixture
def ci_profile() -> ExperimentProfile:
    """The CI experiment profile."""
    return ExperimentProfile.ci()


@pytest.fixture
def rng() -> random.Random:
    """Deterministic random generator for tests."""
    return random.Random(1234)
