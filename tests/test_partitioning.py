"""Tests for the multilevel k-way and hierarchical graph partitioners."""

from __future__ import annotations

import random

import pytest

from repro.config import ClusterSpec
from repro.exceptions import PartitioningError
from repro.partitioning.coarsen import coarsen_once, coarsen_to_size
from repro.partitioning.hierarchical import hierarchical_partition
from repro.partitioning.kway import partition_kway, random_partition
from repro.partitioning.quality import balance_ratio, edge_cut, part_weights, validate_partition
from repro.partitioning.refine import rebalance_partition, refine_partition
from repro.socialgraph.generators import facebook_like


def two_cliques(size: int = 8) -> dict[int, dict[int, int]]:
    """Two cliques connected by a single bridge edge."""
    adjacency: dict[int, dict[int, int]] = {i: {} for i in range(2 * size)}
    for offset in (0, size):
        for i in range(size):
            for j in range(i + 1, size):
                adjacency[offset + i][offset + j] = 1
                adjacency[offset + j][offset + i] = 1
    adjacency[0][size] = 1
    adjacency[size][0] = 1
    return adjacency


class TestQuality:
    def test_edge_cut_of_perfect_split(self):
        adjacency = two_cliques(6)
        assignment = {node: 0 if node < 6 else 1 for node in adjacency}
        assert edge_cut(adjacency, assignment) == 1

    def test_edge_cut_of_interleaved_split(self):
        adjacency = two_cliques(6)
        assignment = {node: node % 2 for node in adjacency}
        assert edge_cut(adjacency, assignment) > 10

    def test_balance_ratio_perfect(self):
        adjacency = two_cliques(4)
        assignment = {node: 0 if node < 4 else 1 for node in adjacency}
        assert balance_ratio(assignment, 2) == pytest.approx(1.0)

    def test_part_weights_with_node_weights(self):
        assignment = {1: 0, 2: 1}
        weights = part_weights(assignment, 2, node_weights={1: 5, 2: 3})
        assert weights == [5, 3]

    def test_validate_partition_detects_missing_nodes(self):
        with pytest.raises(PartitioningError):
            validate_partition({1: 0}, {1, 2}, parts=2)

    def test_validate_partition_detects_bad_part(self):
        with pytest.raises(PartitioningError):
            validate_partition({1: 5}, {1}, parts=2)


class TestCoarsening:
    def test_coarsen_once_halves_clique(self):
        adjacency = two_cliques(8)
        weights = {node: 1 for node in adjacency}
        coarse = coarsen_once(adjacency, weights, random.Random(1))
        assert coarse.num_nodes < len(adjacency)
        assert sum(coarse.node_weights.values()) == len(adjacency)

    def test_coarsen_preserves_total_weight(self):
        graph = facebook_like(users=200, seed=5)
        adjacency = graph.undirected_adjacency()
        levels = coarsen_to_size(adjacency, target_size=50, rng=random.Random(2))
        for level in levels:
            assert sum(level.node_weights.values()) == 200

    def test_coarsen_to_size_reaches_target_or_stalls(self):
        graph = facebook_like(users=300, seed=6)
        adjacency = graph.undirected_adjacency()
        levels = coarsen_to_size(adjacency, target_size=60, rng=random.Random(3))
        assert levels, "at least one coarsening level expected"
        assert levels[-1].num_nodes < 300

    def test_fine_to_coarse_covers_all_nodes(self):
        adjacency = two_cliques(10)
        weights = {node: 1 for node in adjacency}
        coarse = coarsen_once(adjacency, weights, random.Random(4))
        assert set(coarse.fine_to_coarse) == set(adjacency)


class TestRefinement:
    def test_refine_improves_bad_partition(self):
        adjacency = two_cliques(8)
        assignment = {node: node % 2 for node in adjacency}
        before = edge_cut(adjacency, assignment)
        refine_partition(adjacency, assignment, parts=2)
        after = edge_cut(adjacency, assignment)
        assert after <= before

    def test_refine_respects_balance(self):
        adjacency = two_cliques(8)
        assignment = {node: node % 2 for node in adjacency}
        refine_partition(adjacency, assignment, parts=2, max_part_weight=9)
        weights = part_weights(assignment, 2)
        assert max(weights) <= 9

    def test_rebalance_fixes_overweight_part(self):
        adjacency = two_cliques(8)
        assignment = {node: 0 for node in adjacency}
        rebalance_partition(adjacency, assignment, parts=2, tolerance=1.1)
        assert balance_ratio(assignment, 2) <= 1.15


class TestKWay:
    def test_partition_covers_all_nodes(self):
        graph = facebook_like(users=300, seed=7)
        adjacency = graph.undirected_adjacency()
        result = partition_kway(adjacency, parts=6, seed=1)
        assert set(result.assignment) == set(adjacency)

    def test_partition_is_balanced(self):
        graph = facebook_like(users=400, seed=8)
        adjacency = graph.undirected_adjacency()
        result = partition_kway(adjacency, parts=8, seed=1)
        assert result.balance <= 1.25

    def test_partition_beats_random_cut(self):
        graph = facebook_like(users=400, seed=9)
        adjacency = graph.undirected_adjacency()
        clever = partition_kway(adjacency, parts=8, seed=1)
        rand = random_partition(list(adjacency), parts=8, seed=1)
        assert clever.edge_cut < edge_cut(adjacency, rand.assignment)

    def test_two_cliques_are_separated(self):
        adjacency = two_cliques(12)
        result = partition_kway(adjacency, parts=2, seed=1)
        parts_of_first = {result.assignment[node] for node in range(12)}
        parts_of_second = {result.assignment[node] for node in range(12, 24)}
        assert len(parts_of_first) == 1
        assert len(parts_of_second) == 1
        assert parts_of_first != parts_of_second

    def test_single_part(self):
        adjacency = two_cliques(4)
        result = partition_kway(adjacency, parts=1)
        assert set(result.assignment.values()) == {0}

    def test_more_parts_than_nodes(self):
        adjacency = {1: {}, 2: {}, 3: {}}
        result = partition_kway(adjacency, parts=10, seed=1)
        assert set(result.assignment) == {1, 2, 3}

    def test_empty_graph(self):
        result = partition_kway({}, parts=4)
        assert result.assignment == {}

    def test_invalid_parts(self):
        with pytest.raises(PartitioningError):
            partition_kway({1: {}}, parts=0)

    def test_random_partition_balance(self):
        result = random_partition(list(range(100)), parts=10, seed=2)
        weights = part_weights(result.assignment, 10)
        assert max(weights) - min(weights) <= 1

    def test_nodes_by_part_matches_assignment(self):
        graph = facebook_like(users=300, seed=7)
        result = partition_kway(graph.undirected_adjacency(), parts=6, seed=1)
        groups = result.nodes_by_part()
        assert len(groups) == 6
        assert sorted(node for group in groups for node in group) == sorted(
            result.assignment
        )
        for part in range(6):
            assert all(result.assignment[node] == part for node in groups[part])
            assert result.nodes_in_part(part) == list(groups[part])
        # The grouping is built once and reused.
        assert result.nodes_by_part() is groups

    def test_nodes_in_part_range_check(self):
        result = partition_kway(two_cliques(4), parts=2, seed=1)
        with pytest.raises(PartitioningError):
            result.nodes_in_part(2)
        with pytest.raises(PartitioningError):
            result.nodes_in_part(-1)


class TestWeightedKWay:
    """Node-weighted partitioning: the whole stack balances weight."""

    def weighted_graph(self, users: int = 300, seed: int = 7):
        graph = facebook_like(users=users, seed=seed)
        adjacency = graph.undirected_adjacency()
        rng = random.Random(seed)
        # Heavy-tailed weights: a few nodes carry most of the mass, like
        # per-user request rates on a social workload.
        weights = {node: 1.0 + rng.paretovariate(1.3) for node in adjacency}
        return adjacency, weights

    def test_weighted_partition_balances_weight_not_count(self):
        adjacency, weights = self.weighted_graph()
        result = partition_kway(adjacency, parts=4, seed=1, node_weights=weights)
        assert set(result.assignment) == set(adjacency)
        weighted = part_weights(result.assignment, 4, node_weights=weights)
        ideal = sum(weights.values()) / 4
        # The tolerance bound plus one node's weight (rebalance can overshoot
        # the lightest part by at most the moved node).
        assert max(weighted) <= ideal * 1.05 + max(weights.values()) + 1e-9
        assert result.balance == pytest.approx(
            balance_ratio(result.assignment, 4, node_weights=weights)
        )

    def test_weighted_beats_unweighted_on_weighted_balance(self):
        adjacency, weights = self.weighted_graph(users=400, seed=9)
        unweighted = partition_kway(adjacency, parts=4, seed=1)
        weighted = partition_kway(adjacency, parts=4, seed=1, node_weights=weights)
        assert balance_ratio(
            weighted.assignment, 4, node_weights=weights
        ) <= balance_ratio(unweighted.assignment, 4, node_weights=weights)

    def test_default_path_unchanged_by_weight_of_one(self):
        """All-ones weights must reproduce the unweighted partition exactly:
        the placement baselines depend on the default path being stable."""
        graph = facebook_like(users=300, seed=8)
        adjacency = graph.undirected_adjacency()
        unweighted = partition_kway(adjacency, parts=4, seed=2)
        ones = partition_kway(
            adjacency, parts=4, seed=2, node_weights={n: 1 for n in adjacency}
        )
        assert ones.assignment == unweighted.assignment

    def test_degenerate_weights_fall_back_unweighted(self):
        adjacency = two_cliques(8)
        zero = partition_kway(
            adjacency, parts=2, seed=1, node_weights={n: 0.0 for n in adjacency}
        )
        plain = partition_kway(adjacency, parts=2, seed=1)
        assert zero.assignment == plain.assignment
        negative = partition_kway(
            adjacency, parts=2, seed=1, node_weights={0: -1.0}
        )
        assert negative.assignment == plain.assignment

    def test_missing_nodes_weigh_one(self):
        adjacency = two_cliques(6)
        partial = {node: 2.0 for node in range(6)}  # second clique missing
        result = partition_kway(adjacency, parts=2, seed=1, node_weights=partial)
        weights = part_weights(result.assignment, 2, node_weights=partial)
        assert sum(weights) == pytest.approx(6 * 2.0 + 6 * 1.0)


class TestHierarchical:
    def test_assignment_within_server_range(self):
        graph = facebook_like(users=300, seed=10)
        spec = ClusterSpec(
            intermediate_switches=2, racks_per_intermediate=2, machines_per_rack=4
        )
        result = hierarchical_partition(graph.undirected_adjacency(), spec, seed=1)
        assert set(result.server_assignment) == set(graph.users)
        assert all(0 <= s < spec.total_servers for s in result.server_assignment.values())

    def test_rack_consistent_with_server(self):
        graph = facebook_like(users=200, seed=11)
        spec = ClusterSpec(
            intermediate_switches=2, racks_per_intermediate=2, machines_per_rack=4
        )
        result = hierarchical_partition(graph.undirected_adjacency(), spec, seed=1)
        for node, server in result.server_assignment.items():
            assert result.rack_assignment[node] == server // spec.servers_per_rack

    def test_intermediate_consistent_with_rack(self):
        graph = facebook_like(users=200, seed=12)
        spec = ClusterSpec(
            intermediate_switches=3, racks_per_intermediate=2, machines_per_rack=4
        )
        result = hierarchical_partition(graph.undirected_adjacency(), spec, seed=1)
        for node, rack in result.rack_assignment.items():
            assert result.intermediate_assignment[node] == rack // spec.racks_per_intermediate

    def test_empty_graph(self):
        spec = ClusterSpec(
            intermediate_switches=2, racks_per_intermediate=2, machines_per_rack=4
        )
        result = hierarchical_partition({}, spec)
        assert result.server_assignment == {}
