"""Tests for message taxonomy and traffic accounting."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.topology.tree import TreeTopology
from repro.traffic.accounting import TrafficAccountant
from repro.traffic.messages import MessageClass, MessageKind


class TestMessageKind:
    def test_application_kinds(self):
        for kind in (
            MessageKind.READ_REQUEST,
            MessageKind.READ_RESPONSE,
            MessageKind.WRITE_UPDATE,
            MessageKind.WRITE_ACK,
        ):
            assert kind.message_class is MessageClass.APPLICATION
            assert kind.default_size == 10

    def test_protocol_kinds_are_system_and_small(self):
        for kind in (
            MessageKind.REPLICA_CONTROL,
            MessageKind.ROUTING_UPDATE,
            MessageKind.THRESHOLD_PIGGYBACK,
            MessageKind.PROXY_MIGRATION,
        ):
            assert kind.message_class is MessageClass.SYSTEM
            assert kind.default_size == 1

    def test_replica_copy_is_system_but_large(self):
        assert MessageKind.REPLICA_COPY.message_class is MessageClass.SYSTEM
        assert MessageKind.REPLICA_COPY.default_size == 10


class TestTrafficAccountant:
    def test_records_on_every_switch_on_path(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        crossed = accountant.record(a, b, MessageKind.READ_REQUEST, timestamp=0.0)
        assert crossed == 5
        snapshot = accountant.snapshot()
        assert snapshot.total_by_level["top"] == 10
        assert snapshot.total_by_level["intermediate"] == 20
        assert snapshot.total_by_level["rack"] == 20

    def test_same_rack_message_avoids_top(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology)
        rack = tree_topology.rack_switches[0]
        servers = tree_topology.servers_in_rack(rack)
        accountant.record(servers[0], servers[1], MessageKind.WRITE_UPDATE, timestamp=0.0)
        assert accountant.top_switch_traffic() == 0
        assert accountant.level_traffic("rack") == 10

    def test_roundtrip_records_both_directions(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        accountant.record_roundtrip(
            a, b, MessageKind.READ_REQUEST, MessageKind.READ_RESPONSE, timestamp=0.0
        )
        assert accountant.top_switch_traffic() == 20

    def test_application_system_split(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        accountant.record(a, b, MessageKind.READ_REQUEST, timestamp=0.0)
        accountant.record(a, b, MessageKind.REPLICA_COPY, timestamp=0.0)
        accountant.record(a, b, MessageKind.ROUTING_UPDATE, timestamp=0.0)
        snapshot = accountant.snapshot()
        assert snapshot.application_by_level["top"] == 10
        assert snapshot.system_by_level["top"] == 11

    def test_time_series_buckets(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology, bucket_width=3600.0)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        accountant.record(a, b, MessageKind.READ_REQUEST, timestamp=100.0)
        accountant.record(a, b, MessageKind.READ_REQUEST, timestamp=4000.0)
        app, _sys = accountant.top_switch_series()
        assert app[0] == 10
        assert app[1] == 10

    def test_local_message_crosses_nothing(self, flat_topology):
        accountant = TrafficAccountant(flat_topology)
        machine = flat_topology.servers[0].index
        crossed = accountant.record(machine, machine, MessageKind.READ_REQUEST, timestamp=0.0)
        assert crossed == 0
        assert accountant.top_switch_traffic() == 0

    def test_explicit_size_overrides_default(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology)
        rack = tree_topology.rack_switches[0]
        servers = tree_topology.servers_in_rack(rack)
        accountant.record(servers[0], servers[1], MessageKind.READ_REQUEST, timestamp=0.0, size=3)
        assert accountant.level_traffic("rack") == 3

    def test_measure_from_skips_warmup(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology, measure_from=1000.0)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        accountant.record(a, b, MessageKind.READ_REQUEST, timestamp=10.0)
        assert accountant.top_switch_traffic() == 0
        accountant.record(a, b, MessageKind.READ_REQUEST, timestamp=2000.0)
        assert accountant.top_switch_traffic() == 10

    def test_reset_clears_everything(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        accountant.record(a, b, MessageKind.READ_REQUEST, timestamp=0.0)
        accountant.reset()
        assert accountant.top_switch_traffic() == 0
        assert accountant.message_count == 0

    def test_level_average_traffic(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        accountant.record(a, b, MessageKind.READ_REQUEST, timestamp=0.0)
        spec = tree_topology.spec
        assert accountant.level_average_traffic("top") == 10
        assert accountant.level_average_traffic("intermediate") == pytest.approx(
            20 / spec.intermediate_switches
        )

    def test_rejects_bad_bucket_width(self, tree_topology: TreeTopology):
        with pytest.raises(SimulationError):
            TrafficAccountant(tree_topology, bucket_width=0.0)

    def test_rejects_negative_measure_from(self, tree_topology: TreeTopology):
        with pytest.raises(SimulationError):
            TrafficAccountant(tree_topology, measure_from=-5.0)

    def test_snapshot_counts_messages(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[1].index
        accountant.record(a, b, MessageKind.READ_REQUEST, timestamp=0.0)
        accountant.record(a, b, MessageKind.READ_RESPONSE, timestamp=0.0)
        assert accountant.snapshot().messages == 2

    def test_message_count_includes_warmup_and_local_messages(
        self, tree_topology: TreeTopology
    ):
        """Regression: the message-count contract counts *every* message.

        Messages inside the warm-up window (before ``measure_from``) used to
        be excluded from ``message_count`` while machine-local (empty-path)
        messages were included.  Both must count; only traffic volumes are
        filtered by the warm-up window.
        """
        accountant = TrafficAccountant(tree_topology, measure_from=1000.0)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        # Warm-up message: no traffic, but it happened — it counts.
        accountant.record(a, b, MessageKind.READ_REQUEST, timestamp=10.0)
        assert accountant.message_count == 1
        assert accountant.top_switch_traffic() == 0
        # Machine-local message (empty path) also counts.
        accountant.record(a, a, MessageKind.READ_REQUEST, timestamp=2000.0)
        assert accountant.message_count == 2
        # Measured cross-switch message counts too.
        accountant.record(a, b, MessageKind.READ_REQUEST, timestamp=2000.0)
        assert accountant.message_count == 3
        assert accountant.snapshot().messages == 3

    def test_roundtrip_counts_two_messages_in_warmup(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology, measure_from=1000.0)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        accountant.record_roundtrip(
            a, b, MessageKind.READ_REQUEST, MessageKind.READ_RESPONSE, timestamp=10.0
        )
        assert accountant.message_count == 2
        assert accountant.top_switch_traffic() == 0

    def test_mixed_class_roundtrip_splits_application_and_system(
        self, tree_topology: TreeTopology
    ):
        accountant = TrafficAccountant(tree_topology)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        accountant.record_roundtrip(
            a, b, MessageKind.READ_REQUEST, MessageKind.REPLICA_CONTROL, timestamp=0.0
        )
        snapshot = accountant.snapshot()
        assert snapshot.application_by_level["top"] == 10
        assert snapshot.system_by_level["top"] == 1
        app, sys_ = accountant.top_switch_series()
        assert app[0] == 10 and sys_[0] == 1

    def test_record_rejects_non_leaf_devices(self, tree_topology: TreeTopology):
        from repro.exceptions import TopologyError

        accountant = TrafficAccountant(tree_topology)
        server = tree_topology.servers[0].index
        with pytest.raises(TopologyError):
            accountant.record(
                tree_topology.top_switch_index, server, MessageKind.READ_REQUEST, 0.0
            )
        with pytest.raises(TopologyError):
            accountant.record(server, 9999, MessageKind.READ_REQUEST, 0.0)
        with pytest.raises(TopologyError):
            accountant.record(-1, server, MessageKind.READ_REQUEST, 0.0)


class TestDeviceTrafficContract:
    """The explicit out-of-range contract of the flat-column rewrite."""

    def test_device_traffic_known_device(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        accountant.record(a, b, MessageKind.READ_REQUEST, 0.0)
        assert accountant.device_traffic(tree_topology.top_switch.index) > 0
        assert accountant.device_traffic(a) == 0.0  # leaves record nothing

    def test_device_traffic_rejects_out_of_range(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology)
        with pytest.raises(SimulationError):
            accountant.device_traffic(len(tree_topology.devices))
        with pytest.raises(SimulationError):
            accountant.device_traffic(9999)

    def test_device_traffic_rejects_negative_indices(self, tree_topology: TreeTopology):
        """Negative indices used to wrap around to a real device's counter."""
        accountant = TrafficAccountant(tree_topology)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        accountant.record(a, b, MessageKind.READ_REQUEST, 0.0)
        with pytest.raises(SimulationError):
            accountant.device_traffic(-1)

    def test_level_traffic_unknown_level_is_zero(self, tree_topology: TreeTopology):
        """Levels are labels, not indices: unknown names sum to 0.0."""
        accountant = TrafficAccountant(tree_topology)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        accountant.record(a, b, MessageKind.READ_REQUEST, 0.0)
        assert accountant.level_traffic("no-such-level") == 0.0
        assert accountant.level_average_traffic("no-such-level") == 0.0
        assert accountant.level_traffic("top") > 0.0


class TestBatchRecording:
    """Batch entry points are byte-identical to repeated per-message calls."""

    def test_record_batch_matches_repeated_records(self, tree_topology: TreeTopology):
        batched = TrafficAccountant(tree_topology, bucket_width=3600.0)
        scalar = TrafficAccountant(tree_topology, bucket_width=3600.0)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        for _ in range(7):
            scalar.record(a, b, MessageKind.READ_REQUEST, 100.0)
        batched.record_batch(a, b, MessageKind.READ_REQUEST, 7, bucket=0)
        assert batched.snapshot() == scalar.snapshot()
        assert batched.top_switch_series() == scalar.top_switch_series()

    def test_record_roundtrip_batch_matches_repeated_roundtrips(
        self, tree_topology: TreeTopology
    ):
        import random

        batched = TrafficAccountant(tree_topology, bucket_width=3600.0)
        scalar = TrafficAccountant(tree_topology, bucket_width=3600.0)
        servers = [server.index for server in tree_topology.servers]
        rng = random.Random(3)
        stride = batched.device_count
        counts: dict[int, int] = {}
        for _ in range(200):
            source, destination = rng.choice(servers), rng.choice(servers)
            scalar.record_roundtrip(
                source,
                destination,
                MessageKind.READ_REQUEST,
                MessageKind.READ_RESPONSE,
                50.0,
            )
            key = source * stride + destination
            counts[key] = counts.get(key, 0) + 1
        batched.record_roundtrip_batch(
            counts, MessageKind.READ_REQUEST, MessageKind.READ_RESPONSE, bucket=0
        )
        assert batched.snapshot() == scalar.snapshot()
        assert batched.top_switch_series() == scalar.top_switch_series()

    def test_mixed_class_roundtrip_batch_split(self, tree_topology: TreeTopology):
        """Application/system splits survive the multiplied update."""
        batched = TrafficAccountant(tree_topology)
        scalar = TrafficAccountant(tree_topology)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        for _ in range(5):
            scalar.record_roundtrip(
                a, b, MessageKind.READ_REQUEST, MessageKind.REPLICA_CONTROL, 10.0
            )
        batched.record_roundtrip_batch(
            {a * batched.device_count + b: 5},
            MessageKind.READ_REQUEST,
            MessageKind.REPLICA_CONTROL,
            bucket=0,
        )
        assert batched.snapshot() == scalar.snapshot()

    def test_count_messages_only_counts(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology)
        accountant.count_messages(6)
        assert accountant.message_count == 6
        snapshot = accountant.snapshot()
        assert all(value == 0.0 for value in snapshot.total_by_level.values())
        with pytest.raises(SimulationError):
            accountant.count_messages(-1)

    def test_record_batch_zero_count_is_noop(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        assert accountant.record_batch(a, b, MessageKind.READ_REQUEST, 0, bucket=0) == 0
        assert accountant.message_count == 0
        with pytest.raises(SimulationError):
            accountant.record_batch(a, b, MessageKind.READ_REQUEST, -2, bucket=0)


class TestRoundtripRun:
    """The run-local aggregator of the strategy kernels."""

    def test_bucket_segments_and_warmup(self, tree_topology: TreeTopology):
        batched = TrafficAccountant(tree_topology, bucket_width=100.0, measure_from=50.0)
        scalar = TrafficAccountant(tree_topology, bucket_width=100.0, measure_from=50.0)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        run = batched.roundtrip_run(MessageKind.READ_REQUEST, MessageKind.READ_RESPONSE)
        key = a * run.stride + b
        # Warm-up (t < 50), then two distinct buckets (t=60, t=260).
        for timestamp in (10.0, 20.0, 60.0, 60.0, 260.0):
            counts = run.counts_for(timestamp)
            counts[key] = counts.get(key, 0) + 1
            scalar.record_roundtrip(
                a, b, MessageKind.READ_REQUEST, MessageKind.READ_RESPONSE, timestamp
            )
        run.flush()
        assert batched.snapshot() == scalar.snapshot()
        assert batched.top_switch_series() == scalar.top_switch_series()
        assert batched.message_count == scalar.message_count == 10

    def test_flush_resets_for_reuse(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology, bucket_width=100.0)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        run = accountant.roundtrip_run(MessageKind.WRITE_UPDATE, MessageKind.WRITE_ACK)
        key = a * run.stride + b
        for _ in range(2):
            counts = run.counts_for(0.0)
            counts[key] = counts.get(key, 0) + 1
            run.flush()
        assert accountant.message_count == 4
        run.flush()  # idempotent when empty
        assert accountant.message_count == 4


class TestMute:
    """The depth-counted mute used by shard workers for non-owned events."""

    def test_mute_silences_every_entry_point(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        accountant.push_mute()
        assert accountant.muted
        assert accountant.record(a, b, MessageKind.READ_REQUEST, 0.0) == 0
        assert (
            accountant.record_roundtrip(
                a, b, MessageKind.READ_REQUEST, MessageKind.READ_RESPONSE, 0.0
            )
            == 0
        )
        accountant.count_messages(5)
        assert accountant.record_batch(a, b, MessageKind.WRITE_UPDATE, 3, 0) == 0
        accountant.record_roundtrip_batch(
            {a * accountant.device_count + b: 2},
            MessageKind.READ_REQUEST,
            MessageKind.READ_RESPONSE,
            0,
        )
        assert accountant.message_count == 0
        assert accountant.top_switch_traffic() == 0.0
        accountant.pop_mute()
        assert not accountant.muted
        accountant.record(a, b, MessageKind.READ_REQUEST, 0.0)
        assert accountant.message_count == 1

    def test_mute_nests(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        accountant.push_mute()
        accountant.push_mute()
        accountant.pop_mute()
        assert accountant.muted  # still one level deep
        accountant.record(a, b, MessageKind.READ_REQUEST, 0.0)
        assert accountant.message_count == 0
        accountant.pop_mute()
        assert not accountant.muted

    def test_unmatched_pop_raises(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology)
        with pytest.raises(SimulationError):
            accountant.pop_mute()


class TestTrafficDelta:
    """The export/merge protocol the shard coordinator sums workers with."""

    def test_export_is_non_mutating(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        accountant.record(a, b, MessageKind.READ_REQUEST, 100.0)
        before = accountant.snapshot()
        delta = accountant.export_delta()
        assert accountant.snapshot() == before
        assert delta.messages == 1
        assert delta.stride == accountant.device_count

    def test_merge_reproduces_source(self, tree_topology: TreeTopology):
        source = TrafficAccountant(tree_topology)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        source.record_roundtrip(
            a, b, MessageKind.READ_REQUEST, MessageKind.READ_RESPONSE, 100.0
        )
        source.record(a, b, MessageKind.REPLICA_COPY, 4000.0)
        target = TrafficAccountant(tree_topology)
        target.merge_delta(source.export_delta())
        assert target.snapshot() == source.snapshot()
        assert target.top_switch_series() == source.top_switch_series()

    def test_merge_rejects_stride_mismatch(self, tree_topology: TreeTopology):
        from repro.config import ClusterSpec

        other = TreeTopology(
            ClusterSpec(
                intermediate_switches=1,
                racks_per_intermediate=1,
                machines_per_rack=2,
                brokers_per_rack=1,
            )
        )
        delta = TrafficAccountant(other).export_delta()
        accountant = TrafficAccountant(tree_topology)
        with pytest.raises(SimulationError):
            accountant.merge_delta(delta)
