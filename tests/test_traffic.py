"""Tests for message taxonomy and traffic accounting."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.topology.tree import TreeTopology
from repro.traffic.accounting import TrafficAccountant
from repro.traffic.messages import MessageClass, MessageKind


class TestMessageKind:
    def test_application_kinds(self):
        for kind in (
            MessageKind.READ_REQUEST,
            MessageKind.READ_RESPONSE,
            MessageKind.WRITE_UPDATE,
            MessageKind.WRITE_ACK,
        ):
            assert kind.message_class is MessageClass.APPLICATION
            assert kind.default_size == 10

    def test_protocol_kinds_are_system_and_small(self):
        for kind in (
            MessageKind.REPLICA_CONTROL,
            MessageKind.ROUTING_UPDATE,
            MessageKind.THRESHOLD_PIGGYBACK,
            MessageKind.PROXY_MIGRATION,
        ):
            assert kind.message_class is MessageClass.SYSTEM
            assert kind.default_size == 1

    def test_replica_copy_is_system_but_large(self):
        assert MessageKind.REPLICA_COPY.message_class is MessageClass.SYSTEM
        assert MessageKind.REPLICA_COPY.default_size == 10


class TestTrafficAccountant:
    def test_records_on_every_switch_on_path(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        crossed = accountant.record(a, b, MessageKind.READ_REQUEST, timestamp=0.0)
        assert crossed == 5
        snapshot = accountant.snapshot()
        assert snapshot.total_by_level["top"] == 10
        assert snapshot.total_by_level["intermediate"] == 20
        assert snapshot.total_by_level["rack"] == 20

    def test_same_rack_message_avoids_top(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology)
        rack = tree_topology.rack_switches[0]
        servers = tree_topology.servers_in_rack(rack)
        accountant.record(servers[0], servers[1], MessageKind.WRITE_UPDATE, timestamp=0.0)
        assert accountant.top_switch_traffic() == 0
        assert accountant.level_traffic("rack") == 10

    def test_roundtrip_records_both_directions(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        accountant.record_roundtrip(
            a, b, MessageKind.READ_REQUEST, MessageKind.READ_RESPONSE, timestamp=0.0
        )
        assert accountant.top_switch_traffic() == 20

    def test_application_system_split(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        accountant.record(a, b, MessageKind.READ_REQUEST, timestamp=0.0)
        accountant.record(a, b, MessageKind.REPLICA_COPY, timestamp=0.0)
        accountant.record(a, b, MessageKind.ROUTING_UPDATE, timestamp=0.0)
        snapshot = accountant.snapshot()
        assert snapshot.application_by_level["top"] == 10
        assert snapshot.system_by_level["top"] == 11

    def test_time_series_buckets(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology, bucket_width=3600.0)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        accountant.record(a, b, MessageKind.READ_REQUEST, timestamp=100.0)
        accountant.record(a, b, MessageKind.READ_REQUEST, timestamp=4000.0)
        app, _sys = accountant.top_switch_series()
        assert app[0] == 10
        assert app[1] == 10

    def test_local_message_crosses_nothing(self, flat_topology):
        accountant = TrafficAccountant(flat_topology)
        machine = flat_topology.servers[0].index
        crossed = accountant.record(machine, machine, MessageKind.READ_REQUEST, timestamp=0.0)
        assert crossed == 0
        assert accountant.top_switch_traffic() == 0

    def test_explicit_size_overrides_default(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology)
        rack = tree_topology.rack_switches[0]
        servers = tree_topology.servers_in_rack(rack)
        accountant.record(servers[0], servers[1], MessageKind.READ_REQUEST, timestamp=0.0, size=3)
        assert accountant.level_traffic("rack") == 3

    def test_measure_from_skips_warmup(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology, measure_from=1000.0)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        accountant.record(a, b, MessageKind.READ_REQUEST, timestamp=10.0)
        assert accountant.top_switch_traffic() == 0
        accountant.record(a, b, MessageKind.READ_REQUEST, timestamp=2000.0)
        assert accountant.top_switch_traffic() == 10

    def test_reset_clears_everything(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        accountant.record(a, b, MessageKind.READ_REQUEST, timestamp=0.0)
        accountant.reset()
        assert accountant.top_switch_traffic() == 0
        assert accountant.message_count == 0

    def test_level_average_traffic(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        accountant.record(a, b, MessageKind.READ_REQUEST, timestamp=0.0)
        spec = tree_topology.spec
        assert accountant.level_average_traffic("top") == 10
        assert accountant.level_average_traffic("intermediate") == pytest.approx(
            20 / spec.intermediate_switches
        )

    def test_rejects_bad_bucket_width(self, tree_topology: TreeTopology):
        with pytest.raises(SimulationError):
            TrafficAccountant(tree_topology, bucket_width=0.0)

    def test_rejects_negative_measure_from(self, tree_topology: TreeTopology):
        with pytest.raises(SimulationError):
            TrafficAccountant(tree_topology, measure_from=-5.0)

    def test_snapshot_counts_messages(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[1].index
        accountant.record(a, b, MessageKind.READ_REQUEST, timestamp=0.0)
        accountant.record(a, b, MessageKind.READ_RESPONSE, timestamp=0.0)
        assert accountant.snapshot().messages == 2

    def test_message_count_includes_warmup_and_local_messages(
        self, tree_topology: TreeTopology
    ):
        """Regression: the message-count contract counts *every* message.

        Messages inside the warm-up window (before ``measure_from``) used to
        be excluded from ``message_count`` while machine-local (empty-path)
        messages were included.  Both must count; only traffic volumes are
        filtered by the warm-up window.
        """
        accountant = TrafficAccountant(tree_topology, measure_from=1000.0)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        # Warm-up message: no traffic, but it happened — it counts.
        accountant.record(a, b, MessageKind.READ_REQUEST, timestamp=10.0)
        assert accountant.message_count == 1
        assert accountant.top_switch_traffic() == 0
        # Machine-local message (empty path) also counts.
        accountant.record(a, a, MessageKind.READ_REQUEST, timestamp=2000.0)
        assert accountant.message_count == 2
        # Measured cross-switch message counts too.
        accountant.record(a, b, MessageKind.READ_REQUEST, timestamp=2000.0)
        assert accountant.message_count == 3
        assert accountant.snapshot().messages == 3

    def test_roundtrip_counts_two_messages_in_warmup(self, tree_topology: TreeTopology):
        accountant = TrafficAccountant(tree_topology, measure_from=1000.0)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        accountant.record_roundtrip(
            a, b, MessageKind.READ_REQUEST, MessageKind.READ_RESPONSE, timestamp=10.0
        )
        assert accountant.message_count == 2
        assert accountant.top_switch_traffic() == 0

    def test_mixed_class_roundtrip_splits_application_and_system(
        self, tree_topology: TreeTopology
    ):
        accountant = TrafficAccountant(tree_topology)
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        accountant.record_roundtrip(
            a, b, MessageKind.READ_REQUEST, MessageKind.REPLICA_CONTROL, timestamp=0.0
        )
        snapshot = accountant.snapshot()
        assert snapshot.application_by_level["top"] == 10
        assert snapshot.system_by_level["top"] == 1
        app, sys_ = accountant.top_switch_series()
        assert app[0] == 10 and sys_[0] == 1

    def test_record_rejects_non_leaf_devices(self, tree_topology: TreeTopology):
        from repro.exceptions import TopologyError

        accountant = TrafficAccountant(tree_topology)
        server = tree_topology.servers[0].index
        with pytest.raises(TopologyError):
            accountant.record(
                tree_topology.top_switch_index, server, MessageKind.READ_REQUEST, 0.0
            )
        with pytest.raises(TopologyError):
            accountant.record(server, 9999, MessageKind.READ_REQUEST, 0.0)
        with pytest.raises(TopologyError):
            accountant.record(-1, server, MessageKind.READ_REQUEST, 0.0)
