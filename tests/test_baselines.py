"""Tests for the baseline placement strategies (Random, METIS, hMETIS, SPAR)."""

from __future__ import annotations

import pytest

from repro.baselines.hmetis_placement import HierarchicalMetisPlacement
from repro.baselines.metis_placement import MetisPlacement
from repro.baselines.random_placement import RandomPlacement
from repro.baselines.spar import SparPlacement
from repro.exceptions import SimulationError
from repro.partitioning.quality import edge_cut
from repro.store.memory import MemoryBudget
from repro.traffic.accounting import TrafficAccountant


def bind_strategy(strategy, topology, graph, extra_memory_pct=30.0, seed=3):
    accountant = TrafficAccountant(topology)
    budget = MemoryBudget(
        views=graph.num_users, extra_memory_pct=extra_memory_pct, servers=len(topology.servers)
    )
    strategy.bind(topology, graph, accountant, budget, seed=seed)
    strategy.build_initial_placement()
    return accountant


class TestStaticBaselines:
    @pytest.mark.parametrize(
        "strategy_class", [RandomPlacement, MetisPlacement, HierarchicalMetisPlacement]
    )
    def test_every_user_gets_exactly_one_replica(
        self, strategy_class, tree_topology, small_graph
    ):
        strategy = strategy_class(seed=2)
        bind_strategy(strategy, tree_topology, small_graph)
        locations = strategy.replica_locations()
        assert set(locations) == set(small_graph.users)
        assert all(len(devices) == 1 for devices in locations.values())

    @pytest.mark.parametrize(
        "strategy_class", [RandomPlacement, MetisPlacement, HierarchicalMetisPlacement]
    )
    def test_placement_is_roughly_balanced(self, strategy_class, tree_topology, small_graph):
        strategy = strategy_class(seed=2)
        bind_strategy(strategy, tree_topology, small_graph)
        counts: dict[int, int] = {}
        for devices in strategy.replica_locations().values():
            for device in devices:
                counts[device] = counts.get(device, 0) + 1
        average = small_graph.num_users / len(tree_topology.servers)
        assert max(counts.values()) <= average * 1.6

    def test_metis_cut_beats_random(self, tree_topology, small_graph):
        random_strategy = RandomPlacement(seed=2)
        metis_strategy = MetisPlacement(seed=2)
        bind_strategy(random_strategy, tree_topology, small_graph)
        bind_strategy(metis_strategy, tree_topology, small_graph)
        adjacency = small_graph.undirected_adjacency()
        assert edge_cut(adjacency, metis_strategy.assignment()) < edge_cut(
            adjacency, random_strategy.assignment()
        )

    def test_read_routes_to_target_views(self, tree_topology, tiny_graph):
        strategy = RandomPlacement(seed=2)
        accountant = bind_strategy(strategy, tree_topology, tiny_graph, extra_memory_pct=0.0)
        strategy.execute_read(0, now=0.0)
        # user 0 follows two users → 2 requests + 2 responses, each at most 5 switches.
        assert accountant.message_count == 4

    def test_write_touches_single_replica(self, tree_topology, tiny_graph):
        strategy = RandomPlacement(seed=2)
        accountant = bind_strategy(strategy, tree_topology, tiny_graph, extra_memory_pct=0.0)
        strategy.execute_write(0, now=0.0)
        assert accountant.message_count == 2  # update + ack

    def test_explicit_targets_override_graph(self, tree_topology, tiny_graph):
        strategy = RandomPlacement(seed=2)
        accountant = bind_strategy(strategy, tree_topology, tiny_graph, extra_memory_pct=0.0)
        strategy.execute_read(0, now=0.0, targets=(1,))
        assert accountant.message_count == 2

    def test_unknown_reader_is_ignored(self, tree_topology, tiny_graph):
        strategy = RandomPlacement(seed=2)
        accountant = bind_strategy(strategy, tree_topology, tiny_graph, extra_memory_pct=0.0)
        strategy.execute_read(999, now=0.0)
        assert accountant.message_count == 0

    def test_lazy_assignment_for_new_user(self, tree_topology, tiny_graph):
        strategy = RandomPlacement(seed=2)
        bind_strategy(strategy, tree_topology, tiny_graph, extra_memory_pct=0.0)
        tiny_graph.add_edge(42, 0)
        strategy.execute_write(42, now=0.0)
        assert strategy.replica_count(42) == 1

    def test_unbound_strategy_raises(self, tree_topology):
        strategy = RandomPlacement()
        with pytest.raises(SimulationError):
            strategy.require_bound()

    def test_proxy_broker_in_same_rack_as_view(self, tree_topology, small_graph):
        strategy = HierarchicalMetisPlacement(seed=2)
        bind_strategy(strategy, tree_topology, small_graph)
        for user in list(small_graph.users)[:20]:
            view_device = next(iter(strategy.replica_locations()[user]))
            broker = strategy.proxy_broker(user)
            assert tree_topology.rack_of(broker) == tree_topology.rack_of(view_device)


class TestSpar:
    def test_every_user_has_a_master(self, tree_topology, small_graph):
        strategy = SparPlacement(seed=2)
        bind_strategy(strategy, tree_topology, small_graph, extra_memory_pct=50.0)
        locations = strategy.replica_locations()
        assert set(locations) == set(small_graph.users)
        assert all(devices for devices in locations.values())

    def test_respects_memory_budget(self, tree_topology, small_graph):
        strategy = SparPlacement(seed=2)
        bind_strategy(strategy, tree_topology, small_graph, extra_memory_pct=30.0)
        budget = MemoryBudget(
            views=small_graph.num_users,
            extra_memory_pct=30.0,
            servers=len(tree_topology.servers),
        )
        assert strategy.total_replicas() <= budget.total_capacity
        assert strategy.replication_factor() <= 1.3 + 1e-9

    def test_uses_extra_memory_for_replication(self, tree_topology, small_graph):
        strategy = SparPlacement(seed=2)
        bind_strategy(strategy, tree_topology, small_graph, extra_memory_pct=100.0)
        assert strategy.replication_factor() > 1.5

    def test_no_replication_without_extra_memory(self, tree_topology, small_graph):
        strategy = SparPlacement(seed=2)
        bind_strategy(strategy, tree_topology, small_graph, extra_memory_pct=0.0)
        assert strategy.replication_factor() == pytest.approx(1.0, abs=0.01)

    def test_writes_update_every_replica(self, tree_topology, small_graph):
        strategy = SparPlacement(seed=2)
        accountant = bind_strategy(strategy, tree_topology, small_graph, extra_memory_pct=100.0)
        # Find a user with several replicas.
        user = max(small_graph.users, key=strategy.replica_count)
        replicas = strategy.replica_count(user)
        assert replicas >= 2
        before = accountant.message_count
        strategy.execute_write(user, now=0.0)
        assert accountant.message_count - before == 2 * replicas

    def test_reads_prefer_local_replica(self, tree_topology, small_graph):
        """With abundant memory, most reads should be served from the reader's
        own rack, keeping top-switch traffic below the random baseline."""
        spar = SparPlacement(seed=2)
        random_strategy = RandomPlacement(seed=2)
        spar_accountant = bind_strategy(spar, tree_topology, small_graph, extra_memory_pct=200.0)
        random_accountant = bind_strategy(
            random_strategy, tree_topology, small_graph, extra_memory_pct=200.0
        )
        for user in list(small_graph.users)[:50]:
            spar.execute_read(user, now=0.0)
            random_strategy.execute_read(user, now=0.0)
        assert spar_accountant.top_switch_traffic() < random_accountant.top_switch_traffic()

    def test_new_edge_triggers_co_location(self, tree_topology, small_graph):
        strategy = SparPlacement(seed=2)
        bind_strategy(strategy, tree_topology, small_graph, extra_memory_pct=100.0)
        users = list(small_graph.users)
        follower, followee = users[0], users[-1]
        before = strategy.replica_count(followee)
        strategy.on_edge_added(follower, followee, now=0.0)
        master_device = next(iter(strategy.replica_locations()[follower]))
        assert master_device in strategy.replica_locations()[followee] or (
            strategy.replica_count(followee) == before
        )
