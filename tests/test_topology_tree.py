"""Tests for the tree topology (paths, distances, origins, structure)."""

from __future__ import annotations

import pytest

from repro.config import ClusterSpec
from repro.exceptions import TopologyError
from repro.topology.devices import DeviceKind
from repro.topology.tree import TreeTopology


class TestConstruction:
    def test_device_counts(self, tree_topology: TreeTopology):
        spec = tree_topology.spec
        assert len(tree_topology.servers) == spec.total_servers
        assert len(tree_topology.brokers) == spec.total_brokers
        # 1 top + intermediates + racks
        expected_switches = 1 + spec.intermediate_switches + spec.total_racks
        assert len(tree_topology.switches) == expected_switches

    def test_paper_cluster_size(self):
        topology = TreeTopology(ClusterSpec())
        assert len(topology.servers) == 225
        assert len(topology.brokers) == 25
        assert len(topology.switches) == 1 + 5 + 25

    def test_every_leaf_has_a_rack(self, tree_topology: TreeTopology):
        for leaf in tree_topology.servers + tree_topology.brokers:
            rack = tree_topology.rack_of(leaf.index)
            assert tree_topology.devices[rack].kind is DeviceKind.RACK_SWITCH

    def test_device_indices_are_dense(self, tree_topology: TreeTopology):
        indices = [device.index for device in tree_topology.devices]
        assert indices == list(range(len(tree_topology.devices)))

    def test_describe_mentions_counts(self, tree_topology: TreeTopology):
        text = tree_topology.describe()
        assert str(len(tree_topology.servers)) in text


class TestPaths:
    def test_same_rack_distance_is_one(self, tree_topology: TreeTopology):
        rack = tree_topology.rack_switches[0]
        servers = tree_topology.servers_in_rack(rack)
        assert tree_topology.distance(servers[0], servers[1]) == 1

    def test_same_intermediate_distance_is_three(self, tree_topology: TreeTopology):
        inter = tree_topology.intermediate_switches[0]
        racks = tree_topology.racks_under_intermediate(inter)
        a = tree_topology.servers_in_rack(racks[0])[0]
        b = tree_topology.servers_in_rack(racks[1])[0]
        assert tree_topology.distance(a, b) == 3

    def test_cross_intermediate_distance_is_five(self, tree_topology: TreeTopology):
        inter_a, inter_b = tree_topology.intermediate_switches[:2]
        a = tree_topology.servers_in_rack(tree_topology.racks_under_intermediate(inter_a)[0])[0]
        b = tree_topology.servers_in_rack(tree_topology.racks_under_intermediate(inter_b)[0])[0]
        assert tree_topology.distance(a, b) == 5

    def test_path_to_self_is_empty(self, tree_topology: TreeTopology):
        server = tree_topology.servers[0].index
        assert tree_topology.path_between(server, server) == ()

    def test_path_is_symmetric_in_length(self, tree_topology: TreeTopology):
        a = tree_topology.servers[0].index
        b = tree_topology.servers[-1].index
        assert len(tree_topology.path_between(a, b)) == len(tree_topology.path_between(b, a))

    def test_cross_intermediate_path_goes_through_top(self, tree_topology: TreeTopology):
        inter_a, inter_b = tree_topology.intermediate_switches[:2]
        a = tree_topology.servers_in_rack(tree_topology.racks_under_intermediate(inter_a)[0])[0]
        b = tree_topology.servers_in_rack(tree_topology.racks_under_intermediate(inter_b)[0])[0]
        assert tree_topology.top_switch_index in tree_topology.path_between(a, b)

    def test_same_intermediate_path_avoids_top(self, tree_topology: TreeTopology):
        inter = tree_topology.intermediate_switches[0]
        racks = tree_topology.racks_under_intermediate(inter)
        a = tree_topology.servers_in_rack(racks[0])[0]
        b = tree_topology.servers_in_rack(racks[1])[0]
        assert tree_topology.top_switch_index not in tree_topology.path_between(a, b)

    def test_path_rejects_switch_argument(self, tree_topology: TreeTopology):
        with pytest.raises(TopologyError):
            tree_topology.path_between(tree_topology.top_switch_index, tree_topology.servers[0].index)


class TestOrigins:
    def test_origin_within_same_intermediate_is_rack(self, tree_topology: TreeTopology):
        inter = tree_topology.intermediate_switches[0]
        racks = tree_topology.racks_under_intermediate(inter)
        server = tree_topology.servers_in_rack(racks[0])[0]
        broker = tree_topology.broker_for_rack(racks[1])
        assert tree_topology.origin_of(server, broker) == racks[1]

    def test_origin_across_intermediates_is_intermediate(self, tree_topology: TreeTopology):
        inter_a, inter_b = tree_topology.intermediate_switches[:2]
        server = tree_topology.servers_in_rack(tree_topology.racks_under_intermediate(inter_a)[0])[0]
        broker = tree_topology.broker_for_rack(tree_topology.racks_under_intermediate(inter_b)[0])
        assert tree_topology.origin_of(server, broker) == inter_b

    def test_origin_regions_count(self, tree_topology: TreeTopology):
        # n sibling racks + (m - 1) other intermediates (paper section 3.2).
        spec = tree_topology.spec
        server = tree_topology.servers[0].index
        regions = tree_topology.origin_regions(server)
        assert len(regions) == spec.racks_per_intermediate + spec.intermediate_switches - 1

    def test_origin_regions_cover_all_origins(self, tree_topology: TreeTopology):
        server = tree_topology.servers[0].index
        regions = set(tree_topology.origin_regions(server))
        for broker in tree_topology.brokers:
            assert tree_topology.origin_of(server, broker.index) in regions

    def test_cost_from_own_rack_is_one(self, tree_topology: TreeTopology):
        server = tree_topology.servers[0].index
        rack = tree_topology.rack_of(server)
        assert tree_topology.cost_from_origin(rack, server) == 1

    def test_cost_from_sibling_rack_is_three(self, tree_topology: TreeTopology):
        inter = tree_topology.intermediate_switches[0]
        racks = tree_topology.racks_under_intermediate(inter)
        server = tree_topology.servers_in_rack(racks[0])[0]
        assert tree_topology.cost_from_origin(racks[1], server) == 3

    def test_cost_from_other_intermediate_is_five(self, tree_topology: TreeTopology):
        inter_a, inter_b = tree_topology.intermediate_switches[:2]
        server = tree_topology.servers_in_rack(tree_topology.racks_under_intermediate(inter_a)[0])[0]
        assert tree_topology.cost_from_origin(inter_b, server) == 5

    def test_cost_from_own_intermediate_is_three(self, tree_topology: TreeTopology):
        inter = tree_topology.intermediate_switches[0]
        server = tree_topology.servers_in_rack(tree_topology.racks_under_intermediate(inter)[0])[0]
        assert tree_topology.cost_from_origin(inter, server) == 3

    def test_cost_rejects_top_switch_origin(self, tree_topology: TreeTopology):
        with pytest.raises(TopologyError):
            tree_topology.cost_from_origin(
                tree_topology.top_switch_index, tree_topology.servers[0].index
            )


class TestStructure:
    def test_servers_under_rack(self, tree_topology: TreeTopology):
        rack = tree_topology.rack_switches[0]
        servers = tree_topology.servers_under(rack)
        assert len(servers) == tree_topology.spec.servers_per_rack

    def test_servers_under_top_is_everything(self, tree_topology: TreeTopology):
        servers = tree_topology.servers_under(tree_topology.top_switch_index)
        assert len(servers) == len(tree_topology.servers)

    def test_brokers_under_intermediate(self, tree_topology: TreeTopology):
        inter = tree_topology.intermediate_switches[0]
        brokers = tree_topology.brokers_under(inter)
        expected = tree_topology.spec.racks_per_intermediate * tree_topology.spec.brokers_per_rack
        assert len(brokers) == expected

    def test_broker_for_rack_is_in_rack(self, tree_topology: TreeTopology):
        rack = tree_topology.rack_switches[0]
        broker = tree_topology.broker_for_rack(rack)
        assert tree_topology.rack_of(broker) == rack

    def test_level_of(self, tree_topology: TreeTopology):
        assert tree_topology.level_of(tree_topology.top_switch_index) == "top"
        assert tree_topology.level_of(tree_topology.intermediate_switches[0]) == "intermediate"
        assert tree_topology.level_of(tree_topology.rack_switches[0]) == "rack"

    def test_level_of_rejects_leaf(self, tree_topology: TreeTopology):
        with pytest.raises(TopologyError):
            tree_topology.level_of(tree_topology.servers[0].index)

    def test_proxy_broker_for_server_shares_rack(self, tree_topology: TreeTopology):
        server = tree_topology.servers[5].index
        broker = tree_topology.proxy_broker_for_server(server)
        assert tree_topology.rack_of(broker) == tree_topology.rack_of(server)
        assert tree_topology.devices[broker].kind is DeviceKind.BROKER
