"""Activity profiles: columnar profiling, sidecar cache, analytic models,
and the weighted-balance property of the k-way partitioner.

The analytic profiles are validated against the ground truth the profiler
extracts from the generated streams — totals match the generators' event
budgets, and ranks correlate (the analytic model orders users like the
events actually drawn).  The property tests pin the two contracts the
activity-weighted sharding path leans on: weighted ``balance_ratio`` honours
the documented tolerance bound on arbitrary weighted graphs, and analytic ≈
profiled holds across seeds, not just the ones unit tests happen to use.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partitioning.kway import partition_kway
from repro.partitioning.quality import part_weights
from repro.partitioning.sharding import assign_user_shards
from repro.runtime.spec import WorkloadSpec
from repro.socialgraph.generators import dataset_preset, generate_social_graph
from repro.workload.activity import (
    ActivityProfile,
    activity_cache_path,
    activity_for_spec,
    analytic_activity,
    profile_stream,
    profile_trace,
)
from repro.workload.io import write_trace
from repro.workload.stream import (
    KIND_EDGE_ADD,
    KIND_EDGE_REMOVE,
    KIND_READ,
    KIND_WRITE,
    NO_AUX,
    EventStream,
)


def small_graph(users: int = 100, seed: int = 3):
    return generate_social_graph(dataset_preset("facebook", users=users), seed=seed)


def spearman(a: dict[int, float], b: dict[int, float]) -> float:
    """Spearman rank correlation over the union of keys (ties by user id)."""
    users = sorted(set(a) | set(b))

    def ranks(mapping):
        order = sorted(users, key=lambda u: (mapping.get(u, 0.0), u))
        return {user: index for index, user in enumerate(order)}

    rank_a, rank_b = ranks(a), ranks(b)
    mean = (len(users) - 1) / 2
    cov = sum((rank_a[u] - mean) * (rank_b[u] - mean) for u in users)
    var = sum((rank_a[u] - mean) ** 2 for u in users)
    return cov / var


# ---------------------------------------------------------------------------
# Columnar profiler
# ---------------------------------------------------------------------------
class TestProfileStream:
    def test_counts_reads_and_writes_per_user(self):
        rows = [
            (KIND_WRITE, 1.0, 7, NO_AUX),
            (KIND_READ, 2.0, 7, NO_AUX),
            (KIND_READ, 3.0, 9, NO_AUX),
            (KIND_READ, 4.0, 7, NO_AUX),
        ]
        profile = profile_stream(EventStream.from_rows(rows))
        assert profile.rates == {7: 3.0, 9: 1.0}
        assert profile.source == "profiled"
        assert profile.total == 4.0
        assert profile.rate_of(7) == 3.0
        assert profile.rate_of(999) == 0.0

    def test_edge_events_are_excluded(self):
        """Edge mutations name a follower in the users column but cost the
        decision plane (replicated), not the measurement plane — the mixed
        chunk path must filter them out."""
        rows = [
            (KIND_WRITE, 1.0, 7, NO_AUX),
            (KIND_EDGE_ADD, 2.0, 5, 7),
            (KIND_READ, 3.0, 5, NO_AUX),
            (KIND_EDGE_REMOVE, 4.0, 5, 7),
        ]
        profile = profile_stream(EventStream.from_rows(rows))
        assert profile.rates == {7: 1.0, 5: 1.0}

    def test_matches_per_event_count_on_generated_stream(self):
        spec = WorkloadSpec.of("synthetic", days=0.5, seed=11)
        stream, _ = spec.build_stream(small_graph())
        profile = profile_stream(stream)
        expected: dict[int, float] = {}
        for chunk in stream.chunks():
            for kind, _, user, _ in chunk.rows():
                if kind <= KIND_WRITE:
                    expected[user] = expected.get(user, 0.0) + 1.0
        assert profile.rates == expected


# ---------------------------------------------------------------------------
# Trace sidecar cache
# ---------------------------------------------------------------------------
class TestTraceCache:
    def write_test_trace(self, tmp_path, seed: int = 11):
        spec = WorkloadSpec.of("synthetic", days=0.5, seed=seed)
        stream, _ = spec.build_stream(small_graph())
        path = tmp_path / "trace.bin"
        write_trace(path, stream)
        return path

    def test_cache_hit_after_first_profile(self, tmp_path):
        path = self.write_test_trace(tmp_path)
        first = profile_trace(path)
        assert first.source == "profiled"
        assert activity_cache_path(path).exists()
        second = profile_trace(path)
        assert second.source == "cache"
        assert second.rates == first.rates

    def test_rewritten_trace_invalidates_cache(self, tmp_path):
        path = self.write_test_trace(tmp_path, seed=11)
        profile_trace(path)
        path_two = self.write_test_trace(tmp_path, seed=12)
        assert path_two == path  # same file, new bytes
        fresh = profile_trace(path)
        assert fresh.source == "profiled"  # content hash mismatch = miss

    def test_malformed_sidecar_reads_as_miss(self, tmp_path):
        path = self.write_test_trace(tmp_path)
        reference = profile_trace(path, cache=False)
        activity_cache_path(path).write_text("not json {")
        profile = profile_trace(path)
        assert profile.source == "profiled"
        assert profile.rates == reference.rates

    def test_sidecar_version_mismatch_reads_as_miss(self, tmp_path):
        path = self.write_test_trace(tmp_path)
        profile_trace(path)
        sidecar = activity_cache_path(path)
        payload = json.loads(sidecar.read_text())
        payload["version"] = -1
        sidecar.write_text(json.dumps(payload))
        assert profile_trace(path).source == "profiled"

    def test_cache_false_never_touches_sidecar(self, tmp_path):
        path = self.write_test_trace(tmp_path)
        profile_trace(path, cache=False)
        assert not activity_cache_path(path).exists()


# ---------------------------------------------------------------------------
# Analytic models
# ---------------------------------------------------------------------------
ANALYTIC_KINDS = (
    ("synthetic", {}),
    ("trace", {}),
    ("pareto_burst", {}),
    ("celebrity_storm", {"celebrities": 2}),
)


class TestAnalyticActivity:
    @pytest.mark.parametrize("kind,params", ANALYTIC_KINDS)
    def test_total_matches_generated_event_count(self, kind, params):
        """The analytic profile's mass is the generator's event budget."""
        graph = small_graph()
        spec = WorkloadSpec.of(kind, days=2.0, seed=5, **params)
        profile = analytic_activity(graph, spec)
        assert profile is not None and profile.source == "analytic"
        stream, _ = spec.build_stream(graph)
        generated = profile_stream(stream).total
        assert profile.total == pytest.approx(generated, rel=0.01)

    @pytest.mark.parametrize("kind,params", ANALYTIC_KINDS)
    def test_covers_every_graph_user(self, kind, params):
        graph = small_graph()
        profile = analytic_activity(
            graph, WorkloadSpec.of(kind, days=1.0, seed=5, **params)
        )
        assert set(profile.rates) == set(graph.users)

    def test_synthetic_ranks_converge_with_event_budget(self):
        """With enough draws the empirical per-user counts order like the
        analytic expectation (sampling noise shrinks as 1/sqrt(n))."""
        graph = small_graph(users=220)
        spec = WorkloadSpec.of(
            "synthetic", days=20.0, seed=5, writes_per_user_per_day=4.0
        )
        profile = analytic_activity(graph, spec)
        stream, _ = spec.build_stream(graph)
        measured = profile_stream(stream)
        assert spearman(profile.rates, measured.rates) > 0.7

    def test_file_kind_has_no_analytic_model(self, tmp_path):
        spec = WorkloadSpec.of("synthetic", days=0.5, seed=11)
        graph = small_graph()
        stream, _ = spec.build_stream(graph)
        path = tmp_path / "trace.bin"
        write_trace(path, stream)
        file_spec = WorkloadSpec.from_file(path)
        assert analytic_activity(graph, file_spec) is None

    def test_activity_for_spec_dispatch(self, tmp_path):
        graph = small_graph()
        generated = activity_for_spec(
            WorkloadSpec.of("synthetic", days=0.5, seed=11), graph
        )
        assert generated.source == "analytic"
        spec = WorkloadSpec.of("synthetic", days=0.5, seed=11)
        stream, _ = spec.build_stream(graph)
        path = tmp_path / "trace.bin"
        write_trace(path, stream)
        profiled = activity_for_spec(WorkloadSpec.from_file(path), graph)
        assert profiled.source == "profiled"
        assert profiled.rates == profile_stream(stream).rates
        # And a second call is served from the sidecar.
        assert activity_for_spec(WorkloadSpec.from_file(path), graph).source == "cache"


# ---------------------------------------------------------------------------
# Degenerate profiles at the sharding boundary
# ---------------------------------------------------------------------------
class TestDegenerateProfiles:
    def test_zero_activity_falls_back_to_population(self):
        graph = small_graph()
        profile = ActivityProfile(rates={user: 0.0 for user in graph.users})
        weighted = assign_user_shards(graph, 3, activity=profile)
        plain = assign_user_shards(graph, 3)
        assert weighted.shard_map == plain.shard_map
        assert weighted.weighted_populations is None

    def test_negative_rates_fall_back_to_population(self):
        graph = small_graph()
        rates = {user: 1.0 for user in graph.users}
        rates[next(iter(graph.users))] = -5.0
        assert (
            assign_user_shards(graph, 3, activity=rates).shard_map
            == assign_user_shards(graph, 3).shard_map
        )

    def test_plain_mapping_accepted(self):
        graph = small_graph()
        rates = {user: float(1 + graph.in_degree(user)) for user in graph.users}
        assignment = assign_user_shards(graph, 3, activity=rates)
        assert assignment.weighted_populations is not None
        assert len(assignment.weighted_populations) == 3
        assert assignment.weighted_imbalance >= 1.0


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------
@st.composite
def weighted_graphs(draw):
    """A random symmetric weighted graph plus heavy-tailed node weights."""
    size = draw(st.integers(min_value=8, max_value=36))
    adjacency: dict[int, dict[int, int]] = {node: {} for node in range(size)}
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, size - 1),
                st.integers(0, size - 1),
                st.integers(1, 5),
            ),
            max_size=size * 3,
        )
    )
    for left, right, weight in edges:
        if left == right:
            continue
        adjacency[left][right] = weight
        adjacency[right][left] = weight
    weights = {
        node: draw(
            st.floats(min_value=0.01, max_value=50.0, allow_nan=False)
        )
        for node in range(size)
    }
    parts = draw(st.integers(min_value=2, max_value=4))
    return adjacency, weights, parts


@given(data=weighted_graphs())
@settings(max_examples=60, deadline=None)
def test_weighted_partition_respects_tolerance_bound(data):
    """``rebalance_partition``'s documented guarantee: the heaviest part is
    bounded by ``ideal * tolerance + max(node weight)`` on any input."""
    adjacency, weights, parts = data
    result = partition_kway(adjacency, parts=parts, seed=3, node_weights=weights)
    loads = part_weights(result.assignment, parts, node_weights=weights)
    ideal = sum(weights.values()) / parts
    assert max(loads) <= ideal * 1.05 + max(weights.values()) + 1e-9


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    kind=st.sampled_from(["trace", "celebrity_storm"]),
)
@settings(max_examples=15, deadline=None)
def test_analytic_tracks_profiled_ranks(seed, kind):
    """Analytic ≈ profiled on skewed workloads, for arbitrary seeds: the
    users the analytic model calls hot are the ones the events hit."""
    graph = small_graph(users=100, seed=seed % 4)
    params = {"celebrities": 2} if kind == "celebrity_storm" else {}
    spec = WorkloadSpec.of(kind, days=2.0, seed=seed, **params)
    profile = analytic_activity(graph, spec)
    stream, _ = spec.build_stream(graph)
    measured = profile_stream(stream)
    assert profile.total == pytest.approx(measured.total, rel=0.01)
    assert spearman(profile.rates, measured.rates) > 0.4
