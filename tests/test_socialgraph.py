"""Tests for the social graph data structure, generators, IO and mutations."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import WorkloadError
from repro.socialgraph.generators import (
    dataset_preset,
    facebook_like,
    generate_social_graph,
    graph_statistics,
    twitter_like,
)
from repro.socialgraph.graph import SocialGraph
from repro.socialgraph.io import load_edge_list, save_edge_list
from repro.socialgraph.mutations import (
    apply_mutation,
    flash_event_mutations,
    random_new_followers,
)


class TestSocialGraph:
    def test_add_edge_creates_users(self):
        graph = SocialGraph()
        assert graph.add_edge(1, 2)
        assert graph.has_user(1) and graph.has_user(2)
        assert graph.num_edges == 1

    def test_duplicate_edge_is_ignored(self):
        graph = SocialGraph()
        graph.add_edge(1, 2)
        assert not graph.add_edge(1, 2)
        assert graph.num_edges == 1

    def test_self_follow_rejected(self):
        graph = SocialGraph()
        with pytest.raises(WorkloadError):
            graph.add_edge(3, 3)

    def test_following_and_followers_are_consistent(self, tiny_graph: SocialGraph):
        for follower, followee in tiny_graph.edges():
            assert followee in tiny_graph.following(follower)
            assert follower in tiny_graph.followers(followee)

    def test_degrees(self, tiny_graph: SocialGraph):
        assert tiny_graph.out_degree(0) == 2
        assert tiny_graph.in_degree(2) == 2

    def test_remove_edge(self, tiny_graph: SocialGraph):
        assert tiny_graph.remove_edge(0, 1)
        assert not tiny_graph.has_edge(0, 1)
        assert not tiny_graph.remove_edge(0, 1)

    def test_remove_edge_updates_counts(self, tiny_graph: SocialGraph):
        before = tiny_graph.num_edges
        tiny_graph.remove_edge(0, 1)
        assert tiny_graph.num_edges == before - 1

    def test_unknown_user_raises(self):
        graph = SocialGraph()
        with pytest.raises(WorkloadError):
            graph.following(42)

    def test_undirected_adjacency_weights_reciprocal_edges(self):
        graph = SocialGraph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 1)
        graph.add_edge(1, 3)
        adjacency = graph.undirected_adjacency()
        assert adjacency[1][2] == 2
        assert adjacency[1][3] == 1
        assert adjacency[3][1] == 1

    def test_copy_is_independent(self, tiny_graph: SocialGraph):
        clone = tiny_graph.copy()
        clone.add_edge(0, 5)
        assert not tiny_graph.has_edge(0, 5)
        assert clone.num_edges == tiny_graph.num_edges + 1

    def test_contains_and_len(self, tiny_graph: SocialGraph):
        assert 0 in tiny_graph
        assert 99 not in tiny_graph
        assert len(tiny_graph) == 6


class TestGenerators:
    def test_generated_size_matches_request(self):
        graph = facebook_like(users=300, seed=2)
        assert graph.num_users == 300
        # Average degree of the preset is ~15.7; allow generous tolerance.
        assert graph.num_edges > 300 * 5

    def test_every_user_follows_someone(self):
        graph = twitter_like(users=200, seed=4)
        assert all(graph.out_degree(user) > 0 for user in graph.users)

    def test_generation_is_deterministic(self):
        a = facebook_like(users=150, seed=9)
        b = facebook_like(users=150, seed=9)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_different_seeds_differ(self):
        a = facebook_like(users=150, seed=1)
        b = facebook_like(users=150, seed=2)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_preset_scaling_preserves_density(self):
        preset = dataset_preset("twitter", users=1000)
        assert preset.users == 1000
        assert preset.average_out_degree == pytest.approx(2.9)

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            dataset_preset("myspace")

    def test_degree_distribution_is_skewed(self):
        graph = twitter_like(users=500, seed=3)
        stats = graph_statistics(graph)
        assert stats["max_in_degree"] > 4 * stats["avg_out_degree"]

    def test_statistics_keys(self):
        stats = graph_statistics(facebook_like(users=100, seed=1))
        assert {"users", "edges", "avg_out_degree", "max_in_degree"} <= set(stats)

    def test_empty_spec(self):
        spec = dataset_preset("twitter", users=1)
        graph = generate_social_graph(spec, seed=1)
        assert graph.num_users == 1
        assert graph.num_edges == 0


class TestIO:
    def test_round_trip(self, tmp_path, tiny_graph: SocialGraph):
        path = tmp_path / "edges.tsv"
        written = save_edge_list(tiny_graph, path)
        assert written == tiny_graph.num_edges
        loaded = load_edge_list(path)
        assert sorted(loaded.edges()) == sorted(tiny_graph.edges())

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(WorkloadError):
            load_edge_list(tmp_path / "nope.tsv")

    def test_load_skips_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# comment\n\n1 2\n2 3\n")
        graph = load_edge_list(path)
        assert graph.num_edges == 2

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 two\n")
        with pytest.raises(WorkloadError):
            load_edge_list(path)

    def test_load_rejects_short_lines(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("42\n")
        with pytest.raises(WorkloadError):
            load_edge_list(path)


class TestMutations:
    def test_random_new_followers_excludes_existing(self, tiny_graph: SocialGraph, rng: random.Random):
        pairs = random_new_followers(tiny_graph, 2, count=10, rng=rng)
        followers = {f for f, _ in pairs}
        assert 2 not in followers
        assert followers.isdisjoint(tiny_graph.followers(2))

    def test_flash_event_mutations_symmetry(self, tiny_graph: SocialGraph, rng: random.Random):
        mutations = flash_event_mutations(
            tiny_graph, target_user=5, new_followers=3, start_time=10.0, end_time=20.0, rng=rng
        )
        additions = [m for m in mutations if m.add]
        removals = [m for m in mutations if not m.add]
        assert len(additions) == len(removals)
        assert {(m.follower, m.followee) for m in additions} == {
            (m.follower, m.followee) for m in removals
        }

    def test_apply_mutation(self, tiny_graph: SocialGraph, rng: random.Random):
        mutations = flash_event_mutations(
            tiny_graph, target_user=5, new_followers=2, start_time=0.0, end_time=1.0, rng=rng
        )
        additions = [m for m in mutations if m.add]
        for mutation in additions:
            assert apply_mutation(tiny_graph, mutation)
        for mutation in additions:
            assert not apply_mutation(tiny_graph, mutation)
