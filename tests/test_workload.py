"""Tests for request logs and the synthetic / trace / flash workload generators."""

from __future__ import annotations

import random

import pytest

from repro.constants import DAY
from repro.exceptions import WorkloadError
from repro.socialgraph.generators import facebook_like
from repro.workload.flash import inject_flash_event, plan_flash_event
from repro.workload.requests import (
    EdgeAdded,
    EdgeRemoved,
    ReadRequest,
    RequestLog,
    WriteRequest,
)
from repro.workload.synthetic import SyntheticWorkloadConfig, SyntheticWorkloadGenerator
from repro.workload.trace import NewsActivityTraceConfig, NewsActivityTraceGenerator


class TestRequestLog:
    def test_append_enforces_time_order(self):
        log = RequestLog()
        log.append(ReadRequest(10.0, 1))
        with pytest.raises(WorkloadError):
            log.append(WriteRequest(5.0, 2))

    def test_counts(self):
        log = RequestLog()
        log.append(WriteRequest(1.0, 1))
        log.append(ReadRequest(2.0, 2))
        log.append(EdgeAdded(3.0, 1, 2))
        log.append(EdgeRemoved(4.0, 1, 2))
        assert log.read_count == 1
        assert log.write_count == 1
        assert log.mutation_count == 2
        assert len(log) == 4

    def test_duration(self):
        log = RequestLog()
        log.append(ReadRequest(10.0, 1))
        log.append(ReadRequest(70.0, 1))
        assert log.duration == 60.0
        assert RequestLog().duration == 0.0

    def test_requests_per_day(self):
        log = RequestLog()
        log.append(ReadRequest(0.5 * DAY, 1))
        log.append(WriteRequest(1.5 * DAY, 1))
        log.append(ReadRequest(1.6 * DAY, 2))
        per_day = log.requests_per_day()
        assert per_day[0] == {"reads": 1, "writes": 0}
        assert per_day[1] == {"reads": 1, "writes": 1}

    def test_merged_with_sorts_unsorted_hand_built_logs(self):
        a = RequestLog()
        a.requests = [ReadRequest(5.0, 1), ReadRequest(1.0, 2)]  # hand-built, unsorted
        b = RequestLog()
        b.append(WriteRequest(3.0, 3))
        merged = a.merged_with(b)
        merged.validate()
        assert len(merged) == 3

    def test_merged_with_keeps_order(self):
        a = RequestLog()
        a.append(ReadRequest(1.0, 1))
        a.append(ReadRequest(5.0, 1))
        b = RequestLog()
        b.append(WriteRequest(3.0, 2))
        merged = a.merged_with(b)
        timestamps = [r.timestamp for r in merged]
        assert timestamps == sorted(timestamps)
        assert len(merged) == 3

    def test_slice_time(self):
        log = RequestLog()
        for t in (1.0, 2.0, 3.0, 4.0):
            log.append(ReadRequest(t, 1))
        sliced = log.slice_time(2.0, 4.0)
        assert [r.timestamp for r in sliced] == [2.0, 3.0]

    def test_validate_detects_disorder(self):
        log = RequestLog()
        log.requests = [ReadRequest(5.0, 1), ReadRequest(1.0, 2)]
        with pytest.raises(WorkloadError):
            log.validate()


class TestSyntheticWorkload:
    @pytest.fixture
    def graph(self):
        return facebook_like(users=200, seed=2)

    def test_read_write_ratio(self, graph):
        generator = SyntheticWorkloadGenerator(
            graph, SyntheticWorkloadConfig(days=1.0, seed=3)
        )
        log = generator.generate()
        assert log.write_count == pytest.approx(graph.num_users, rel=0.05)
        assert log.read_count == pytest.approx(4 * log.write_count, rel=0.05)

    def test_log_is_time_ordered_and_bounded(self, graph):
        log = SyntheticWorkloadGenerator(
            graph, SyntheticWorkloadConfig(days=2.0, seed=3)
        ).generate()
        log.validate()
        assert all(0.0 <= r.timestamp <= 2.0 * DAY for r in log)

    def test_deterministic(self, graph):
        config = SyntheticWorkloadConfig(days=0.5, seed=8)
        a = SyntheticWorkloadGenerator(graph, config).generate()
        b = SyntheticWorkloadGenerator(graph, config).generate()
        assert [(r.timestamp, type(r).__name__, r.user) for r in a] == [
            (r.timestamp, type(r).__name__, r.user) for r in b
        ]

    def test_active_users_read_more(self, graph):
        generator = SyntheticWorkloadGenerator(graph, SyntheticWorkloadConfig(days=1.0, seed=3))
        weights = generator.read_weights()
        most_social = max(graph.users, key=graph.out_degree)
        least_social = min(graph.users, key=graph.out_degree)
        assert weights[most_social] >= weights[least_social]

    def test_empty_graph(self):
        from repro.socialgraph.graph import SocialGraph

        log = SyntheticWorkloadGenerator(SocialGraph()).generate()
        assert len(log) == 0

    def test_rejects_bad_config(self):
        with pytest.raises(WorkloadError):
            SyntheticWorkloadConfig(days=0.0)


class TestNewsActivityTrace:
    @pytest.fixture
    def graph(self):
        return facebook_like(users=200, seed=4)

    def test_trace_is_write_heavy(self, graph):
        log = NewsActivityTraceGenerator(
            graph, NewsActivityTraceConfig(days=3.0, writes_per_user=2.0, seed=5)
        ).generate()
        assert log.write_count > log.read_count

    def test_trace_spans_requested_days(self, graph):
        config = NewsActivityTraceConfig(days=3.0, writes_per_user=2.0, seed=5)
        log = NewsActivityTraceGenerator(graph, config).generate()
        log.validate()
        days_touched = {int(r.timestamp // DAY) for r in log}
        assert max(days_touched) <= 2
        assert len(days_touched) >= 2

    def test_rank_mapping_gives_heaviest_activity_to_best_connected(self, graph):
        generator = NewsActivityTraceGenerator(
            graph, NewsActivityTraceConfig(days=2.0, seed=6)
        )
        profile = generator.activity_profile(random.Random(1))
        ranked = generator.ranked_users()
        assert profile[ranked[0]] >= profile[ranked[-1]]

    def test_deterministic(self, graph):
        config = NewsActivityTraceConfig(days=1.0, writes_per_user=1.0, seed=9)
        a = NewsActivityTraceGenerator(graph, config).generate()
        b = NewsActivityTraceGenerator(graph, config).generate()
        assert len(a) == len(b)
        assert [(r.timestamp, r.user) for r in a[:50]] == [(r.timestamp, r.user) for r in b[:50]]

    def test_rejects_bad_config(self):
        with pytest.raises(WorkloadError):
            NewsActivityTraceConfig(days=-1.0)
        with pytest.raises(WorkloadError):
            NewsActivityTraceConfig(active_fraction=0.0)


class TestFlashEvents:
    @pytest.fixture
    def graph(self):
        return facebook_like(users=150, seed=7)

    def test_plan_picks_new_followers(self, graph):
        rng = random.Random(2)
        spec = plan_flash_event(graph, rng, followers=20, start_day=1.0, end_day=2.0)
        assert len(spec.new_followers) == 20
        existing = graph.followers(spec.target_user)
        assert existing.isdisjoint(spec.new_followers)

    def test_injected_log_contains_mutations_and_reads(self, graph):
        rng = random.Random(3)
        base = SyntheticWorkloadGenerator(
            graph, SyntheticWorkloadConfig(days=3.0, seed=3)
        ).generate()
        spec = plan_flash_event(graph, rng, followers=10, start_day=1.0, end_day=2.0)
        log = inject_flash_event(base, spec, reads_per_follower_per_day=2.0, seed=4)
        log.validate()
        additions = [r for r in log if isinstance(r, EdgeAdded)]
        removals = [r for r in log if isinstance(r, EdgeRemoved)]
        assert len(additions) == 10
        assert len(removals) == 10
        assert log.read_count > base.read_count

    def test_flash_event_times(self, graph):
        rng = random.Random(5)
        spec = plan_flash_event(graph, rng, followers=5, start_day=2.0, end_day=7.0)
        assert spec.start_time == 2.0 * DAY
        assert spec.end_time == 7.0 * DAY

    def test_invalid_window_rejected(self, graph):
        rng = random.Random(6)
        with pytest.raises(WorkloadError):
            plan_flash_event(graph, rng, followers=5, start_day=3.0, end_day=3.0)
