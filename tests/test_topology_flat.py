"""Tests for the flat topology used by the fairness experiment."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.topology.flat import FlatTopology


class TestFlatTopology:
    def test_machines_are_both_servers_and_brokers(self, flat_topology: FlatTopology):
        assert flat_topology.servers == flat_topology.brokers
        assert len(flat_topology.servers) == 10

    def test_single_switch(self, flat_topology: FlatTopology):
        assert len(flat_topology.switches) == 1
        assert flat_topology.level_of(flat_topology.top_switch.index) == "top"

    def test_local_access_crosses_no_switch(self, flat_topology: FlatTopology):
        machine = flat_topology.servers[0].index
        assert flat_topology.path_between(machine, machine) == ()
        assert flat_topology.distance(machine, machine) == 0

    def test_remote_access_crosses_one_switch(self, flat_topology: FlatTopology):
        a = flat_topology.servers[0].index
        b = flat_topology.servers[1].index
        assert flat_topology.distance(a, b) == 1
        assert flat_topology.path_between(a, b) == (flat_topology.top_switch.index,)

    def test_origin_is_the_source_machine(self, flat_topology: FlatTopology):
        a = flat_topology.servers[0].index
        b = flat_topology.servers[1].index
        assert flat_topology.origin_of(a, b) == b

    def test_origin_regions_are_all_machines(self, flat_topology: FlatTopology):
        a = flat_topology.servers[0].index
        assert len(flat_topology.origin_regions(a)) == 10

    def test_cost_from_origin_local_is_zero(self, flat_topology: FlatTopology):
        a = flat_topology.servers[0].index
        assert flat_topology.cost_from_origin(a, a) == 0

    def test_cost_from_origin_remote_is_one(self, flat_topology: FlatTopology):
        a = flat_topology.servers[0].index
        b = flat_topology.servers[1].index
        assert flat_topology.cost_from_origin(a, b) == 1

    def test_servers_under_switch_is_everything(self, flat_topology: FlatTopology):
        under = flat_topology.servers_under(flat_topology.top_switch.index)
        assert len(under) == 10

    def test_servers_under_machine_is_itself(self, flat_topology: FlatTopology):
        a = flat_topology.servers[3].index
        assert flat_topology.servers_under(a) == (a,)

    def test_proxy_broker_is_the_machine_itself(self, flat_topology: FlatTopology):
        a = flat_topology.servers[4].index
        assert flat_topology.proxy_broker_for_server(a) == a

    def test_rack_and_intermediate_collapse_to_switch(self, flat_topology: FlatTopology):
        a = flat_topology.servers[0].index
        assert flat_topology.rack_of(a) == flat_topology.top_switch.index
        assert flat_topology.intermediate_of(a) == flat_topology.top_switch.index

    def test_rejects_out_of_range_leaf(self, flat_topology: FlatTopology):
        with pytest.raises(TopologyError):
            flat_topology.path_between(0, 9999)

    def test_default_spec_matches_paper(self):
        topology = FlatTopology()
        assert len(topology.servers) == 250

    def test_co_located(self, flat_topology: FlatTopology):
        a = flat_topology.servers[0].index
        b = flat_topology.servers[1].index
        assert flat_topology.co_located(a, a)
        assert not flat_topology.co_located(a, b)
