"""Tests for the simulation clock, cluster simulator and runner helpers."""

from __future__ import annotations

import pytest

from repro.baselines.random_placement import RandomPlacement
from repro.config import SimulationConfig
from repro.constants import DAY, HOUR
from repro.core.engine import DynaSoRe
from repro.exceptions import SimulationError
from repro.simulator.clock import SimulationClock
from repro.simulator.engine import ClusterSimulator
from repro.simulator.runner import normalise_results, run_comparison, run_simulation
from repro.socialgraph.generators import facebook_like
from repro.topology.tree import TreeTopology
from repro.workload.requests import EdgeAdded, EdgeRemoved, ReadRequest, RequestLog, WriteRequest


class TestSimulationClock:
    def test_advance_returns_due_ticks(self):
        clock = SimulationClock(tick_period=HOUR)
        due = clock.advance_to(2.5 * HOUR)
        assert due == [HOUR, 2 * HOUR]
        assert clock.now == 2.5 * HOUR

    def test_no_tick_when_advancing_within_period(self):
        clock = SimulationClock(tick_period=HOUR)
        assert clock.advance_to(0.5 * HOUR) == []
        assert clock.advance_to(0.9 * HOUR) == []

    def test_time_never_goes_backwards(self):
        clock = SimulationClock(tick_period=HOUR)
        clock.advance_to(HOUR * 3)
        assert clock.advance_to(HOUR) == []
        assert clock.now == HOUR * 3

    def test_current_day(self):
        clock = SimulationClock()
        clock.advance_to(1.5 * DAY)
        assert clock.current_day == pytest.approx(1.5)

    def test_invalid_tick_period(self):
        with pytest.raises(SimulationError):
            SimulationClock(tick_period=0.0)


def small_scenario():
    graph = facebook_like(users=80, seed=5)
    topology = TreeTopology.__call__ if False else None  # placeholder, unused
    return graph


class TestClusterSimulator:
    @pytest.fixture
    def scenario(self, cluster_spec):
        graph = facebook_like(users=80, seed=5)
        topology = TreeTopology(cluster_spec)
        log = RequestLog()
        users = list(graph.users)
        time = 0.0
        for i in range(200):
            time += 30.0
            user = users[i % len(users)]
            if i % 5 == 0:
                log.append(WriteRequest(time, user))
            else:
                log.append(ReadRequest(time, user))
        return topology, graph, log

    def test_run_counts_requests(self, scenario):
        topology, graph, log = scenario
        simulator = ClusterSimulator(
            topology, graph, RandomPlacement(seed=1), SimulationConfig(extra_memory_pct=0.0)
        )
        result = simulator.run(log)
        assert result.requests_executed == len(log)
        assert result.reads_executed == log.read_count
        assert result.writes_executed == log.write_count
        assert result.top_switch_traffic > 0

    def test_graph_mutations_are_applied(self, scenario):
        topology, graph, _ = scenario
        users = list(graph.users)
        log = RequestLog()
        log.append(EdgeAdded(10.0, users[0], users[5]))
        log.append(ReadRequest(20.0, users[0]))
        log.append(EdgeRemoved(30.0, users[0], users[5]))
        simulator = ClusterSimulator(
            topology, graph, RandomPlacement(seed=1), SimulationConfig(extra_memory_pct=0.0)
        )
        simulator.run(log)
        assert not graph.has_edge(users[0], users[5])

    def test_tracked_view_timeline(self, scenario):
        topology, graph, log = scenario
        simulator = ClusterSimulator(
            topology, graph, DynaSoRe(initializer="random", seed=1),
            SimulationConfig(extra_memory_pct=50.0),
        )
        tracked_user = list(graph.users)[0]
        simulator.track_view(tracked_user)
        result = simulator.run(log)
        timeline = result.tracked_views[tracked_user]
        assert timeline.replica_counts
        assert all(count >= 1 for _, count in timeline.replica_counts)

    def test_tracked_reads_follow_edge_events(self, scenario):
        """The tracked-read counters honour edge churn around the hot view.

        The follower sets of tracked views are maintained incrementally on
        edge events (instead of scanning the reader's following list per
        read), so reads must count exactly while the follow edge exists.
        """
        topology, graph, _ = scenario
        users = list(graph.users)
        target, reader = users[0], users[1]
        # Start from a clean slate: the reader does not follow the target.
        graph.remove_edge(reader, target)

        log = RequestLog()
        log.append(ReadRequest(10.0, reader))  # not following yet: no count
        log.append(EdgeAdded(20.0, reader, target))
        log.append(ReadRequest(30.0, reader))  # following: counts
        log.append(ReadRequest(40.0, reader))  # following: counts
        log.append(EdgeRemoved(50.0, reader, target))
        log.append(ReadRequest(60.0, reader))  # unfollowed again: no count

        simulator = ClusterSimulator(
            topology, graph, DynaSoRe(initializer="random", seed=1),
            SimulationConfig(extra_memory_pct=50.0),
        )
        simulator.track_view(target)
        result = simulator.run(log)
        timeline = result.tracked_views[target]
        # All reads land in the single forced end-of-run sample.
        total_reads = sum(
            reads * count
            for (_, reads), (_, count) in zip(
                timeline.reads_per_replica, timeline.replica_counts
            )
        )
        assert total_reads == pytest.approx(2.0)

    def test_dynasore_run_produces_system_traffic(self, scenario):
        topology, graph, log = scenario
        simulator = ClusterSimulator(
            topology, graph, DynaSoRe(initializer="random", seed=1),
            SimulationConfig(extra_memory_pct=100.0),
        )
        result = simulator.run(log)
        assert result.snapshot.system_by_level.get("top", 0.0) >= 0.0
        assert result.replication_factor >= 1.0

    def test_measure_from_reduces_traffic(self, scenario):
        topology, graph, log = scenario
        full = ClusterSimulator(
            topology, graph.copy(), RandomPlacement(seed=1), SimulationConfig(extra_memory_pct=0.0)
        ).run(log)
        half = ClusterSimulator(
            topology,
            graph.copy(),
            RandomPlacement(seed=1),
            SimulationConfig(extra_memory_pct=0.0, measure_from=log.duration / 2),
        ).run(log)
        assert half.top_switch_traffic < full.top_switch_traffic

    def test_result_summary_and_series(self, scenario):
        topology, graph, log = scenario
        result = ClusterSimulator(
            topology, graph, RandomPlacement(seed=1), SimulationConfig(extra_memory_pct=0.0)
        ).run(log)
        summary = result.summary()
        assert summary["reads"] == log.read_count
        series = result.top_switch_series()
        assert sum(series.values()) == pytest.approx(result.top_switch_traffic)
        split = result.top_switch_series(split=True)
        assert all(len(pair) == 2 for pair in split.values())

    def test_normalised_against(self, scenario):
        topology, graph, log = scenario
        random_result = ClusterSimulator(
            topology, graph.copy(), RandomPlacement(seed=1), SimulationConfig(extra_memory_pct=0.0)
        ).run(log)
        ratios = random_result.normalised_against(random_result)
        assert ratios["top"] == pytest.approx(1.0)


class TestRunner:
    def test_run_comparison_and_normalise(self, ci_profile):
        from repro.experiments.common import (
            graph_factory,
            simulation_config,
            strategy_factories,
            synthetic_log,
            tree_topology_factory,
        )

        graphs = graph_factory(ci_profile, "twitter")
        log = synthetic_log(ci_profile, graphs()).slice_time(0.0, 0.2 * DAY)
        results = run_comparison(
            tree_topology_factory(ci_profile),
            graphs,
            strategy_factories(ci_profile, include=("random", "hmetis")),
            log,
            simulation_config(ci_profile, 0.0),
        )
        assert set(results) == {"random", "hmetis"}
        normalised = normalise_results(results)
        assert normalised["random"] == pytest.approx(1.0)
        assert normalised["hmetis"] <= 1.0

    def test_scenario_run_is_byte_identical_across_runs(self, ci_profile):
        """Same seed + same scenario => byte-identical traffic series.

        Regression guard for the scenario subsystem: all scenario
        randomness must derive from the simulation seed, so repeating a
        crash-and-recover run reproduces every number exactly.
        """
        import json

        from repro.core.engine import DynaSoRe
        from repro.experiments.common import (
            graph_factory,
            simulation_config,
            synthetic_log,
            tree_topology_factory,
        )
        from repro.scenarios import CompositeScenario, CrashRecoverScenario, DiurnalLoadScenario

        graphs = graph_factory(ci_profile, "twitter")
        log = synthetic_log(ci_profile, graphs()).slice_time(0.0, 0.3 * DAY)
        scenario = CompositeScenario(
            DiurnalLoadScenario(trough_fraction=0.5),
            CrashRecoverScenario(
                crash_time=0.1 * DAY, recover_time=0.2 * DAY, count=2
            ),
        )

        def serialise(result):
            return json.dumps(
                {
                    "app": sorted(result.top_series_application.items()),
                    "sys": sorted(result.top_series_system.items()),
                    "top": result.top_switch_traffic,
                    "levels": sorted(result.snapshot.total_by_level.items()),
                    "faults": [
                        (r.timestamp, r.kind, r.position, r.views_from_memory, r.views_from_disk)
                        for r in result.fault_records
                    ],
                    "requests": result.requests_executed,
                },
                sort_keys=True,
            )

        runs = [
            run_simulation(
                tree_topology_factory(ci_profile),
                graphs,
                lambda: DynaSoRe(initializer="random", seed=ci_profile.seed),
                log,
                simulation_config(ci_profile, 50.0),
                scenario=scenario,
            )
            for _ in range(2)
        ]
        assert serialise(runs[0]) == serialise(runs[1])
        assert runs[0].fault_records  # the scenario actually fired

    def test_run_simulation_with_tracked_views(self, ci_profile):
        from repro.experiments.common import (
            graph_factory,
            simulation_config,
            synthetic_log,
            tree_topology_factory,
        )
        from repro.core.engine import DynaSoRe

        graphs = graph_factory(ci_profile, "twitter")
        graph = graphs()
        log = synthetic_log(ci_profile, graph).slice_time(0.0, 0.1 * DAY)
        tracked = graph.users[0]
        result = run_simulation(
            tree_topology_factory(ci_profile),
            graphs,
            lambda: DynaSoRe(initializer="random", seed=1),
            log,
            simulation_config(ci_profile, 50.0),
            tracked_views=(tracked,),
        )
        assert tracked in result.tracked_views
