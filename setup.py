"""Legacy setuptools entry point.

The offline reproduction environment lacks the ``wheel`` package, so PEP 660
editable installs cannot build a wheel; this shim lets
``pip install -e . --no-build-isolation`` fall back to ``setup.py develop``.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
