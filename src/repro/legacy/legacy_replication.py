"""Frozen seed copy of :mod:`repro.core.replication` (parity reference).

Kept verbatim for the legacy object path: the table-backed core modules
have been restructured around integer replica ids, while the legacy engine
must keep executing exactly the seed code.  Do not optimise or refactor.
"""


from __future__ import annotations

from dataclasses import dataclass

from ..store.view import ViewReplica
from ..topology.base import ClusterTopology
from .legacy_utility import profit_estimator


@dataclass(frozen=True)
class ReplicationDecision:
    """Outcome of Algorithm 2 for one replica."""

    #: Target server *position* for the new replica, or None when no
    #: profitable placement was found.
    target_position: int | None
    profit: float

    @property
    def should_replicate(self) -> bool:
        """True when a new replica should be requested."""
        return self.target_position is not None


def origin_candidates(
    replica: ViewReplica,
    replica_device: int,
    least_loaded_server_under,
    device_of_position,
    position_available=None,
) -> list[tuple[int, int, int]]:
    """Per-origin placement candidates shared by Algorithms 2 and 3.

    For every origin that reads the view, resolve the least-loaded available
    server under that origin (skipping the replica's own server).  Returns
    ``(origin, candidate_position, candidate_device)`` triples.  Both
    algorithms iterate exactly this list, so the engine computes it once per
    evaluated request instead of twice.
    """
    candidates: list[tuple[int, int, int]] = []
    user = replica.user
    for origin in replica.stats.reads_by_origin():
        candidate_position = least_loaded_server_under(origin, user)
        if candidate_position is None:
            continue
        if position_available is not None and not position_available(candidate_position):
            continue
        candidate_device = device_of_position(candidate_position)
        if candidate_device == replica_device:
            continue
        candidates.append((origin, candidate_position, candidate_device))
    return candidates


def evaluate_replica_creation(
    topology: ClusterTopology,
    replica: ViewReplica,
    replica_device: int,
    write_broker: int | None,
    least_loaded_server_under,
    admission_threshold_under,
    device_of_position,
    position_available=None,
    candidates: list[tuple[int, int, int]] | None = None,
) -> ReplicationDecision:
    """Run Algorithm 2 for one replica.

    Parameters
    ----------
    topology:
        Cluster topology.
    replica:
        The replica that just served a request (its statistics drive the
        decision).
    replica_device:
        Leaf device index of the server storing ``replica``.
    write_broker:
        Broker hosting the view's write proxy (prices the update traffic of
        the prospective replica).
    least_loaded_server_under:
        Callable ``(origin, user) -> position | None`` returning the
        least-loaded storage-server position under an origin switch that does
        not already store the user's view.
    admission_threshold_under:
        Callable ``(origin) -> float`` returning the lowest admission
        threshold among the servers under an origin switch (the thresholds a
        broker learns through piggybacking).
    device_of_position:
        Callable ``(position) -> leaf device index``.
    position_available:
        Optional callable ``(position) -> bool``; candidates for which it
        returns False are skipped.  The engine passes its server up/down
        mask here so replicas are never created on a crashed or drained
        server, even if a caller's candidate source lags behind a fault.
    candidates:
        Optional precomputed result of :func:`origin_candidates`; when
        omitted it is computed here.
    """
    if candidates is None:
        candidates = origin_candidates(
            replica,
            replica_device,
            least_loaded_server_under,
            device_of_position,
            position_available,
        )
    best_profit = 0.0
    best_position: int | None = None
    estimate = None
    profits: dict[int, float] = {}
    for origin, candidate_position, candidate_device in candidates:
        profit = profits.get(candidate_device)
        if profit is None:
            if estimate is None:
                estimate = profit_estimator(
                    topology, replica.stats, replica_device, write_broker
                )
            profit = estimate(candidate_device)
            profits[candidate_device] = profit
        threshold = admission_threshold_under(origin)
        if profit > threshold and profit > best_profit:
            best_position = candidate_position
            best_profit = profit
    return ReplicationDecision(target_position=best_position, profit=best_profit)


__all__ = ["ReplicationDecision", "evaluate_replica_creation", "origin_candidates"]
