"""Frozen seed copies of the static baselines (parity reference).

The dict-recomputing ``StaticPlacementStrategy`` exactly as it existed
before the flat per-position load tables, plus thin Random/METIS/hMETIS
subclasses wired to the shared assignment functions.  Used only by the
golden parity suite and the strategy benchmarks; do not optimise or
refactor — its value is that it never changes.
"""

from __future__ import annotations

from abc import abstractmethod

from ..baselines.base import PlacementStrategy
from ..baselines.hmetis_placement import hmetis_assignment
from ..baselines.metis_placement import metis_assignment
from ..baselines.random_placement import random_assignment
from ..exceptions import SimulationError
from ..persistence.recovery import RecoveryPlan
from ..traffic.messages import MessageKind


class LegacyStaticPlacementStrategy(PlacementStrategy):
    """Shared behaviour of the static baselines (Random, METIS, hMETIS).

    A static strategy stores exactly one replica per view, never changes the
    placement during the run, and deploys both proxies of a user on the
    broker associated with the server holding her view (paper section 4.1).
    """

    def __init__(self) -> None:
        super().__init__()
        #: user -> storage-server position (0 .. num_servers - 1)
        self._assignment: dict[int, int] = {}
        #: server positions currently out of service
        self._down_positions: set[int] = set()

    # ----------------------------------------------------------- assignment
    @abstractmethod
    def compute_assignment(self) -> dict[int, int]:
        """Return the user → server-position assignment for the bound graph."""

    def build_initial_placement(self) -> None:
        self.require_bound()
        self._assignment = dict(self.compute_assignment())
        missing = set(self.graph.users) - set(self._assignment)
        if missing:
            raise SimulationError(
                f"{self.name} assignment misses {len(missing)} users"
            )

    def assignment(self) -> dict[int, int]:
        """Copy of the user → server-position assignment."""
        return dict(self._assignment)

    def server_position_of(self, user: int) -> int:
        """Server position of a user's (single) replica, assigning lazily for
        users that joined after the initial placement."""
        position = self._assignment.get(user)
        if position is None:
            position = self._least_loaded_position()
            self._assignment[user] = position
        return position

    def _least_loaded_position(self) -> int:
        assert self.topology is not None
        loads: dict[int, int] = {
            i: 0
            for i in range(len(self.topology.servers))
            if i not in self._down_positions
        }
        for position in self._assignment.values():
            if position in loads:
                loads[position] += 1
        if not loads:
            raise SimulationError("no storage server is available")
        return min(loads, key=lambda p: (loads[p], p))

    # ---------------------------------------------------------------- faults
    def on_server_down(
        self, position: int, now: float, graceful: bool = False
    ) -> RecoveryPlan:
        """Re-place every view of the departed server on the survivors.

        Static strategies keep a single replica per view, so a crash always
        goes through the persistent store (slow path): the new host's rack
        broker fetches each lost view with a :data:`REPLICA_COPY` message.
        A graceful drain copies views directly from the leaving server.
        """
        self.require_bound()
        assert self.topology is not None and self.accountant is not None
        servers = len(self.topology.servers)
        self._begin_server_down(position, self._down_positions, servers)

        plan = RecoveryPlan(crashed_server=position)
        loads: dict[int, int] = {
            i: 0 for i in range(servers) if i not in self._down_positions
        }
        for assigned in self._assignment.values():
            if assigned in loads:
                loads[assigned] += 1
        source_device = self.server_device(position)
        for user, assigned in self._assignment.items():
            if assigned != position:
                continue
            target = min(loads, key=lambda p: (loads[p], p))
            loads[target] += 1
            self._assignment[user] = target
            target_device = self.server_device(target)
            if graceful:
                plan.recoverable_from_memory.append(user)
                source = source_device
            else:
                plan.recoverable_from_disk.append(user)
                source = self.topology.proxy_broker_for_server(target_device)
            self.accountant.record(
                source, target_device, MessageKind.REPLICA_COPY, now
            )
        return plan

    def on_server_up(self, position: int, now: float) -> None:
        self._begin_server_up(position, self._down_positions)

    # -------------------------------------------------------------- proxies
    def proxy_broker(self, user: int) -> int:
        """Broker hosting both proxies of a user (rack of her view)."""
        assert self.topology is not None
        server = self.server_device(self.server_position_of(user))
        return self.topology.proxy_broker_for_server(server)

    # ------------------------------------------------------------ execution
    def execute_read(
        self, user: int, now: float, targets: tuple[int, ...] | None = None
    ) -> None:
        self.require_bound()
        assert self.graph is not None and self.accountant is not None
        if targets is None:
            if not self.graph.has_user(user):
                return
            targets = tuple(self.graph.following(user))
        broker = self.proxy_broker(user)
        for target in targets:
            server = self.server_device(self.server_position_of(target))
            self.accountant.record_roundtrip(
                broker, server, MessageKind.READ_REQUEST, MessageKind.READ_RESPONSE, now
            )

    def execute_write(self, user: int, now: float) -> None:
        self.require_bound()
        assert self.accountant is not None
        broker = self.proxy_broker(user)
        server = self.server_device(self.server_position_of(user))
        self.accountant.record_roundtrip(
            broker, server, MessageKind.WRITE_UPDATE, MessageKind.WRITE_ACK, now
        )

    # -------------------------------------------------------- introspection
    def replica_locations(self) -> dict[int, set[int]]:
        return {
            user: {self.server_device(position)}
            for user, position in self._assignment.items()
        }

    def replica_count(self, user: int) -> int:
        return 1 if user in self._assignment else 0


class LegacyRandomPlacement(LegacyStaticPlacementStrategy):
    """Seed random baseline on the seed static execution engine."""

    name = "random"

    def __init__(self, seed: int = 7) -> None:
        super().__init__()
        self.seed = seed

    def compute_assignment(self) -> dict[int, int]:
        assert self.graph is not None and self.topology is not None
        return random_assignment(self.graph, self.topology, seed=self.seed)


class LegacyMetisPlacement(LegacyStaticPlacementStrategy):
    """Seed METIS baseline on the seed static execution engine."""

    name = "metis"

    def __init__(self, seed: int = 7) -> None:
        super().__init__()
        self.seed = seed

    def compute_assignment(self) -> dict[int, int]:
        assert self.graph is not None and self.topology is not None
        return metis_assignment(self.graph, self.topology, seed=self.seed)


class LegacyHierarchicalMetisPlacement(LegacyStaticPlacementStrategy):
    """Seed hierarchical-METIS baseline on the seed static execution engine."""

    name = "hmetis"

    def __init__(self, seed: int = 7) -> None:
        super().__init__()
        self.seed = seed

    def compute_assignment(self) -> dict[int, int]:
        assert self.graph is not None and self.topology is not None
        return hmetis_assignment(self.graph, self.topology, seed=self.seed)


__all__ = [
    "LegacyHierarchicalMetisPlacement",
    "LegacyMetisPlacement",
    "LegacyRandomPlacement",
    "LegacyStaticPlacementStrategy",
]
