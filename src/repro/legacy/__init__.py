"""Frozen seed copies of the placement strategies (the *object path*).

Before PR 4 every strategy kept its placement state in an object-per-replica
world: ``ViewReplica`` dataclasses inside per-server dicts, per-user
``dict``/``set`` location maps and ``AccessStatistics`` objects.  PR 4 moved
all of that onto the flat struct-of-arrays tables in
:mod:`repro.store.tables`.  This package preserves the seed implementations
verbatim so that

* the golden parity suite (``tests/test_tables.py``) can replay identical
  workloads through both worlds and assert **byte-identical**
  ``SimulationResult``s, and
* the strategy benchmarks can measure the table path against the real
  object-backed baseline (throughput and peak placement-state memory).

Nothing in the production code paths imports this package.  Do not
optimise, extend or "fix" these modules — their value is that they never
change.
"""

from ..baselines.base import PlacementStrategy
from ..config import DynaSoReConfig
from ..exceptions import ConfigurationError
from .baselines import (
    LegacyHierarchicalMetisPlacement,
    LegacyMetisPlacement,
    LegacyRandomPlacement,
    LegacyStaticPlacementStrategy,
)
from .engine import LegacyDynaSoRe
from .server import LegacyStorageServer
from .spar import LegacySparPlacement


def build_legacy_strategy(
    key: str, seed: int, dynasore_config: DynaSoReConfig | None = None
) -> PlacementStrategy:
    """Legacy (seed object path) twin of :func:`repro.runtime.spec.build_strategy`."""
    if key == "random":
        return LegacyRandomPlacement(seed=seed)
    if key == "metis":
        return LegacyMetisPlacement(seed=seed)
    if key == "hmetis":
        return LegacyHierarchicalMetisPlacement(seed=seed)
    if key == "spar":
        return LegacySparPlacement(seed=seed)
    if key.startswith("dynasore_"):
        initializer = key[len("dynasore_") :]
        return LegacyDynaSoRe(
            initializer=initializer,
            config=dynasore_config or DynaSoReConfig(),
            seed=seed,
        )
    raise ConfigurationError(f"unknown legacy strategy key {key!r}")


__all__ = [
    "LegacyDynaSoRe",
    "LegacyHierarchicalMetisPlacement",
    "LegacyMetisPlacement",
    "LegacyRandomPlacement",
    "LegacySparPlacement",
    "LegacyStaticPlacementStrategy",
    "LegacyStorageServer",
    "build_legacy_strategy",
]
