"""Frozen seed copy of the object-backed DynaSoRe engine (parity reference).

This is the DynaSoRe placement engine exactly as it existed before the
struct-of-arrays placement tables (:mod:`repro.store.tables`): per-user
``dict``/``set`` location maps, one :class:`~repro.store.view.ViewReplica`
object per replica and per-server dicts of objects.  The golden parity
suite (``tests/test_tables.py``) replays identical workloads through this
engine and through the table-backed engine and asserts byte-identical
``SimulationResult``s; the strategy
benchmarks use it as the object-backed baseline for throughput and memory
comparisons.  Do not optimise or refactor this module: its value is that it
never changes.
"""


from __future__ import annotations

from collections.abc import Callable

from dataclasses import dataclass

from ..baselines.base import PlacementStrategy
from ..baselines.hmetis_placement import hmetis_assignment
from ..baselines.metis_placement import metis_assignment
from ..baselines.random_placement import random_assignment
from ..config import DynaSoReConfig
from ..exceptions import ConfigurationError, SimulationError
from ..persistence.recovery import RecoveryPlan
from ..socialgraph.graph import SocialGraph
from .server import LegacyStorageServer
from ..store.view import INFINITE_UTILITY, ViewReplica
from ..topology.base import ClusterTopology
from ..traffic.messages import MessageKind
from .legacy_migration import MigrationAction, evaluate_replica_migration
from .legacy_proxies import ProxyDirectory, optimal_proxy_broker
from .legacy_replication import evaluate_replica_creation, origin_candidates
from .legacy_routing import RoutingService
from .legacy_utility import estimate_profit

#: Signature of an initial-placement function: (graph, topology, seed) -> {user: server position}.
InitialAssignment = Callable[[SocialGraph, ClusterTopology, int], dict[int, int]]

#: Named initial placements accepted by :class:`DynaSoRe`.
INITIAL_PLACEMENTS: dict[str, InitialAssignment] = {
    "random": random_assignment,
    "metis": metis_assignment,
    "hmetis": hmetis_assignment,
}


@dataclass
class EngineCounters:
    """Diagnostics of the dynamic decisions taken during a run."""

    replicas_created: int = 0
    replicas_removed: int = 0
    replicas_migrated: int = 0
    read_proxy_migrations: int = 0
    write_proxy_migrations: int = 0
    creation_rejected_full: int = 0
    servers_lost: int = 0
    views_recovered_from_memory: int = 0
    views_recovered_from_disk: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view used by reports and tests."""
        return {
            "replicas_created": self.replicas_created,
            "replicas_removed": self.replicas_removed,
            "replicas_migrated": self.replicas_migrated,
            "read_proxy_migrations": self.read_proxy_migrations,
            "write_proxy_migrations": self.write_proxy_migrations,
            "creation_rejected_full": self.creation_rejected_full,
            "servers_lost": self.servers_lost,
            "views_recovered_from_memory": self.views_recovered_from_memory,
            "views_recovered_from_disk": self.views_recovered_from_disk,
        }


def fit_assignment_to_capacity(
    assignment: dict[int, int], capacities: list[int]
) -> dict[int, int]:
    """Adjust an assignment so no server exceeds its capacity.

    Partitioners tolerate a few percent of imbalance, but at 0% extra memory
    the per-server capacity exactly matches a perfectly balanced assignment.
    Users overflowing a server are moved to the least-loaded server with free
    slots (placement quality matters little for the handful of moved users).
    """
    loads = [0] * len(capacities)
    fitted = dict(assignment)
    overflow: list[int] = []
    for user, position in assignment.items():
        if position < 0 or position >= len(capacities):
            raise SimulationError(f"user {user} assigned to invalid server {position}")
        if loads[position] < capacities[position]:
            loads[position] += 1
        else:
            overflow.append(user)
    for user in overflow:
        position = min(
            range(len(capacities)),
            key=lambda p: (loads[p] - capacities[p], loads[p], p),
        )
        if loads[position] >= capacities[position]:
            raise SimulationError("cluster capacity is too small to store every view")
        fitted[user] = position
        loads[position] += 1
    return fitted


class LegacyDynaSoRe(PlacementStrategy):
    """Seed object-backed DynaSoRe (see module docstring)."""

    name = "dynasore"

    def __init__(
        self,
        initializer: str | InitialAssignment = "random",
        config: DynaSoReConfig | None = None,
        seed: int = 7,
    ) -> None:
        super().__init__()
        self.config = config or DynaSoReConfig()
        self.seed = seed
        if isinstance(initializer, str):
            if initializer not in INITIAL_PLACEMENTS:
                raise ConfigurationError(
                    f"unknown initial placement {initializer!r}; "
                    f"expected one of {sorted(INITIAL_PLACEMENTS)} or a callable"
                )
            self._initializer: InitialAssignment = INITIAL_PLACEMENTS[initializer]
            self.initializer_name = initializer
        else:
            self._initializer = initializer
            self.initializer_name = getattr(initializer, "__name__", "custom")
        self.name = f"dynasore[{self.initializer_name}]"

        self.servers: list[StorageServer] = []
        self.proxies = ProxyDirectory()
        self.routing: RoutingService | None = None
        #: user -> set of storage-server positions holding a replica
        self._replica_positions: dict[int, set[int]] = {}
        self._device_of_position: list[int] = []
        self._position_of_device: dict[int, int] = {}
        self._positions_under_switch: dict[int, tuple[int, ...]] = {}
        self._threshold_cache: dict[int, float] = {}
        # Replica-placement epoch: bumped on every occupancy change so the
        # per-origin least-loaded rankings below can be reused between
        # changes (they are queried for every origin of every evaluated
        # read, far more often than occupancy actually changes).
        self._occupancy_epoch = 0
        self._origin_rank_cache: dict[int, tuple[int, tuple[int, ...]]] = {}
        self._last_tick: float = 0.0
        #: storage-server positions currently out of service
        self._down_positions: set[int] = set()
        #: nominal capacity of each position (restored when a server rejoins)
        self._position_capacity: list[int] = []
        self.counters = EngineCounters()

    # =====================================================================
    # Initial placement
    # =====================================================================
    def build_initial_placement(self) -> None:
        self.require_bound()
        assert self.topology is not None and self.graph is not None and self.budget is not None
        capacities = self.budget.per_server_capacity()
        if len(capacities) != len(self.topology.servers):
            raise SimulationError("memory budget does not match the number of servers")

        self.servers = [
            self._fresh_server(position, capacity)
            for position, capacity in enumerate(capacities)
        ]
        self._position_capacity = list(capacities)
        self._down_positions = set()
        self._device_of_position = [server.index for server in self.topology.servers]
        self._position_of_device = {
            device: position for position, device in enumerate(self._device_of_position)
        }
        self.routing = RoutingService(self.topology)
        self._build_switch_index()

        assignment = self._initializer(self.graph, self.topology, self.seed)
        assignment = fit_assignment_to_capacity(assignment, capacities)

        self._replica_positions = {}
        for user, position in assignment.items():
            device = self._device_of_position[position]
            broker = self.topology.proxy_broker_for_server(device)
            self.servers[position].add_replica(user, write_proxy_broker=broker)
            self._replica_positions[user] = {position}
            self.proxies.place_both(user, broker)
        self._occupancy_epoch += 1
        self._origin_rank_cache.clear()

    def _fresh_server(self, position: int, capacity: int) -> LegacyStorageServer:
        """An empty storage server configured like the rest of the fleet."""
        return LegacyStorageServer(
            server_index=position,
            capacity=capacity,
            counter_slots=self.config.counter_slots,
            counter_period=self.config.counter_period,
            admission_fill=self.config.admission_fill,
            eviction_threshold=self.config.eviction_threshold,
        )

    def _build_switch_index(self) -> None:
        """Pre-compute the storage-server positions under every switch."""
        assert self.topology is not None
        self._positions_under_switch = {}
        for switch in self.topology.switches:
            devices = self.topology.servers_under(switch.index)
            self._positions_under_switch[switch.index] = tuple(
                self._position_of_device[device]
                for device in devices
                if device in self._position_of_device
            )
        # In the flat topology origins are machines, not switches; each
        # machine-origin contains exactly the co-located storage server.
        for server in self.topology.servers:
            if server.index not in self._positions_under_switch:
                self._positions_under_switch[server.index] = (
                    self._position_of_device[server.index],
                )

    # =====================================================================
    # Helpers used by Algorithms 2 and 3
    # =====================================================================
    def positions_under(self, origin: int) -> tuple[int, ...]:
        """Storage-server positions under an origin switch (or machine)."""
        positions = self._positions_under_switch.get(origin)
        if positions is None:
            raise SimulationError(f"unknown origin {origin}")
        return positions

    def least_loaded_server_under(self, origin: int, user: int) -> int | None:
        """Least-loaded server under ``origin`` not already storing ``user``.

        Only servers with a free slot qualify: replica creation never evicts
        on the spot; memory is freed by the proactive eviction pass of the
        maintenance tick (paper section 3.2, "Eviction of views").
        """
        epoch = self._occupancy_epoch
        cached = self._origin_rank_cache.get(origin)
        if cached is not None and cached[0] == epoch:
            ranked = cached[1]
        else:
            positions = self._positions_under_switch.get(origin)
            if positions is None:
                raise SimulationError(f"unknown origin {origin}")
            servers = self.servers
            loaded: list[tuple[float, int]] = []
            for position in positions:
                server = servers[position]
                capacity = server.capacity
                # Peek at the replica dict directly: this loop feeds every
                # origin of every evaluated read, and the property/method
                # hops of ``is_full``/``utilisation`` dominate its cost.
                used = len(server._replicas)
                if used < capacity:
                    loaded.append((used / capacity, position))
            loaded.sort()
            ranked = tuple(position for _, position in loaded)
            self._origin_rank_cache[origin] = (epoch, ranked)
        holders = self._replica_positions.get(user)
        down = self._down_positions
        if holders or down:
            for position in ranked:
                if (holders is None or position not in holders) and position not in down:
                    return position
            return None
        return ranked[0] if ranked else None

    def admission_threshold_under(self, origin: int) -> float:
        """Lowest admission threshold among the servers under ``origin``.

        Brokers learn thresholds through piggybacking and keep the lowest
        value per region; the cache is invalidated at every maintenance tick
        when thresholds are recomputed.
        """
        cached = self._threshold_cache.get(origin)
        if cached is not None:
            return cached
        positions = self.positions_under(origin)
        if not positions:
            value = INFINITE_UTILITY
        else:
            value = min(self.servers[position].admission_threshold for position in positions)
        self._threshold_cache[origin] = value
        return value

    def device_of_position(self, position: int) -> int:
        """Leaf device index of a storage-server position."""
        return self._device_of_position[position]

    def position_available(self, position: int) -> bool:
        """True when the storage server at ``position`` is in service."""
        return position not in self._down_positions

    # =====================================================================
    # Request execution
    # =====================================================================
    def _ensure_user(self, user: int) -> None:
        """Allocate a view and proxies for a user unknown to the store.

        New users are placed on the least-loaded server of the cluster and
        their proxies on the closest broker (paper section 3.3, "Managing the
        social network").
        """
        if user in self._replica_positions:
            return
        assert self.topology is not None
        position = min(
            (p for p in range(len(self.servers)) if p not in self._down_positions),
            key=lambda p: (self.servers[p].utilisation, p),
        )
        device = self._device_of_position[position]
        broker = self.topology.proxy_broker_for_server(device)
        self.servers[position].add_replica(user, write_proxy_broker=broker, allow_overflow=True)
        self._replica_positions[user] = {position}
        self.proxies.place_both(user, broker)
        self._occupancy_epoch += 1

    def _closest_position(self, broker: int, user: int) -> int:
        """Position of the replica of ``user`` closest to ``broker``.

        Same policy as :meth:`RoutingService.closest_replica` (distance,
        ties on device index) but resolved on positions directly, without
        materialising the device set of the replicas.
        """
        positions = self._replica_positions[user]
        if len(positions) == 1:
            return next(iter(positions))
        distances = self.topology.distance_row(broker)
        device_of_position = self._device_of_position
        best_position = -1
        best_distance = best_device = float("inf")
        for position in positions:
            device = device_of_position[position]
            distance = distances[device]
            if distance < best_distance or (
                distance == best_distance and device < best_device
            ):
                best_distance = distance
                best_device = device
                best_position = position
        return best_position

    def execute_read(
        self, user: int, now: float, targets: tuple[int, ...] | None = None
    ) -> None:
        self.require_bound()
        assert self.graph is not None and self.accountant is not None and self.topology is not None
        if targets is None:
            if not self.graph.has_user(user):
                return
            targets = tuple(self.graph.following(user))
        self._ensure_user(user)
        broker = self.proxies.read_broker(user)
        if broker is None:
            broker = self.topology.proxy_broker_for_server(
                self._device_of_position[next(iter(self._replica_positions[user]))]
            )
            self.proxies.read_proxy[user] = broker

        transfers: dict[int, float] = {}
        # Local bindings: this loop runs once per followed user per read and
        # dominates the simulator's wall clock.
        ensure_user = self._ensure_user
        closest_position = self._closest_position
        device_of_position = self._device_of_position
        record_roundtrip = self.accountant.record_roundtrip
        origin_of = self.topology.origin_of
        servers = self.servers
        check_interval = self.config.replication_check_interval
        for target in targets:
            ensure_user(target)
            position = closest_position(broker, target)
            device = device_of_position[position]
            record_roundtrip(
                broker, device, MessageKind.READ_REQUEST, MessageKind.READ_RESPONSE, now
            )
            transfers[device] = transfers.get(device, 0.0) + 1.0

            # Direct replica-dict lookup (the ``replica`` accessor's error
            # wrapping costs real time at one call per followed user).
            replica = servers[position]._replicas[target]
            origin = origin_of(device, broker)
            stats = replica.stats
            stats.record_read(origin, now)

            if stats.reads_since_last_evaluation() >= check_interval:
                stats.mark_evaluated()
                self._consider_replication(replica, position, now)

        if self.config.enable_proxy_migration and transfers:
            best = optimal_proxy_broker(self.topology, transfers, broker)
            if best != broker:
                self.accountant.record(broker, best, MessageKind.PROXY_MIGRATION, now)
                self.proxies.read_proxy[user] = best
                self.counters.read_proxy_migrations += 1

    def execute_write(self, user: int, now: float) -> None:
        self.require_bound()
        assert self.accountant is not None and self.topology is not None
        self._ensure_user(user)
        broker = self.proxies.write_broker(user)
        if broker is None:
            broker = self.topology.proxy_broker_for_server(
                self._device_of_position[next(iter(self._replica_positions[user]))]
            )
            self.proxies.write_proxy[user] = broker

        transfers: dict[int, float] = {}
        for position in tuple(self._replica_positions[user]):
            device = self._device_of_position[position]
            self.accountant.record_roundtrip(
                broker, device, MessageKind.WRITE_UPDATE, MessageKind.WRITE_ACK, now
            )
            transfers[device] = transfers.get(device, 0.0) + 1.0
            self.servers[position].replica(user).stats.record_write(now)

        if self.config.enable_proxy_migration and transfers:
            best = optimal_proxy_broker(self.topology, transfers, broker)
            if best != broker:
                # Migrating a write proxy notifies every replica of the view.
                for position in self._replica_positions[user]:
                    device = self._device_of_position[position]
                    self.accountant.record(broker, device, MessageKind.PROXY_MIGRATION, now)
                    self.servers[position].replica(user).write_proxy_broker = best
                self.proxies.write_proxy[user] = best
                self.counters.write_proxy_migrations += 1

    # =====================================================================
    # Replication, migration, eviction
    # =====================================================================
    def _consider_replication(self, replica: ViewReplica, position: int, now: float) -> None:
        """Run Algorithm 2 for a replica; fall back to Algorithm 3 when no
        replica can be created (paper: "When no replicas can be created, the
        server attempts to migrate the view to a more appropriate location")."""
        replica_device = self._device_of_position[position]
        # Both algorithms price the same per-origin candidates; resolve them
        # once (nothing changes placement between the two evaluations).  No
        # availability filter is needed: ``least_loaded_server_under`` never
        # returns a position from the down set.
        candidates = origin_candidates(
            replica,
            replica_device,
            self.least_loaded_server_under,
            self._device_of_position.__getitem__,
        )
        decision = evaluate_replica_creation(
            self.topology,
            replica,
            replica_device,
            self.proxies.write_broker(replica.user),
            self.least_loaded_server_under,
            self.admission_threshold_under,
            self.device_of_position,
            position_available=self.position_available,
            candidates=candidates,
        )
        if decision.should_replicate and decision.target_position is not None:
            self._create_replica(
                replica.user, decision.target_position, now, requesting_position=position,
                incoming_profit=decision.profit,
            )
            return
        if self.config.enable_view_migration:
            self._consider_migration(replica, position, now, candidates=candidates)

    def _consider_migration(
        self,
        replica: ViewReplica,
        position: int,
        now: float,
        candidates: list[tuple[int, int, int]] | None = None,
    ) -> None:
        """Run Algorithm 3 for a replica and apply its decision."""
        next_device = replica.next_closest_replica
        decision = evaluate_replica_migration(
            self.topology,
            replica,
            self._device_of_position[position],
            next_device,
            self.proxies.write_broker(replica.user),
            self.least_loaded_server_under,
            self.admission_threshold_under,
            self.device_of_position,
            position_available=self.position_available,
            candidates=candidates,
        )
        if decision.action is MigrationAction.REMOVE:
            self._remove_replica(replica.user, position, now)
        elif decision.action is MigrationAction.MOVE and decision.target_position is not None:
            created = self._create_replica(
                replica.user,
                decision.target_position,
                now,
                requesting_position=position,
                incoming_profit=decision.profit,
            )
            if created:
                self._remove_replica(replica.user, position, now)
                self.counters.replicas_migrated += 1

    def _create_replica(
        self,
        user: int,
        target_position: int,
        now: float,
        requesting_position: int | None = None,
        incoming_profit: float = 0.0,
    ) -> bool:
        """Create a replica of ``user``'s view on ``target_position``.

        Returns True when the replica was created.  The target may refuse
        when it is full and none of its evictable replicas is less useful
        than the incoming view.
        """
        assert self.accountant is not None and self.routing is not None
        positions = self._replica_positions[user]
        if target_position in positions:
            return False
        target_server = self.servers[target_position]
        if target_server.is_full():
            if not self._make_room(target_server, incoming_profit, now):
                self.counters.creation_rejected_full += 1
                return False

        write_broker = self.proxies.write_broker(user)
        target_device = self._device_of_position[target_position]
        before_devices = {self._device_of_position[p] for p in positions}

        # Control traffic: the requesting server notifies the write proxy,
        # which instructs the target server and ships the view data from the
        # closest existing replica.
        if requesting_position is not None and write_broker is not None:
            self.accountant.record(
                self._device_of_position[requesting_position],
                write_broker,
                MessageKind.REPLICA_CONTROL,
                now,
            )
        if write_broker is not None:
            self.accountant.record(write_broker, target_device, MessageKind.REPLICA_CONTROL, now)
        source_device = self.routing.closest_replica(target_device, before_devices)
        self.accountant.record(source_device, target_device, MessageKind.REPLICA_COPY, now)

        seeded_stats = self._seed_statistics(user, source_device, target_device, now)
        replica = target_server.add_replica(
            user, write_proxy_broker=write_broker, stats=seeded_stats
        )
        positions.add(target_position)
        self._occupancy_epoch += 1
        after_devices = before_devices | {target_device}
        self._notify_routing_change(user, before_devices, after_devices, now)
        self._refresh_next_closest(user)
        self._refresh_utility(replica)
        self.counters.replicas_created += 1
        return True

    def _seed_statistics(
        self, user: int, source_device: int, target_device: int, now: float
    ):
        """Initial access statistics of a freshly created replica.

        The new replica inherits, from the replica it was copied from, the
        read counts of the origins that will be routed to it (those closer to
        the new location than to the source) and the view's write rate.
        Seeding prevents a cold-start artefact where a new replica — created
        precisely because a region reads the view heavily — would look
        useless at the next maintenance tick simply because its own counters
        are still empty, get evicted, and be re-created on the next read.
        """
        assert self.topology is not None
        source_position = self._position_of_device[source_device]
        source_replica = self.servers[source_position].replica(user)
        seeded = source_replica.stats.__class__(
            self.config.counter_slots, self.config.counter_period
        )
        for origin, reads in source_replica.stats.reads_by_origin().items():
            if self.topology.cost_from_origin(origin, target_device) < self.topology.cost_from_origin(
                origin, source_device
            ):
                seeded.record_read(origin, now, reads)
        writes = source_replica.stats.total_writes()
        if writes:
            seeded.record_write(now, writes)
        seeded.mark_evaluated()
        return seeded

    def _make_room(self, server: LegacyStorageServer, incoming_profit: float, now: float) -> bool:
        """Evict the least useful replica of a full server if it is less
        useful than the incoming view.  Returns True when a slot was freed."""
        candidates = server.eviction_candidates()
        if not candidates:
            return False
        victim = candidates[0]
        if victim.effective_utility() >= incoming_profit:
            return False
        self._remove_replica(victim.user, victim.server, now)
        return True

    def _remove_replica(self, user: int, position: int, now: float) -> bool:
        """Remove the replica of ``user`` stored at ``position`` (never the
        last one)."""
        assert self.accountant is not None
        positions = self._replica_positions.get(user)
        if positions is None or position not in positions:
            return False
        if len(positions) <= self.config.min_replicas:
            return False
        device = self._device_of_position[position]
        before_devices = {self._device_of_position[p] for p in positions}
        self.servers[position].remove_replica(user)
        positions.discard(position)
        self._occupancy_epoch += 1
        after_devices = {self._device_of_position[p] for p in positions}

        write_broker = self.proxies.write_broker(user)
        if write_broker is not None:
            self.accountant.record(device, write_broker, MessageKind.REPLICA_CONTROL, now)
        self._notify_routing_change(user, before_devices, after_devices, now)
        self._refresh_next_closest(user)
        self.counters.replicas_removed += 1
        return True

    def _notify_routing_change(
        self, user: int, before: set[int], after: set[int], now: float
    ) -> None:
        """Send routing updates to the brokers whose closest replica changed."""
        assert self.routing is not None and self.accountant is not None
        write_broker = self.proxies.write_broker(user)
        if write_broker is None:
            return
        for broker in self.routing.affected_brokers(before, after):
            if broker == write_broker:
                continue
            self.accountant.record(write_broker, broker, MessageKind.ROUTING_UPDATE, now)

    def _refresh_next_closest(self, user: int) -> None:
        """Refresh every replica's pointer to its next-closest sibling."""
        assert self.routing is not None
        positions = self._replica_positions[user]
        devices = {self._device_of_position[p] for p in positions}
        for position in positions:
            device = self._device_of_position[position]
            replica = self.servers[position].replica(user)
            replica.next_closest_replica = self.routing.next_closest(device, devices)

    # =====================================================================
    # Maintenance tick
    # =====================================================================
    def on_tick(self, now: float) -> None:
        """Hourly maintenance: rotate counters, refresh utilities and
        thresholds, evict, and run the migration sweep (Algorithm 3)."""
        self.require_bound()
        assert self.topology is not None
        self._last_tick = now
        self._threshold_cache.clear()

        for server in self.servers:
            server.advance_counters(now)
            for replica in server.replicas():
                self._refresh_utility(replica)
            server.update_admission_threshold()

        # Proactive eviction: free memory on servers above the threshold,
        # shedding the least useful replicas first.
        for server in self.servers:
            if not server.needs_eviction():
                continue
            excess = server.excess_replicas()
            for replica in server.eviction_candidates():
                if excess <= 0:
                    break
                if self._remove_replica(replica.user, replica.server, now):
                    excess -= 1

        # Views with negative utility are removed regardless of memory
        # pressure (their write cost exceeds their read benefit).
        for server in self.servers:
            for replica in server.replicas():
                if replica.effective_utility() < 0:
                    self._remove_replica(replica.user, replica.server, now)

    def _refresh_utility(self, replica: ViewReplica) -> None:
        """Recompute the cached utility of a replica (Algorithm 1)."""
        assert self.topology is not None
        device = self._device_of_position[replica.server]
        if replica.next_closest_replica is None:
            replica.utility = INFINITE_UTILITY if replica.stats.total_reads() >= 0 else 0.0
            return
        replica.utility = estimate_profit(
            self.topology,
            replica.stats,
            device,
            replica.next_closest_replica,
            self.proxies.write_broker(replica.user),
        )

    # =====================================================================
    # Graph evolution
    # =====================================================================
    def on_edge_added(self, follower: int, followee: int, now: float) -> None:
        """New social connection: make sure both users exist in the store."""
        self._ensure_user(follower)
        self._ensure_user(followee)

    def on_edge_removed(self, follower: int, followee: int, now: float) -> None:
        """Removed connection: nothing to do, statistics decay naturally."""

    # =====================================================================
    # Server failures and elastic capacity
    # =====================================================================
    def on_server_down(
        self, position: int, now: float, graceful: bool = False
    ) -> RecoveryPlan:
        """Evacuate a departed server and re-place what it held.

        Views replicated elsewhere only need routing updates (the surviving
        replicas keep serving — the paper's fast recovery path).  Views
        whose sole replica lived here are re-created on the least-loaded
        survivor: after a crash the data comes from the persistent store
        through the view's write proxy, on a graceful drain it is copied
        directly from the leaving server (and keeps its access statistics).
        """
        self.require_bound()
        assert self.accountant is not None and self.topology is not None
        if self.routing is None or not self.servers:
            raise SimulationError("the placement has not been deployed yet")
        self._begin_server_down(position, self._down_positions, len(self.servers))
        self.counters.servers_lost += 1

        crashed = self.servers[position]
        device = self._device_of_position[position]
        plan = RecoveryPlan(crashed_server=position)
        for replica in crashed.replicas():
            user = replica.user
            positions = self._replica_positions[user]
            before_devices = {self._device_of_position[p] for p in positions}
            positions.discard(position)
            if positions:
                # Fast path: other replicas keep serving; reroute brokers.
                plan.recoverable_from_memory.append(user)
                self.counters.views_recovered_from_memory += 1
                after_devices = {self._device_of_position[p] for p in positions}
                self._notify_routing_change(user, before_devices, after_devices, now)
                self._refresh_next_closest(user)
                continue
            # Slow path: the sole replica is gone; rebuild it elsewhere.
            target = self._recovery_target()
            target_device = self._device_of_position[target]
            write_broker = self.proxies.write_broker(user)
            if graceful:
                plan.recoverable_from_memory.append(user)
                self.counters.views_recovered_from_memory += 1
                source = device
                stats = replica.stats
            else:
                plan.recoverable_from_disk.append(user)
                self.counters.views_recovered_from_disk += 1
                # The write proxy pulls the view out of the persistent
                # store and ships it to the new host; the crash wiped the
                # access statistics along with the memory.
                source = (
                    write_broker
                    if write_broker is not None
                    else self.topology.proxy_broker_for_server(target_device)
                )
                stats = None
            self.accountant.record(source, target_device, MessageKind.REPLICA_COPY, now)
            self.servers[target].add_replica(
                user,
                write_proxy_broker=replica.write_proxy_broker,
                stats=stats,
                allow_overflow=True,
            )
            positions.add(target)
            self._notify_routing_change(user, before_devices, {target_device}, now)
            self._refresh_next_closest(user)

        # The departed slot keeps zero capacity (and an infinite admission
        # threshold) while it is away so no decision ever lands on it.
        placeholder = self._fresh_server(position, 0)
        placeholder.update_admission_threshold()
        self.servers[position] = placeholder
        self._threshold_cache.clear()
        self._occupancy_epoch += 1
        self._origin_rank_cache.clear()
        return plan

    def on_server_up(self, position: int, now: float) -> None:
        """A server rejoins with empty memory and its nominal capacity.

        Nothing is placed on it eagerly: its zero admission threshold makes
        it the most attractive target, so Algorithms 2 and 3 rebalance views
        onto it as traffic flows.
        """
        self._begin_server_up(position, self._down_positions)
        self.servers[position] = self._fresh_server(
            position, self._position_capacity[position]
        )
        self._threshold_cache.clear()
        self._occupancy_epoch += 1
        self._origin_rank_cache.clear()

    def _recovery_target(self) -> int:
        """Least-loaded in-service server, preferring ones with free slots.

        Recovery must always succeed, so when every survivor is full the
        least-utilised one takes the view anyway (``allow_overflow``); the
        next maintenance tick's eviction pass works the overshoot off.
        """
        candidates = [
            p for p in range(len(self.servers)) if p not in self._down_positions
        ]
        with_space = [p for p in candidates if not self.servers[p].is_full()]
        pool = with_space or candidates
        return min(pool, key=lambda p: (self.servers[p].utilisation, p))

    # =====================================================================
    # Introspection
    # =====================================================================
    def replica_locations(self) -> dict[int, set[int]]:
        return {
            user: {self._device_of_position[p] for p in positions}
            for user, positions in self._replica_positions.items()
        }

    def replica_count(self, user: int) -> int:
        return len(self._replica_positions.get(user, ()))

    def replication_factor(self) -> float:
        """Average number of replicas per view."""
        if not self._replica_positions:
            return 0.0
        total = sum(len(p) for p in self._replica_positions.values())
        return total / len(self._replica_positions)

    def memory_in_use(self) -> int:
        return sum(server.used for server in self.servers)

    def memory_capacity(self) -> int:
        """Total capacity of the cluster in views."""
        return sum(server.capacity for server in self.servers)

    def server_utilisations(self) -> list[float]:
        """Per-server memory utilisation."""
        return [server.utilisation for server in self.servers]


__all__ = ["LegacyDynaSoRe"]
