"""Frozen seed copy of :mod:`repro.core.utility` (parity reference).

Kept verbatim for the legacy object path: the table-backed core modules
have been restructured around integer replica ids, while the legacy engine
must keep executing exactly the seed code.  Do not optimise or refactor.
"""


from __future__ import annotations

from ..store.stats import AccessStatistics
from ..topology.base import ClusterTopology


def estimate_profit(
    topology: ClusterTopology,
    stats: AccessStatistics,
    candidate_server: int,
    reference_server: int,
    write_broker: int | None,
) -> float:
    """Profit of serving the recorded accesses from ``candidate_server``.

    Parameters
    ----------
    topology:
        Cluster topology providing switch costs.
    stats:
        Access statistics of the view (reads by origin plus writes).
    candidate_server:
        Leaf device index of the server whose benefit is being estimated.
    reference_server:
        Leaf device index of the server that would serve the reads otherwise
        (the next-closest replica, or the current server when evaluating the
        creation of a brand-new replica).
    write_broker:
        Leaf device index of the broker hosting the view's write proxy, or
        ``None`` when the view has never been written (write cost is then 0).
    """
    server_read_cost = 0.0
    nearest_read_cost = 0.0
    reads_by_origin = stats.reads_by_origin()
    if reads_by_origin:
        candidate_costs = topology.cost_row(candidate_server)
        reference_costs = topology.cost_row(reference_server)
        for origin, reads in reads_by_origin.items():
            candidate_cost = candidate_costs[origin]
            reference_cost = reference_costs[origin]
            if candidate_cost is None or reference_cost is None:
                candidate_cost = topology.cost_from_origin(origin, candidate_server)
                reference_cost = topology.cost_from_origin(origin, reference_server)
            # Routing is deterministic and always picks the closest replica,
            # so reads from an origin only move to the candidate when it is
            # closer; they never become more expensive because the reference
            # replica (the current server or the next-closest replica) still
            # exists.  Without this clamp, views with geographically spread
            # readers would never be replicated, which contradicts the
            # paper's flash-event behaviour (one replica per intermediate
            # switch).
            if candidate_cost < reference_cost:
                server_read_cost += reads * candidate_cost
            else:
                server_read_cost += reads * reference_cost
            nearest_read_cost += reads * reference_cost
    writes = stats.total_writes()
    if writes and write_broker is not None:
        server_write_cost = writes * topology.distance_row(write_broker)[candidate_server]
    else:
        server_write_cost = 0.0
    return nearest_read_cost - server_read_cost - server_write_cost


def profit_estimator(
    topology: ClusterTopology,
    stats: AccessStatistics,
    reference_server: int,
    write_broker: int | None,
):
    """Amortised form of :func:`estimate_profit` for a fixed reference.

    Algorithms 2 and 3 price many candidate servers against the *same*
    reference replica and the *same* access statistics; the reference read
    cost and the per-origin read counts only need to be resolved once.
    Returns a callable ``candidate_server -> profit``.
    """
    reads_by_origin = stats.reads_by_origin()
    nearest_read_cost = 0.0
    reference_costs: list[int | None] | None = None
    if reads_by_origin:
        reference_costs = topology.cost_row(reference_server)
        for origin, reads in reads_by_origin.items():
            reference_cost = reference_costs[origin]
            if reference_cost is None:
                reference_cost = topology.cost_from_origin(origin, reference_server)
            nearest_read_cost += reads * reference_cost
    writes = stats.total_writes()
    priced_writes = writes if write_broker is not None else 0.0
    write_distances = (
        topology.distance_row(write_broker) if priced_writes else None
    )

    def estimate(candidate_server: int) -> float:
        server_read_cost = 0.0
        if reference_costs is not None:
            candidate_costs = topology.cost_row(candidate_server)
            for origin, reads in reads_by_origin.items():
                candidate_cost = candidate_costs[origin]
                reference_cost = reference_costs[origin]
                if candidate_cost is None or reference_cost is None:
                    candidate_cost = topology.cost_from_origin(origin, candidate_server)
                    reference_cost = topology.cost_from_origin(origin, reference_server)
                # Routing is deterministic and always picks the closest
                # replica, so reads from an origin only move to the candidate
                # when it is closer; they never become more expensive because
                # the reference replica (the current server or the
                # next-closest replica) still exists.  Without this clamp,
                # views with geographically spread readers would never be
                # replicated, which contradicts the paper's flash-event
                # behaviour (one replica per intermediate switch).
                if candidate_cost < reference_cost:
                    server_read_cost += reads * candidate_cost
                else:
                    server_read_cost += reads * reference_cost
        if write_distances is not None:
            server_write_cost = priced_writes * write_distances[candidate_server]
        else:
            server_write_cost = 0.0
        return nearest_read_cost - server_read_cost - server_write_cost

    return estimate


def replica_utility(
    topology: ClusterTopology,
    stats: AccessStatistics,
    server: int,
    next_closest_replica: int | None,
    write_broker: int | None,
) -> float:
    """Utility of an *existing* replica (paper: impact of storing the view).

    When the replica is the only copy in the system the caller treats the
    utility as infinite (the replica cannot be evicted); this function is
    only meaningful when ``next_closest_replica`` exists.
    """
    reference = next_closest_replica if next_closest_replica is not None else server
    return estimate_profit(topology, stats, server, reference, write_broker)


__all__ = ["estimate_profit", "profit_estimator", "replica_utility"]
