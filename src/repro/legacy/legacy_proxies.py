"""Frozen seed copy of :mod:`repro.core.proxies` (parity reference).

Kept verbatim for the legacy object path: the table-backed core modules
have been restructured around integer replica ids, while the legacy engine
must keep executing exactly the seed code.  Do not optimise or refactor.
"""


from __future__ import annotations

from dataclasses import dataclass, field

from ..topology.base import ClusterTopology
from ..topology.tree import TreeTopology


@dataclass
class ProxyDirectory:
    """Locations of every user's read and write proxies (broker devices)."""

    read_proxy: dict[int, int] = field(default_factory=dict)
    write_proxy: dict[int, int] = field(default_factory=dict)

    def place_both(self, user: int, broker: int) -> None:
        """Deploy both proxies of a user on the same broker."""
        self.read_proxy[user] = broker
        self.write_proxy[user] = broker

    def read_broker(self, user: int) -> int | None:
        """Broker hosting the user's read proxy (None when unknown)."""
        return self.read_proxy.get(user)

    def write_broker(self, user: int) -> int | None:
        """Broker hosting the user's write proxy (None when unknown)."""
        return self.write_proxy.get(user)

    def users(self) -> tuple[int, ...]:
        """Users with at least one proxy deployed."""
        return tuple(self.read_proxy)


def optimal_proxy_broker(
    topology: ClusterTopology,
    transfers: dict[int, float],
    default: int,
) -> int:
    """Broker minimising transfers for the given per-server access counts.

    ``transfers`` maps leaf device indices (the servers that served views
    during the last execution of the request) to the number of views they
    served.  Following the paper, the search starts at the root and descends
    into the branch with the most transfers; in the flat topology the best
    broker is simply the machine that served the most views (every machine is
    a broker there).
    """
    if not transfers:
        return default
    if isinstance(topology, TreeTopology):
        # One aggregation pass: per-rack counts plus each rack's
        # intermediate switch, then pick the heaviest branch and the
        # heaviest rack inside it.
        rack_counts: dict[int, float] = {}
        rack_inter: dict[int, int] = {}
        for device, count in transfers.items():
            rack = topology.rack_of(device)
            if rack in rack_counts:
                rack_counts[rack] += count
            else:
                rack_counts[rack] = count
                rack_inter[rack] = topology.intermediate_of(device)
        per_intermediate: dict[int, float] = {}
        for rack, count in rack_counts.items():
            inter = rack_inter[rack]
            per_intermediate[inter] = per_intermediate.get(inter, 0.0) + count
        best_inter = min(
            per_intermediate, key=lambda i: (-per_intermediate[i], i)
        )
        best_rack = min(
            (rack for rack in rack_counts if rack_inter[rack] == best_inter),
            key=lambda r: (-rack_counts[r], r),
        )
        return topology.broker_for_rack(best_rack)
    # Flat topology: the machine that served the most views is the best
    # broker (requests served locally traverse no switch at all).
    return min(transfers, key=lambda device: (-transfers[device], device))


__all__ = ["ProxyDirectory", "optimal_proxy_broker"]
