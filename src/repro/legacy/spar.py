"""Frozen seed copy of the memory-capped SPAR baseline (parity reference).

The dict/set-backed SPAR exactly as it existed before the placement tables.
Used only by the golden parity suite and the strategy benchmarks; do not
optimise or refactor — its value is that it never changes.
"""


from __future__ import annotations

from ..exceptions import SimulationError
from ..persistence.recovery import RecoveryPlan
from ..traffic.messages import MessageKind
from ..baselines.base import PlacementStrategy


class LegacySparPlacement(PlacementStrategy):
    """Seed object-backed SPAR (see module docstring)."""

    name = "spar"

    def __init__(self, seed: int = 7) -> None:
        super().__init__()
        self.seed = seed
        #: user -> server position of the master replica
        self._master: dict[int, int] = {}
        #: user -> set of server positions holding a replica (incl. master)
        self._replicas: dict[int, set[int]] = {}
        #: server position -> number of stored views
        self._load: list[int] = []
        #: server position -> capacity in views
        self._capacity: list[int] = []
        #: server positions currently out of service
        self._down_positions: set[int] = set()

    # ------------------------------------------------------------- placement
    def build_initial_placement(self) -> None:
        self.require_bound()
        assert self.graph is not None and self.topology is not None and self.budget is not None
        servers = len(self.topology.servers)
        self._capacity = self.budget.per_server_capacity()
        if len(self._capacity) != servers:
            raise SimulationError("memory budget does not match the number of servers")
        self._load = [0] * servers
        self._master = {}
        self._replicas = {}

        # One master replica per user, least-loaded server first.
        for user in self.graph.users:
            self._place_master(user)

        # Stream the edges of the social graph in random order and replicate
        # followees onto followers' servers while space remains.
        edges = list(self.graph.edges())
        self.rng.shuffle(edges)
        for follower, followee in edges:
            self._co_locate(follower, followee)

    def _place_master(self, user: int) -> int:
        """Create the master replica of a user on the least-loaded server."""
        position = min(
            (p for p in range(len(self._load)) if p not in self._down_positions),
            key=lambda p: (self._load[p], p),
        )
        self._master[user] = position
        self._replicas[user] = {position}
        self._load[position] += 1
        return position

    def _co_locate(self, follower: int, followee: int) -> bool:
        """Replicate ``followee``'s view on ``follower``'s master server.

        Returns True when a new replica was created.  Nothing happens when
        the views are already co-located or the server has no free slot.
        """
        if follower not in self._master:
            self._place_master(follower)
        if followee not in self._master:
            self._place_master(followee)
        target = self._master[follower]
        if target in self._down_positions:
            return False
        if target in self._replicas[followee]:
            return False
        if self._load[target] >= self._capacity[target]:
            return False
        self._replicas[followee].add(target)
        self._load[target] += 1
        return True

    # ------------------------------------------------------------- execution
    def _master_position(self, user: int) -> int:
        position = self._master.get(user)
        if position is None:
            position = self._place_master(user)
        return position

    def proxy_broker(self, user: int) -> int:
        """Broker of the rack hosting the user's master replica."""
        assert self.topology is not None
        master_device = self.server_device(self._master_position(user))
        return self.topology.proxy_broker_for_server(master_device)

    def execute_read(
        self, user: int, now: float, targets: tuple[int, ...] | None = None
    ) -> None:
        self.require_bound()
        assert self.graph is not None and self.accountant is not None
        if targets is None:
            if not self.graph.has_user(user):
                return
            targets = tuple(self.graph.following(user))
        broker = self.proxy_broker(user)
        for target in targets:
            self._master_position(target)
            replicas = {self.server_device(p) for p in self._replicas[target]}
            server = self.closest_replica(broker, replicas)
            self.accountant.record_roundtrip(
                broker, server, MessageKind.READ_REQUEST, MessageKind.READ_RESPONSE, now
            )

    def execute_write(self, user: int, now: float) -> None:
        self.require_bound()
        assert self.accountant is not None
        broker = self.proxy_broker(user)
        self._master_position(user)
        for position in self._replicas[user]:
            server = self.server_device(position)
            self.accountant.record_roundtrip(
                broker, server, MessageKind.WRITE_UPDATE, MessageKind.WRITE_ACK, now
            )

    # --------------------------------------------------------- graph changes
    def on_edge_added(self, follower: int, followee: int, now: float) -> None:
        """SPAR reacts to the social graph: try to co-locate the new pair."""
        self._co_locate(follower, followee)

    # ---------------------------------------------------------------- faults
    def on_server_down(
        self, position: int, now: float, graceful: bool = False
    ) -> RecoveryPlan:
        """Evacuate a departed server.

        Masters with a surviving secondary replica are promoted in place
        (fast path, the data is already in memory); masters without one are
        re-created on the least-loaded survivor — from the persistent store
        after a crash, by direct copy on a graceful drain.  Secondary
        (co-location) replicas lost with the server are simply dropped;
        SPAR re-creates them lazily as the edge stream evolves.
        """
        self.require_bound()
        assert self.topology is not None and self.accountant is not None
        servers = len(self.topology.servers)
        self._begin_server_down(position, self._down_positions, servers)

        plan = RecoveryPlan(crashed_server=position)
        source_device = self.server_device(position)
        for user, positions in self._replicas.items():
            if position not in positions:
                continue
            positions.discard(position)
            if self._master.get(user) != position:
                continue  # a lost secondary replica; the master survives
            if positions:
                # Promote the closest surviving replica to master.
                self._master[user] = min(positions)
                plan.recoverable_from_memory.append(user)
                continue
            target = min(
                (p for p in range(servers) if p not in self._down_positions),
                key=lambda p: (self._load[p], p),
            )
            positions.add(target)
            self._master[user] = target
            self._load[target] += 1
            target_device = self.server_device(target)
            if graceful:
                plan.recoverable_from_memory.append(user)
                source = source_device
            else:
                plan.recoverable_from_disk.append(user)
                source = self.topology.proxy_broker_for_server(target_device)
            self.accountant.record(
                source, target_device, MessageKind.REPLICA_COPY, now
            )
        self._load[position] = 0
        return plan

    def on_server_up(self, position: int, now: float) -> None:
        """The server rejoins empty; co-location refills it as edges arrive."""
        self._begin_server_up(position, self._down_positions)

    # ----------------------------------------------------------- introspection
    def replica_locations(self) -> dict[int, set[int]]:
        return {
            user: {self.server_device(position) for position in positions}
            for user, positions in self._replicas.items()
        }

    def replica_count(self, user: int) -> int:
        return len(self._replicas.get(user, ()))

    def replication_factor(self) -> float:
        """Average number of replicas per view."""
        if not self._replicas:
            return 0.0
        return sum(len(p) for p in self._replicas.values()) / len(self._replicas)


__all__ = ["LegacySparPlacement"]
