"""Frozen seed copy of :mod:`repro.core.migration` (parity reference).

Kept verbatim for the legacy object path: the table-backed core modules
have been restructured around integer replica ids, while the legacy engine
must keep executing exactly the seed code.  Do not optimise or refactor.
"""


from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..store.view import ViewReplica
from ..topology.base import ClusterTopology
from .legacy_utility import estimate_profit, profit_estimator


class MigrationAction(str, Enum):
    """Possible outcomes of Algorithm 3."""

    STAY = "stay"
    MOVE = "move"
    REMOVE = "remove"


@dataclass(frozen=True)
class MigrationDecision:
    """Outcome of Algorithm 3 for one replica."""

    action: MigrationAction
    target_position: int | None = None
    profit: float = 0.0


def evaluate_replica_migration(
    topology: ClusterTopology,
    replica: ViewReplica,
    replica_device: int,
    next_closest_device: int | None,
    write_broker: int | None,
    least_loaded_server_under,
    admission_threshold_under,
    device_of_position,
    position_available=None,
    candidates: list[tuple[int, int, int]] | None = None,
) -> MigrationDecision:
    """Run Algorithm 3 for one replica.

    ``next_closest_device`` is the location of the next-closest replica of
    the same view (None when this is the sole replica, in which case the
    replica is compared against itself and can never be removed).
    ``position_available`` optionally filters candidate targets (the
    engine's server up/down mask), so a migration never lands on a server
    that left the cluster.  ``candidates`` optionally supplies the
    precomputed :func:`~repro.core.replication.origin_candidates` list.
    """
    if candidates is None:
        from .legacy_replication import origin_candidates

        candidates = origin_candidates(
            replica,
            replica_device,
            least_loaded_server_under,
            device_of_position,
            position_available,
        )
    sole_replica = next_closest_device is None
    reference = replica_device if sole_replica else next_closest_device

    if not candidates:
        # No placement candidate: only the stay-vs-remove decision remains,
        # priced with a single direct profit estimate (the common case — a
        # view whose readers are already served from the best region).
        stay_profit = estimate_profit(
            topology, replica.stats, replica_device, reference, write_broker
        )
        if stay_profit < 0 and not sole_replica:
            return MigrationDecision(action=MigrationAction.REMOVE, profit=stay_profit)
        return MigrationDecision(action=MigrationAction.STAY, profit=stay_profit)

    estimate = profit_estimator(topology, replica.stats, reference, write_broker)
    best_position: int | None = None
    best_profit = estimate(replica_device)
    stay_profit = best_profit

    profits: dict[int, float] = {}
    for origin, candidate_position, candidate_device in candidates:
        profit = profits.get(candidate_device)
        if profit is None:
            profit = estimate(candidate_device)
            profits[candidate_device] = profit
        threshold = admission_threshold_under(origin)
        if profit > best_profit and profit > threshold:
            best_position = candidate_position
            best_profit = profit

    if best_profit < 0 and not sole_replica:
        return MigrationDecision(action=MigrationAction.REMOVE, profit=best_profit)
    if best_position is not None and best_profit > stay_profit:
        return MigrationDecision(
            action=MigrationAction.MOVE, target_position=best_position, profit=best_profit
        )
    return MigrationDecision(action=MigrationAction.STAY, profit=stay_profit)


__all__ = ["MigrationAction", "MigrationDecision", "evaluate_replica_migration"]
