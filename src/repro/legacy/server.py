"""Frozen seed copy of the object-backed storage server (parity reference).

This module preserves, verbatim, the dict-of-objects ``StorageServer`` the
repository shipped before the struct-of-arrays placement tables
(:mod:`repro.store.tables`) replaced it.  It exists so the golden parity
suite and the strategy benchmarks can run the *seed object path* live and
compare it against the table-backed path.  Do not optimise or "fix" this
code: its value is that it never changes.

A server's capacity is expressed as the number of views it can host.  The
server tracks, for every replica it stores, the access statistics needed by
the utility computation, maintains an *admission threshold* (the minimum
utility a new replica must bring to be worth its memory) and frees memory
proactively once utilisation exceeds the eviction threshold.
"""

from __future__ import annotations

import math

from ..constants import DEFAULT_ADMISSION_FILL, DEFAULT_EVICTION_THRESHOLD
from ..exceptions import StorageError
from ..store.stats import AccessStatistics
from ..store.view import INFINITE_UTILITY, ViewReplica


class LegacyStorageServer:
    """A single cache server with bounded view capacity (seed layout)."""

    def __init__(
        self,
        server_index: int,
        capacity: int,
        counter_slots: int = 24,
        counter_period: float = 3600.0,
        admission_fill: float = DEFAULT_ADMISSION_FILL,
        eviction_threshold: float = DEFAULT_EVICTION_THRESHOLD,
    ) -> None:
        if capacity < 0:
            raise StorageError("server capacity cannot be negative")
        self.server_index = server_index
        self.capacity = capacity
        self.counter_slots = counter_slots
        self.counter_period = counter_period
        self.admission_fill = admission_fill
        self.eviction_threshold = eviction_threshold
        self.admission_threshold = 0.0
        self._replicas: dict[int, ViewReplica] = {}

    # --------------------------------------------------------------- storage
    @property
    def used(self) -> int:
        """Number of views currently stored."""
        return len(self._replicas)

    @property
    def free_slots(self) -> int:
        """Remaining capacity in views."""
        return self.capacity - len(self._replicas)

    @property
    def utilisation(self) -> float:
        """Fraction of the capacity in use (0 when capacity is 0)."""
        if self.capacity == 0:
            return 1.0 if self._replicas else 0.0
        return len(self._replicas) / self.capacity

    def is_full(self) -> bool:
        """True when no free slot remains."""
        return len(self._replicas) >= self.capacity

    def has_view(self, user: int) -> bool:
        """True when this server stores a replica of the user's view."""
        return user in self._replicas

    def replica(self, user: int) -> ViewReplica:
        """The replica of a user's view stored here."""
        try:
            return self._replicas[user]
        except KeyError as exc:
            raise StorageError(
                f"server {self.server_index} does not store view {user}"
            ) from exc

    def replicas(self) -> tuple[ViewReplica, ...]:
        """Every replica stored on this server."""
        return tuple(self._replicas.values())

    def stored_users(self) -> tuple[int, ...]:
        """User ids whose views are stored here."""
        return tuple(self._replicas)

    # ------------------------------------------------------------ add/remove
    def add_replica(
        self,
        user: int,
        write_proxy_broker: int | None = None,
        stats: AccessStatistics | None = None,
        allow_overflow: bool = False,
    ) -> ViewReplica:
        """Store a new replica of ``user``'s view.

        ``allow_overflow`` is used during initial placement when the
        no-replication capacity exactly equals the number of views and
        rounding may leave one server one view short.
        """
        if user in self._replicas:
            raise StorageError(f"server {self.server_index} already stores view {user}")
        if self.is_full() and not allow_overflow:
            raise StorageError(f"server {self.server_index} is full")
        replica = ViewReplica(
            user=user,
            server=self.server_index,
            stats=stats or AccessStatistics(self.counter_slots, self.counter_period),
            write_proxy_broker=write_proxy_broker,
        )
        self._replicas[user] = replica
        return replica

    def remove_replica(self, user: int) -> ViewReplica:
        """Remove and return the replica of ``user``'s view."""
        try:
            return self._replicas.pop(user)
        except KeyError as exc:
            raise StorageError(
                f"server {self.server_index} does not store view {user}"
            ) from exc

    # --------------------------------------------------- thresholds/eviction
    def update_admission_threshold(self) -> float:
        """Recompute the admission threshold (paper section 3.2).

        The threshold is chosen so that ``admission_fill`` (90% by default) of
        the server's memory is occupied by views whose utility is above the
        threshold; when the server is less full than that, the threshold is 0.
        """
        if self.capacity == 0:
            self.admission_threshold = INFINITE_UTILITY
            return self.admission_threshold
        fill_slots = int(self.admission_fill * self.capacity)
        if self.used <= fill_slots or fill_slots == 0:
            self.admission_threshold = 0.0
            return self.admission_threshold
        utilities = sorted(
            (replica.effective_utility() for replica in self._replicas.values()),
            reverse=True,
        )
        # Utility of the replica sitting at the admission-fill boundary.
        boundary_index = min(fill_slots, len(utilities)) - 1
        threshold = utilities[boundary_index]
        self.admission_threshold = 0.0 if threshold == INFINITE_UTILITY else max(0.0, threshold)
        return self.admission_threshold

    def _eviction_target(self) -> int:
        """Occupancy the proactive eviction pass aims for.

        With realistic capacities (hundreds of views per server) this is 95%
        of the capacity; it is additionally capped at ``capacity - 1`` so a
        full server always frees at least one slot — the paper's proactive
        eviction exists precisely so that memory can be freed at any time and
        new replicas can always be admitted somewhere.
        """
        if self.capacity <= 1:
            return self.capacity
        return min(self.capacity - 1, math.ceil(self.eviction_threshold * self.capacity))

    def needs_eviction(self) -> bool:
        """True when occupancy exceeds the proactive eviction target."""
        if self.capacity == 0:
            return bool(self._replicas)
        return self.used > self._eviction_target()

    def eviction_candidates(self) -> list[ViewReplica]:
        """Replicas that may be evicted, least useful first.

        Sole replicas have infinite utility and are never candidates.
        """
        candidates = [
            replica
            for replica in self._replicas.values()
            if replica.effective_utility() != INFINITE_UTILITY
        ]
        candidates.sort(key=lambda replica: replica.effective_utility())
        return candidates

    def excess_replicas(self) -> int:
        """Number of replicas to shed to get back under the eviction target."""
        if self.capacity == 0:
            return len(self._replicas)
        return max(0, self.used - self._eviction_target())

    # ------------------------------------------------------------ maintenance
    def advance_counters(self, timestamp: float) -> None:
        """Rotate the access counters of every stored replica."""
        for replica in self._replicas.values():
            replica.stats.advance(timestamp)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LegacyStorageServer(index={self.server_index}, used={self.used}/"
            f"{self.capacity}, threshold={self.admission_threshold:.2f})"
        )


__all__ = ["LegacyStorageServer"]
