"""Frozen seed copy of :mod:`repro.core.routing` (parity reference).

Kept verbatim for the legacy object path: the table-backed core modules
have been restructured around integer replica ids, while the legacy engine
must keep executing exactly the seed code.  Do not optimise or refactor.
"""


from __future__ import annotations

from ..exceptions import RoutingError
from ..topology.base import ClusterTopology


class RoutingService:
    """Closest-replica resolution plus routing-update fan-out computation."""

    def __init__(self, topology: ClusterTopology) -> None:
        self.topology = topology
        self._broker_indices = tuple(broker.index for broker in topology.brokers)

    # ----------------------------------------------------------- resolution
    def closest_replica(self, broker: int, replica_devices: set[int] | tuple[int, ...]) -> int:
        """Replica device closest to ``broker``; ties break on device index."""
        if not replica_devices:
            raise RoutingError("view has no replica to route to")
        if len(replica_devices) == 1:
            return next(iter(replica_devices))
        distances = self.topology.distance_row(broker)
        return min(replica_devices, key=lambda device: (distances[device], device))

    def routing_table_for(self, broker: int, replica_map: dict[int, set[int]]) -> dict[int, int]:
        """Full routing table of one broker (used by tests and the API layer)."""
        return {
            user: self.closest_replica(broker, devices)
            for user, devices in replica_map.items()
            if devices
        }

    # ------------------------------------------------------------- fan-out
    def affected_brokers(
        self,
        before: set[int] | tuple[int, ...],
        after: set[int] | tuple[int, ...],
    ) -> tuple[int, ...]:
        """Brokers whose closest replica changes when the set goes from
        ``before`` to ``after``.

        The routing policy is deterministic, so the write proxy only notifies
        these brokers (paper section 3.2, "Routing tables").
        """
        changed = []
        for broker in self._broker_indices:
            old = self.closest_replica(broker, before) if before else None
            new = self.closest_replica(broker, after) if after else None
            if old != new:
                changed.append(broker)
        return tuple(changed)

    def next_closest(self, device: int, replica_devices: set[int]) -> int | None:
        """Closest *other* replica as seen from ``device`` (None when sole)."""
        others = [d for d in replica_devices if d != device]
        if not others:
            return None
        distances = self.topology.distance_row(device)
        return min(others, key=lambda d: (distances[d], d))


__all__ = ["RoutingService"]
