"""Fault events injected into a simulation run.

A *fault event* is one timestamped change of the cluster's infrastructure:
a storage server crashing (its in-memory views are lost and must be
recovered), a server coming back, or a node gracefully leaving/joining the
cluster (elastic capacity — a drain copies its views out before shutdown).
Scenario generators (:mod:`repro.scenarios.faults`) emit streams of these
events; the cluster simulator interleaves them with the request log and
applies each one at its simulated timestamp.

Events reference storage servers by *position* (0 .. num_servers - 1, the
same indexing the placement strategies and the memory budget use), not by
leaf device index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..simulator.engine import ClusterSimulator


@dataclass(frozen=True)
class FaultEvent:
    """Base class of every infrastructure fault event."""

    timestamp: float

    def apply(self, simulator: "ClusterSimulator") -> None:
        """Apply the event to a running simulation."""
        raise NotImplementedError


@dataclass(frozen=True)
class ServerCrash(FaultEvent):
    """A storage server fails abruptly; its in-memory views are lost.

    Views replicated elsewhere stay available; views whose only replica was
    on the crashed server are re-fetched from the persistent store
    (WAL-driven recovery, paper sections 2.2 and 3.3).
    """

    position: int = 0

    def apply(self, simulator: "ClusterSimulator") -> None:
        simulator.crash_server(self.position, self.timestamp)


@dataclass(frozen=True)
class ServerRecovery(FaultEvent):
    """A previously crashed (or drained) server rejoins with empty memory."""

    position: int = 0

    def apply(self, simulator: "ClusterSimulator") -> None:
        simulator.restore_server(self.position, self.timestamp)


@dataclass(frozen=True)
class NodeLeave(FaultEvent):
    """A server leaves gracefully: its views are copied out before shutdown.

    Unlike a crash, a drain never touches the persistent store — every view
    is transferred from the leaving server to its new host over the network.
    """

    position: int = 0

    def apply(self, simulator: "ClusterSimulator") -> None:
        simulator.drain_server(self.position, self.timestamp)


@dataclass(frozen=True)
class NodeJoin(FaultEvent):
    """A drained (or crashed) node rejoins the cluster, adding capacity back."""

    position: int = 0

    def apply(self, simulator: "ClusterSimulator") -> None:
        simulator.restore_server(self.position, self.timestamp)


__all__ = ["FaultEvent", "NodeJoin", "NodeLeave", "ServerCrash", "ServerRecovery"]
