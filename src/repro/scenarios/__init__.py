"""Failure and churn scenarios for the cluster simulator.

This package turns the simulator from a benign trace replayer into a fault
harness: scenarios inject server crashes with WAL-driven recovery, rack
outages, elastic node churn, diurnal load modulation and regional flash
crowds into any :class:`~repro.simulator.engine.ClusterSimulator` run, for
any placement strategy.

The pieces:

* :mod:`repro.scenarios.events` — the fault-event primitives applied by the
  simulator (crash, recovery, graceful leave/join);
* :mod:`repro.scenarios.base` — the :class:`Scenario` interface, the
  deterministic :class:`ScenarioContext`, and scenario composition;
* :mod:`repro.scenarios.faults` — crash/recover, rack-outage and
  node-churn generators;
* :mod:`repro.scenarios.load` — diurnal thinning and regional multi-target
  flash crowds.

Quick example::

    from repro.scenarios import CrashRecoverScenario
    simulator = ClusterSimulator(topology, graph, strategy, config,
                                 scenario=CrashRecoverScenario(
                                     crash_time=6 * HOUR,
                                     recover_time=18 * HOUR,
                                     count=2))
    result = simulator.run(log)
    assert result.unavailable_views == 0
"""

from .base import CompositeScenario, Scenario, ScenarioContext
from .events import FaultEvent, NodeJoin, NodeLeave, ServerCrash, ServerRecovery
from .faults import CrashRecoverScenario, NodeChurnScenario, RackOutageScenario
from .load import DiurnalLoadScenario, RegionalFlashCrowdScenario

__all__ = [
    "CompositeScenario",
    "CrashRecoverScenario",
    "DiurnalLoadScenario",
    "FaultEvent",
    "NodeChurnScenario",
    "NodeJoin",
    "NodeLeave",
    "RackOutageScenario",
    "RegionalFlashCrowdScenario",
    "Scenario",
    "ScenarioContext",
    "ServerCrash",
    "ServerRecovery",
]
