"""Scenario interface: pluggable fault and load dynamics for simulations.

A :class:`Scenario` describes *what the world does* to a cluster during a
run, independently of the placement strategy being evaluated.  It
contributes two things:

* a stream of :class:`~repro.scenarios.events.FaultEvent` objects (server
  crashes and recoveries, node churn) that the simulator applies in
  simulated time, and
* a request-log transformation (diurnal load modulation, flash crowds) that
  reshapes the workload before the run starts.

Both are derived deterministically from a :class:`ScenarioContext`, so the
same seed always produces the same scenario — a hard requirement for the
determinism regression tests and for comparing strategies under identical
conditions.  Scenarios compose: :class:`CompositeScenario` merges the fault
streams and chains the log transformations of several scenarios.
"""

from __future__ import annotations

import random
from abc import ABC
from dataclasses import dataclass

from ..socialgraph.graph import SocialGraph
from ..topology.base import ClusterTopology
from ..workload.requests import RequestLog
from ..workload.stream import EventStream, as_stream
from .events import FaultEvent


@dataclass(frozen=True)
class ScenarioContext:
    """Everything a scenario may inspect when materialising itself.

    Scenarios must derive all randomness from :meth:`rng` so that two runs
    with the same seed produce identical event streams and workloads.
    """

    topology: ClusterTopology
    graph: SocialGraph
    seed: int

    def rng(self, salt: str) -> random.Random:
        """Deterministic random generator, independent per ``salt``.

        Seeding with a string goes through Python's deterministic
        byte-hashing path (not the randomised ``hash()``), so streams are
        stable across processes.
        """
        return random.Random(f"{self.seed}:{salt}")


class Scenario(ABC):
    """A pluggable description of infrastructure faults and load dynamics."""

    #: Human-readable name used in reports and rng salting.
    name: str = "scenario"

    def fault_events(self, context: ScenarioContext) -> list[FaultEvent]:
        """Timestamped infrastructure faults to inject (may be empty)."""
        return []

    def transform_stream(self, stream: EventStream, context: ScenarioContext) -> EventStream:
        """Reshape the workload stream (identity by default).

        This is the primary transform hook: the simulator stages scenarios
        at the chunk level, so load scenarios reshape paper-scale workloads
        without materialising them.  Subclasses that only override the
        legacy :meth:`transform_log` are still honoured — the stream is
        materialised, transformed and re-wrapped for them.
        """
        if type(self).transform_log is not Scenario.transform_log:
            return as_stream(self.transform_log(stream.materialise(), context))
        return stream

    def transform_log(self, log: RequestLog, context: ScenarioContext) -> RequestLog:
        """Reshape a materialised request log (adapter over the stream path).

        Routes to :meth:`transform_stream` only when the subclass actually
        overrides it; otherwise this is the identity, so a legacy subclass
        whose ``transform_log`` override delegates to ``super()`` keeps the
        pre-stream behaviour instead of recursing back into itself.
        """
        if type(self).transform_stream is not Scenario.transform_stream:
            return self.transform_stream(as_stream(log), context).materialise()
        return log


class CompositeScenario(Scenario):
    """Several scenarios applied together.

    Fault events are merged into one time-ordered stream; workload
    transformations are chained in the order the scenarios were given.
    """

    name = "composite"

    def __init__(self, *scenarios: Scenario) -> None:
        self.scenarios = tuple(scenarios)
        self.name = "+".join(s.name for s in scenarios) or "composite"

    def fault_events(self, context: ScenarioContext) -> list[FaultEvent]:
        events: list[FaultEvent] = []
        for scenario in self.scenarios:
            events.extend(scenario.fault_events(context))
        events.sort(key=lambda event: event.timestamp)
        return events

    def transform_stream(self, stream: EventStream, context: ScenarioContext) -> EventStream:
        for scenario in self.scenarios:
            stream = scenario.transform_stream(stream, context)
        return stream


__all__ = ["CompositeScenario", "Scenario", "ScenarioContext"]
