"""Infrastructure-fault scenario generators.

Three families of faults, all expressed as streams of
:class:`~repro.scenarios.events.FaultEvent`:

* :class:`CrashRecoverScenario` — one or more servers crash at a given time
  and (optionally) come back later, exercising WAL-driven recovery;
* :class:`RackOutageScenario` — every server under one rack switch goes
  down at once (a switch or power failure), modelling correlated failures;
* :class:`NodeChurnScenario` — random graceful leaves and rejoins over an
  interval, modelling elastic capacity.

Every generator draws its random choices from the scenario context's
seeded generator, so a given seed always yields the same fault stream.
"""

from __future__ import annotations

from ..exceptions import SimulationError
from .base import Scenario, ScenarioContext
from .events import FaultEvent, NodeJoin, NodeLeave, ServerCrash, ServerRecovery


def _position_of_device(context: ScenarioContext) -> dict[int, int]:
    """Map leaf device index -> storage-server position."""
    return {
        server.index: position
        for position, server in enumerate(context.topology.servers)
    }


class CrashRecoverScenario(Scenario):
    """Crash ``count`` servers at ``crash_time``; recover them later.

    ``positions`` pins the crashed servers; when omitted they are sampled
    deterministically from the seed.  ``recover_time=None`` means the
    servers never come back (permanent capacity loss).  ``graceful=True``
    turns the crashes into drains (views are copied out, no data loss and
    no persistent-store fetches).
    """

    name = "crash-recover"

    def __init__(
        self,
        crash_time: float,
        recover_time: float | None = None,
        positions: tuple[int, ...] | None = None,
        count: int = 1,
        graceful: bool = False,
    ) -> None:
        if recover_time is not None and recover_time <= crash_time:
            raise SimulationError("recover_time must come after crash_time")
        if count < 1:
            raise SimulationError("at least one server must crash")
        self.crash_time = crash_time
        self.recover_time = recover_time
        self.positions = positions
        self.count = count
        self.graceful = graceful

    def fault_events(self, context: ScenarioContext) -> list[FaultEvent]:
        servers = len(context.topology.servers)
        if self.positions is not None:
            positions = self.positions
        else:
            if self.count >= servers:
                raise SimulationError(
                    f"cannot crash {self.count} of {servers} servers; "
                    "at least one must survive"
                )
            rng = context.rng(f"{self.name}:{self.count}")
            positions = tuple(sorted(rng.sample(range(servers), self.count)))
        for position in positions:
            if not 0 <= position < servers:
                raise SimulationError(f"invalid server position {position}")
        down_class = NodeLeave if self.graceful else ServerCrash
        events: list[FaultEvent] = [
            down_class(self.crash_time, position) for position in positions
        ]
        if self.recover_time is not None:
            events.extend(
                ServerRecovery(self.recover_time, position) for position in positions
            )
        return events


class RackOutageScenario(Scenario):
    """Every storage server under one rack switch fails simultaneously.

    ``rack_switch`` pins the failing rack (a switch index whose level is
    ``"rack"``); when omitted one rack is drawn from the seed.  The outage
    is correlated — all servers drop at ``start_time`` and all return at
    ``end_time`` (or never, when ``end_time`` is None).  Requires a tree
    topology; flat clusters have no rack switches.
    """

    name = "rack-outage"

    def __init__(
        self,
        start_time: float,
        end_time: float | None = None,
        rack_switch: int | None = None,
    ) -> None:
        if end_time is not None and end_time <= start_time:
            raise SimulationError("the outage must end after it starts")
        self.start_time = start_time
        self.end_time = end_time
        self.rack_switch = rack_switch

    def fault_events(self, context: ScenarioContext) -> list[FaultEvent]:
        topology = context.topology
        racks = [
            switch.index
            for switch in topology.switches
            if topology.level_of(switch.index) == "rack"
        ]
        if not racks:
            raise SimulationError(
                "rack outages need a topology with rack switches (tree, not flat)"
            )
        if self.rack_switch is not None:
            if self.rack_switch not in racks:
                raise SimulationError(f"{self.rack_switch} is not a rack switch")
            rack = self.rack_switch
        else:
            rack = context.rng(self.name).choice(sorted(racks))
        position_of = _position_of_device(context)
        positions = sorted(
            position_of[device]
            for device in topology.servers_under(rack)
            if device in position_of
        )
        if len(positions) >= len(topology.servers):
            raise SimulationError("a rack outage may not take down every server")
        events: list[FaultEvent] = [
            ServerCrash(self.start_time, position) for position in positions
        ]
        if self.end_time is not None:
            events.extend(
                ServerRecovery(self.end_time, position) for position in positions
            )
        return events


class NodeChurnScenario(Scenario):
    """Random node leaves and rejoins over ``[start_time, end_time]``.

    ``changes`` state transitions are spread uniformly over the interval.
    At each step a node either leaves (gracefully by default, abruptly with
    ``graceful=False``) or a previously departed node rejoins; at most
    ``max_concurrent_down`` nodes are ever down at once, and every departed
    node rejoins at ``end_time`` so the cluster always ends at full
    capacity.
    """

    name = "node-churn"

    def __init__(
        self,
        start_time: float,
        end_time: float,
        changes: int = 6,
        max_concurrent_down: int = 1,
        graceful: bool = True,
    ) -> None:
        if end_time <= start_time:
            raise SimulationError("churn must end after it starts")
        if changes < 1:
            raise SimulationError("churn needs at least one change")
        if max_concurrent_down < 1:
            raise SimulationError("max_concurrent_down must be at least 1")
        self.start_time = start_time
        self.end_time = end_time
        self.changes = changes
        self.max_concurrent_down = max_concurrent_down
        self.graceful = graceful

    def fault_events(self, context: ScenarioContext) -> list[FaultEvent]:
        servers = len(context.topology.servers)
        concurrent_cap = min(self.max_concurrent_down, servers - 1)
        rng = context.rng(f"{self.name}:{self.changes}")
        times = sorted(
            rng.uniform(self.start_time, self.end_time) for _ in range(self.changes)
        )
        down_class = NodeLeave if self.graceful else ServerCrash
        events: list[FaultEvent] = []
        down: list[int] = []
        for when in times:
            rejoin = down and (len(down) >= concurrent_cap or rng.random() < 0.5)
            if rejoin:
                position = down.pop(rng.randrange(len(down)))
                events.append(NodeJoin(when, position))
            else:
                candidates = [p for p in range(servers) if p not in down]
                position = candidates[rng.randrange(len(candidates))]
                down.append(position)
                events.append(down_class(when, position))
        # The cluster ends at full strength: everyone still away rejoins.
        for position in sorted(down):
            events.append(NodeJoin(self.end_time, position))
        return events


__all__ = ["CrashRecoverScenario", "NodeChurnScenario", "RackOutageScenario"]
