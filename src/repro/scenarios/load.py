"""Load-dynamics scenarios: diurnal modulation and regional flash crowds.

Unlike the fault scenarios these do not inject infrastructure events — they
reshape the *workload* before the run starts, as chunk-level transforms on
the columnar event stream (a paper-scale workload is never materialised):

* :class:`DiurnalLoadScenario` thins the request stream with a sinusoidal
  day/night profile, so off-peak hours carry less traffic (social workloads
  are strongly diurnal; adaptation must not thrash when load ebbs);
* :class:`RegionalFlashCrowdScenario` injects several simultaneous flash
  events whose new followers are drawn from one contiguous region of the
  user space, concentrating the extra read load in a part of the cluster
  (the paper's Figure 5 studies a single global flash event; the regional
  multi-target variant is the harder case for replica placement).  The
  small flash fragments are merged into the base stream by the stable
  k-way chunk merge.
"""

from __future__ import annotations

import math
from collections.abc import Iterator

from ..constants import DAY
from ..exceptions import SimulationError
from ..workload.flash import FlashEventSpec, flash_event_stream
from ..workload.stream import (
    EventChunk,
    EventStream,
    KIND_WRITE,
    merge_streams,
)
from .base import Scenario, ScenarioContext


class DiurnalLoadScenario(Scenario):
    """Sinusoidal day/night thinning of the request stream.

    The keep-probability of a read/write at time ``t`` oscillates between
    ``trough_fraction`` (deepest night) and 1.0 (peak), with period
    ``period`` and a phase shift of ``phase`` seconds.  Graph mutations are
    never dropped — the social network evolves regardless of load.
    """

    name = "diurnal"

    def __init__(
        self,
        trough_fraction: float = 0.4,
        period: float = DAY,
        phase: float = 0.0,
    ) -> None:
        if not 0.0 <= trough_fraction <= 1.0:
            raise SimulationError("trough_fraction must lie in [0, 1]")
        if period <= 0:
            raise SimulationError("the diurnal period must be positive")
        self.trough_fraction = trough_fraction
        self.period = period
        self.phase = phase

    def keep_probability(self, timestamp: float) -> float:
        """Probability that a request at ``timestamp`` survives thinning."""
        wave = 0.5 * (1.0 - math.cos(2.0 * math.pi * (timestamp + self.phase) / self.period))
        return self.trough_fraction + (1.0 - self.trough_fraction) * wave

    def transform_stream(self, stream: EventStream, context: ScenarioContext) -> EventStream:
        def _chunks() -> Iterator[EventChunk]:
            # The RNG is created per pass, so re-iterating the transformed
            # stream thins identically; it is consumed once per read/write
            # in stream order, never per chunk.
            rng = context.rng(self.name)
            draw = rng.random
            keep = self.keep_probability
            for chunk in stream.chunks():
                kept = EventChunk()
                append = kept.append
                for kind, timestamp, user, aux in chunk.rows():
                    if kind <= KIND_WRITE and draw() >= keep(timestamp):
                        continue
                    append(kind, timestamp, user, aux)
                if len(kept):
                    yield kept

        return EventStream(_chunks)


class RegionalFlashCrowdScenario(Scenario):
    """Several simultaneous flash crowds from one region of the user space.

    ``targets`` users each gain ``followers`` new followers at
    ``start_time``; the followers unfollow at ``end_time`` and actively
    read their feeds in between.  All followers of one event are drawn from
    a contiguous window of the (community-ordered) user list, so the extra
    read load originates from one neighbourhood of the social graph rather
    than uniformly — the regional hot spot the adaptive placement must
    absorb.
    """

    name = "regional-flash"

    def __init__(
        self,
        start_time: float,
        end_time: float,
        targets: int = 3,
        followers: int = 50,
        reads_per_follower_per_day: float = 4.0,
    ) -> None:
        if end_time <= start_time:
            raise SimulationError("the flash crowd must end after it starts")
        if targets < 1 or followers < 1:
            raise SimulationError("targets and followers must be positive")
        self.start_time = start_time
        self.end_time = end_time
        self.targets = targets
        self.followers = followers
        self.reads_per_follower_per_day = reads_per_follower_per_day

    def plan(self, context: ScenarioContext) -> list[FlashEventSpec]:
        """The flash events this scenario will inject (deterministic)."""
        rng = context.rng(f"{self.name}:{self.targets}")
        users = context.graph.users
        if len(users) < 2:
            raise SimulationError("a flash crowd needs at least two users")
        window = min(len(users), max(2 * self.followers, 20))
        specs: list[FlashEventSpec] = []
        for _ in range(self.targets):
            target = users[rng.randrange(len(users))]
            anchor = rng.randrange(len(users))
            region = [users[(anchor + offset) % len(users)] for offset in range(window)]
            existing = context.graph.followers(target)
            candidates = [
                user for user in region if user != target and user not in existing
            ]
            rng.shuffle(candidates)
            chosen = tuple(candidates[: self.followers])
            if not chosen:
                continue
            specs.append(
                FlashEventSpec(
                    target_user=target,
                    new_followers=chosen,
                    start_time=self.start_time,
                    end_time=self.end_time,
                )
            )
        return specs

    def transform_stream(self, stream: EventStream, context: ScenarioContext) -> EventStream:
        def _chunks() -> Iterator[EventChunk]:
            # Fragments are planned and built per pass with freshly seeded
            # RNGs (specs are tiny next to the base workload), then merged
            # lazily into the base stream.
            rng = context.rng(f"{self.name}:reads")
            fragments = [
                flash_event_stream(spec, self.reads_per_follower_per_day, rng)
                for spec in self.plan(context)
            ]
            return merge_streams(stream, *fragments).chunks()

        return EventStream(_chunks)


__all__ = ["DiurnalLoadScenario", "RegionalFlashCrowdScenario"]
