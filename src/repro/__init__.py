"""DynaSoRe reproduction: an adaptive in-memory view store for social
applications (Bai, Jégou, Junqueira, Leroy — Middleware 2013).

The package is organised as a set of substrates (topology, traffic, social
graph, partitioning, workload, store, persistence), the DynaSoRe core
(placement algorithms and the public key-value API), the baselines the paper
compares against, a trace-driven cluster simulator, and the experiment
harness that regenerates every table and figure of the paper's evaluation.

Quickstart
----------
>>> from repro import (ClusterSpec, TreeTopology, facebook_like, DynaSoReStore)
>>> topology = TreeTopology(ClusterSpec(intermediate_switches=2,
...                                     racks_per_intermediate=2,
...                                     machines_per_rack=4))
>>> graph = facebook_like(users=200, seed=1)
>>> store = DynaSoReStore(topology, graph, extra_memory_pct=50.0)
>>> store.write(0, b"hello world")
1
>>> feed = store.read(1)
"""

from .config import (
    ClusterSpec,
    DynaSoReConfig,
    ExperimentProfile,
    FlatClusterSpec,
    SimulationConfig,
)
from .baselines import (
    HierarchicalMetisPlacement,
    MetisPlacement,
    PlacementStrategy,
    RandomPlacement,
    SparPlacement,
)
from .core import DynaSoRe, DynaSoReStore
from .scenarios import (
    CompositeScenario,
    CrashRecoverScenario,
    DiurnalLoadScenario,
    NodeChurnScenario,
    RackOutageScenario,
    RegionalFlashCrowdScenario,
    Scenario,
)
from .simulator import ClusterSimulator, FaultRecord, SimulationResult, run_comparison, run_simulation
from .socialgraph import SocialGraph, facebook_like, livejournal_like, twitter_like
from .store import MemoryBudget
from .topology import FlatTopology, TreeTopology
from .workload import (
    CelebrityReadStormGenerator,
    CelebrityStormConfig,
    EventChunk,
    EventStream,
    NewsActivityTraceConfig,
    NewsActivityTraceGenerator,
    ParetoBurstConfig,
    ParetoBurstWorkloadGenerator,
    RequestLog,
    SyntheticWorkloadConfig,
    SyntheticWorkloadGenerator,
    as_stream,
    merge_streams,
    read_trace,
    trace_content_hash,
    write_trace,
)

__version__ = "1.0.0"

__all__ = [
    "CelebrityReadStormGenerator",
    "CelebrityStormConfig",
    "ClusterSimulator",
    "ClusterSpec",
    "CompositeScenario",
    "CrashRecoverScenario",
    "DiurnalLoadScenario",
    "EventChunk",
    "EventStream",
    "ParetoBurstConfig",
    "ParetoBurstWorkloadGenerator",
    "as_stream",
    "merge_streams",
    "read_trace",
    "trace_content_hash",
    "write_trace",
    "DynaSoRe",
    "DynaSoReConfig",
    "DynaSoReStore",
    "ExperimentProfile",
    "FaultRecord",
    "FlatClusterSpec",
    "FlatTopology",
    "NodeChurnScenario",
    "RackOutageScenario",
    "RegionalFlashCrowdScenario",
    "Scenario",
    "HierarchicalMetisPlacement",
    "MemoryBudget",
    "MetisPlacement",
    "NewsActivityTraceConfig",
    "NewsActivityTraceGenerator",
    "PlacementStrategy",
    "RandomPlacement",
    "RequestLog",
    "SimulationConfig",
    "SimulationResult",
    "SocialGraph",
    "SparPlacement",
    "SyntheticWorkloadConfig",
    "SyntheticWorkloadGenerator",
    "TreeTopology",
    "facebook_like",
    "livejournal_like",
    "run_comparison",
    "run_simulation",
    "twitter_like",
    "__version__",
]
