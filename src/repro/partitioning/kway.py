"""Multilevel k-way graph partitioner (METIS replacement).

The paper's METIS baseline statically assigns user views to servers by
partitioning the social graph into one part per server.  METIS itself is not
available offline, so this module implements the same multilevel scheme from
scratch:

1. *Coarsening* — contract heavy-edge matchings until the graph is small.
2. *Initial partitioning* — greedy region growing on the coarsest graph,
   seeded from high-degree nodes, balanced by node weight.
3. *Uncoarsening* — project the partition back level by level, running
   boundary Kernighan–Lin/FM refinement and a rebalancing pass at each level.

The result is a balanced partition with a low edge cut — exactly what the
baseline needs (absolute METIS parity is not required; the baseline's role in
the paper is "a good static, locality-aware placement").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Mapping

from ..exceptions import PartitioningError
from .coarsen import coarsen_to_size
from .quality import balance_ratio, edge_cut, validate_partition
from .refine import rebalance_partition, refine_partition


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of a k-way partitioning run.

    ``balance`` is the weighted balance ratio when the run was given node
    weights (heaviest part weight over the ideal per-part weight), the plain
    population ratio otherwise.
    """

    assignment: dict[int, int]
    parts: int
    edge_cut: int
    balance: float

    def nodes_by_part(self) -> tuple[tuple[int, ...], ...]:
        """Every part's nodes, built in one pass over the assignment.

        The grouping is computed once and cached on the instance, so
        reporting all ``k`` parts costs O(V) instead of the O(V·k) that
        scanning the assignment dict per part would.
        """
        cached = getattr(self, "_nodes_by_part", None)
        if cached is None:
            groups: list[list[int]] = [[] for _ in range(self.parts)]
            for node, part in self.assignment.items():
                groups[part].append(node)
            cached = tuple(tuple(group) for group in groups)
            object.__setattr__(self, "_nodes_by_part", cached)
        return cached

    def nodes_in_part(self, part: int) -> list[int]:
        """Nodes assigned to one part."""
        if not 0 <= part < self.parts:
            raise PartitioningError(f"part {part} out of range (parts={self.parts})")
        return list(self.nodes_by_part()[part])


def _greedy_initial_partition(
    adjacency: Mapping[int, Mapping[int, int]],
    node_weights: Mapping[int, float],
    parts: int,
    rng: random.Random,
) -> dict[int, int]:
    """Greedy region growing on the coarsest graph.

    Seeds are the heaviest-degree nodes; each part grows by repeatedly
    absorbing the unassigned neighbour with the strongest connection to it,
    switching to the lightest part whenever the current one reaches the
    balanced weight.
    """
    total_weight = sum(node_weights.values())
    target = total_weight / parts if parts else total_weight
    assignment: dict[int, int] = {}
    part_weight = [0.0] * parts

    nodes_by_degree = sorted(
        adjacency, key=lambda n: sum(adjacency[n].values()), reverse=True
    )
    unassigned = set(adjacency)

    for part in range(parts):
        if not unassigned:
            break
        # Seed with the highest-degree unassigned node.
        seed = next(node for node in nodes_by_degree if node in unassigned)
        frontier: dict[int, int] = {seed: 0}
        while frontier and part_weight[part] < target:
            node = max(frontier, key=lambda n: frontier[n])
            frontier.pop(node)
            if node not in unassigned:
                continue
            assignment[node] = part
            unassigned.discard(node)
            part_weight[part] += node_weights[node]
            for neighbour, weight in adjacency[node].items():
                if neighbour in unassigned:
                    frontier[neighbour] = frontier.get(neighbour, 0) + weight

    # Whatever is left goes to the lightest part.
    leftovers = list(unassigned)
    rng.shuffle(leftovers)
    for node in leftovers:
        part = min(range(parts), key=lambda p: part_weight[p])
        assignment[node] = part
        part_weight[part] += node_weights[node]
    return assignment


def partition_kway(
    adjacency: Mapping[int, Mapping[int, int]],
    parts: int,
    seed: int = 7,
    balance_tolerance: float = 1.05,
    refinement_passes: int = 4,
    node_weights: Mapping[int, float] | None = None,
) -> PartitionResult:
    """Partition a weighted undirected graph into ``parts`` balanced parts.

    Parameters
    ----------
    adjacency:
        Symmetric adjacency mapping ``node -> {neighbour -> weight}``.  Every
        node must appear as a key (isolated nodes map to an empty dict).
    parts:
        Number of parts (servers, racks, or intermediate-switch sub-trees).
    seed:
        Random seed controlling matching order and tie breaking.
    balance_tolerance:
        Maximum allowed ratio between the heaviest part and the ideal weight.
    refinement_passes:
        Boundary-refinement sweeps applied at every uncoarsening level.
    node_weights:
        Optional node weights (e.g. expected per-user request rates).  When
        given, the *whole* multilevel stack balances weight instead of node
        count: coarsening sums the weights of contracted nodes, initial
        partitioning grows regions to the weighted target, and refinement
        and the final rebalance enforce the tolerance on weighted part
        mass.  Nodes missing from the mapping weigh 1; an empty or
        non-positive total falls back to unweighted partitioning.
    """
    if parts < 1:
        raise PartitioningError("parts must be at least 1")
    nodes = set(adjacency)
    if node_weights is not None:
        weights = {node: node_weights.get(node, 1) for node in adjacency}
        total = sum(weights.values())
        if total <= 0 or any(weight < 0 for weight in weights.values()):
            node_weights = None
        else:
            node_weights = weights
    if not nodes:
        return PartitionResult(assignment={}, parts=parts, edge_cut=0, balance=1.0)
    if parts == 1:
        assignment = {node: 0 for node in nodes}
        return PartitionResult(assignment=assignment, parts=1, edge_cut=0, balance=1.0)
    if parts >= len(nodes):
        # Degenerate case: at most one node per part.
        assignment = {node: i % parts for i, node in enumerate(sorted(nodes))}
        return PartitionResult(
            assignment=assignment,
            parts=parts,
            edge_cut=edge_cut(adjacency, assignment),
            balance=balance_ratio(assignment, parts, node_weights),
        )

    rng = random.Random(seed)
    mutable_adjacency = {node: dict(neighbours) for node, neighbours in adjacency.items()}

    # 1. Coarsening (weight-conserving: contracted nodes sum their weights).
    coarsen_target = max(parts * 8, 64)
    levels = coarsen_to_size(
        mutable_adjacency, coarsen_target, rng, node_weights=node_weights
    )

    finest_weights: Mapping[int, float] = (
        node_weights
        if node_weights is not None
        else {node: 1 for node in mutable_adjacency}
    )
    if levels:
        coarsest = levels[-1]
        coarse_adjacency: Mapping[int, Mapping[int, int]] = coarsest.adjacency
        coarse_weights: Mapping[int, float] = coarsest.node_weights
    else:
        coarse_adjacency = mutable_adjacency
        coarse_weights = finest_weights

    # 2. Initial partitioning on the coarsest graph.
    assignment = _greedy_initial_partition(coarse_adjacency, coarse_weights, parts, rng)
    total_weight = sum(coarse_weights.values())
    max_part_weight = (total_weight / parts) * balance_tolerance
    refine_partition(
        coarse_adjacency,
        assignment,
        parts,
        node_weights=coarse_weights,
        max_part_weight=max_part_weight,
        passes=refinement_passes,
    )

    # 3. Uncoarsening with refinement at every level.
    for level_index in range(len(levels) - 1, -1, -1):
        level = levels[level_index]
        finer_assignment = {
            fine: assignment[coarse] for fine, coarse in level.fine_to_coarse.items()
        }
        if level_index == 0:
            finer_adjacency: Mapping[int, Mapping[int, int]] = mutable_adjacency
            finer_weights = finest_weights
        else:
            finer = levels[level_index - 1]
            finer_adjacency = finer.adjacency
            finer_weights = finer.node_weights
        finer_total = sum(finer_weights.values())
        finer_limit = (finer_total / parts) * balance_tolerance
        refine_partition(
            finer_adjacency,
            finer_assignment,
            parts,
            node_weights=finer_weights,
            max_part_weight=finer_limit,
            passes=refinement_passes,
        )
        assignment = finer_assignment

    rebalance_partition(
        mutable_adjacency,
        assignment,
        parts,
        node_weights=node_weights,
        tolerance=balance_tolerance,
    )
    validate_partition(assignment, nodes, parts)
    return PartitionResult(
        assignment=assignment,
        parts=parts,
        edge_cut=edge_cut(adjacency, assignment),
        balance=balance_ratio(assignment, parts, node_weights),
    )


def random_partition(
    nodes: list[int] | tuple[int, ...],
    parts: int,
    seed: int = 7,
) -> PartitionResult:
    """Uniform random balanced assignment (the Random baseline's partitioner)."""
    if parts < 1:
        raise PartitioningError("parts must be at least 1")
    rng = random.Random(seed)
    shuffled = list(nodes)
    rng.shuffle(shuffled)
    assignment = {node: i % parts for i, node in enumerate(shuffled)}
    return PartitionResult(
        assignment=assignment,
        parts=parts,
        edge_cut=0,
        balance=balance_ratio(assignment, parts) if assignment else 1.0,
    )


__all__ = ["PartitionResult", "partition_kway", "random_partition"]
