"""Boundary refinement of a k-way partition (Kernighan–Lin / FM style).

After an initial partition is computed (directly or projected from a coarser
level), greedy passes move boundary nodes to the neighbouring part that
maximises the edge-cut gain while respecting the balance constraint.  This is
the same refinement family METIS uses; a handful of passes is enough to reach
good cuts on social graphs.
"""

from __future__ import annotations

from collections.abc import Mapping


def refine_partition(
    adjacency: Mapping[int, Mapping[int, int]],
    assignment: dict[int, int],
    parts: int,
    node_weights: Mapping[int, float] | None = None,
    max_part_weight: float | None = None,
    passes: int = 4,
) -> dict[int, int]:
    """Improve ``assignment`` in place with greedy boundary moves.

    Parameters
    ----------
    adjacency:
        Symmetric weighted adjacency.
    assignment:
        Current node → part mapping (modified in place and returned).
    parts:
        Number of parts.
    node_weights:
        Optional node weights — vertex counts on coarse graphs, or
        fractional activity rates (defaults to 1 per node).  The balance
        constraint below is enforced on this weight, so a gain-positive
        move is rejected when it would overload the target part's
        *weighted* mass.
    max_part_weight:
        Upper bound on the weight of any part after a move.  Defaults to 5%
        above the perfectly balanced weight.
    passes:
        Maximum number of sweeps over the boundary nodes.
    """
    weights = node_weights or {node: 1 for node in adjacency}
    part_weight = [0.0] * parts
    for node, part in assignment.items():
        part_weight[part] += weights[node]
    total_weight = sum(part_weight)
    if max_part_weight is None:
        max_part_weight = (total_weight / parts) * 1.05 if parts else total_weight

    for _ in range(passes):
        moved = 0
        for node, neighbours in adjacency.items():
            current = assignment[node]
            if not neighbours:
                continue
            # Connectivity of the node towards each part it touches.
            connectivity: dict[int, int] = {}
            for neighbour, weight in neighbours.items():
                part = assignment[neighbour]
                connectivity[part] = connectivity.get(part, 0) + weight
            internal = connectivity.get(current, 0)
            best_part = current
            best_gain = 0
            for part, external in connectivity.items():
                if part == current:
                    continue
                gain = external - internal
                if gain <= best_gain:
                    continue
                if part_weight[part] + weights[node] > max_part_weight:
                    continue
                best_part = part
                best_gain = gain
            if best_part != current:
                assignment[node] = best_part
                part_weight[current] -= weights[node]
                part_weight[best_part] += weights[node]
                moved += 1
        if moved == 0:
            break
    return assignment


def rebalance_partition(
    adjacency: Mapping[int, Mapping[int, int]],
    assignment: dict[int, int],
    parts: int,
    node_weights: Mapping[int, float] | None = None,
    tolerance: float = 1.05,
) -> dict[int, int]:
    """Move nodes out of overweight parts until every part fits the tolerance.

    Nodes with the least connectivity to their current part are moved first,
    into the lightest part, so the edge cut suffers as little as possible.
    The tolerance bounds *weighted* part mass when ``node_weights`` is
    given; each finishing part lands at or below the limit, and a part a
    move lands in can exceed it by at most one node's weight — so the final
    heaviest part is bounded by ``ideal·tolerance + max(node weight)``.
    """
    weights = node_weights or {node: 1 for node in adjacency}
    part_weight = [0.0] * parts
    members: list[list[int]] = [[] for _ in range(parts)]
    for node, part in assignment.items():
        part_weight[part] += weights[node]
        members[part].append(node)
    total_weight = sum(part_weight)
    if parts == 0 or total_weight == 0:
        return assignment
    limit = (total_weight / parts) * tolerance

    for part in range(parts):
        if part_weight[part] <= limit:
            continue
        # Sort members by how weakly they are connected to this part.
        def internal_connectivity(node: int) -> int:
            return sum(
                weight
                for neighbour, weight in adjacency[node].items()
                if assignment[neighbour] == part
            )

        candidates = sorted(members[part], key=internal_connectivity)
        for node in candidates:
            if part_weight[part] <= limit:
                break
            target = min(range(parts), key=lambda p: part_weight[p])
            if target == part:
                break
            assignment[node] = target
            part_weight[part] -= weights[node]
            part_weight[target] += weights[node]
    return assignment


__all__ = ["rebalance_partition", "refine_partition"]
