"""Partition quality metrics: edge cut and balance.

The METIS baselines of the paper minimise the *edge cut* — the number of
social links whose endpoints land in different partitions — subject to a
balance constraint so that no server receives many more views than the
others.  These metrics are used by the partitioner's refinement phase, by the
tests and by the partitioning ablation benchmark.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..exceptions import PartitioningError

Adjacency = Mapping[int, Mapping[int, int]]


def edge_cut(adjacency: Adjacency, assignment: Mapping[int, int]) -> int:
    """Total weight of edges whose endpoints are in different parts."""
    cut = 0
    for node, neighbours in adjacency.items():
        part = assignment[node]
        for neighbour, weight in neighbours.items():
            if neighbour > node and assignment[neighbour] != part:
                cut += weight
    return cut


def part_weights(
    assignment: Mapping[int, int],
    parts: int,
    node_weights: Mapping[int, float] | None = None,
) -> list[float]:
    """Total node weight assigned to each part.

    ``node_weights`` may be integral (vertex counts) or fractional
    (expected per-user request rates); nodes missing from the mapping
    weigh 1, so a partial activity profile still covers the whole graph.
    """
    weights: list[float] = [0] * parts
    for node, part in assignment.items():
        if part < 0 or part >= parts:
            raise PartitioningError(f"node {node} assigned to invalid part {part}")
        weights[part] += 1 if node_weights is None else node_weights.get(node, 1)
    return weights


def balance_ratio(
    assignment: Mapping[int, int],
    parts: int,
    node_weights: Mapping[int, float] | None = None,
) -> float:
    """Maximum part weight divided by the ideal (perfectly balanced) weight.

    1.0 means perfectly balanced; METIS-style partitioners typically accept a
    few percent of imbalance.  With ``node_weights`` this is the *weighted*
    balance — the load-imbalance figure of an activity-weighted shard
    assignment (heaviest shard's expected work over the per-shard ideal).
    """
    weights = part_weights(assignment, parts, node_weights)
    total = sum(weights)
    if total == 0 or parts == 0:
        return 1.0
    ideal = total / parts
    return max(weights) / ideal if ideal > 0 else 1.0


def validate_partition(assignment: Mapping[int, int], nodes: set[int], parts: int) -> None:
    """Raise when the assignment does not cover exactly the requested nodes."""
    assigned = set(assignment)
    if assigned != nodes:
        missing = nodes - assigned
        extra = assigned - nodes
        raise PartitioningError(
            f"partition does not cover the graph (missing={len(missing)}, extra={len(extra)})"
        )
    for node, part in assignment.items():
        if not 0 <= part < parts:
            raise PartitioningError(f"node {node} assigned to invalid part {part}")


__all__ = ["Adjacency", "balance_ratio", "edge_cut", "part_weights", "validate_partition"]
