"""Graph coarsening by heavy-edge matching.

Multilevel partitioners (METIS and friends) repeatedly contract a matching of
the graph, preferring heavy edges, until the graph is small enough to
partition directly.  Each coarse node remembers the fine nodes it represents
so partitions can be projected back during uncoarsening.
"""

from __future__ import annotations

import random
from collections.abc import Mapping
from dataclasses import dataclass


@dataclass
class CoarseGraph:
    """A coarsened graph plus the mapping back to the finer level."""

    #: adjacency: coarse node -> {coarse neighbour -> edge weight}
    adjacency: dict[int, dict[int, int]]
    #: node weight — the number of original vertices represented in the
    #: unweighted case, or the summed caller-supplied node weights (e.g.
    #: expected per-user request rates) when coarsening a weighted graph
    node_weights: dict[int, float]
    #: fine node -> coarse node
    fine_to_coarse: dict[int, int]

    @property
    def num_nodes(self) -> int:
        """Number of coarse nodes."""
        return len(self.adjacency)


def coarsen_once(
    adjacency: dict[int, dict[int, int]],
    node_weights: Mapping[int, float],
    rng: random.Random,
    max_node_weight: float | None = None,
) -> CoarseGraph:
    """Contract one heavy-edge matching of the graph.

    Nodes are visited in random order; each unmatched node is merged with its
    unmatched neighbour of heaviest edge weight (ties broken by lower node
    weight to keep coarse nodes balanced).  ``max_node_weight`` caps the size
    of a coarse node so a single community cannot swallow the whole graph.
    """
    nodes = list(adjacency)
    rng.shuffle(nodes)
    matched: dict[int, int] = {}
    for node in nodes:
        if node in matched:
            continue
        best_neighbour = None
        best_weight = -1
        best_partner_weight = None
        for neighbour, weight in adjacency[node].items():
            if neighbour in matched or neighbour == node:
                continue
            if max_node_weight is not None:
                if node_weights[node] + node_weights[neighbour] > max_node_weight:
                    continue
            partner_weight = node_weights[neighbour]
            if weight > best_weight or (
                weight == best_weight
                and best_partner_weight is not None
                and partner_weight < best_partner_weight
            ):
                best_neighbour = neighbour
                best_weight = weight
                best_partner_weight = partner_weight
        if best_neighbour is None:
            matched[node] = node
        else:
            matched[node] = node
            matched[best_neighbour] = node

    # Build the coarse graph.
    fine_to_coarse: dict[int, int] = {}
    coarse_ids: dict[int, int] = {}
    for fine, representative in matched.items():
        if representative not in coarse_ids:
            coarse_ids[representative] = len(coarse_ids)
        fine_to_coarse[fine] = coarse_ids[representative]

    coarse_adjacency: dict[int, dict[int, int]] = {i: {} for i in range(len(coarse_ids))}
    coarse_weights: dict[int, int] = {i: 0 for i in range(len(coarse_ids))}
    for fine, coarse in fine_to_coarse.items():
        coarse_weights[coarse] += node_weights[fine]
        for neighbour, weight in adjacency[fine].items():
            coarse_neighbour = fine_to_coarse[neighbour]
            if coarse_neighbour == coarse:
                continue
            row = coarse_adjacency[coarse]
            row[coarse_neighbour] = row.get(coarse_neighbour, 0) + weight

    return CoarseGraph(
        adjacency=coarse_adjacency,
        node_weights=coarse_weights,
        fine_to_coarse=fine_to_coarse,
    )


def coarsen_to_size(
    adjacency: dict[int, dict[int, int]],
    target_size: int,
    rng: random.Random,
    node_weights: Mapping[int, float] | None = None,
) -> list[CoarseGraph]:
    """Repeatedly coarsen until the graph has at most ``target_size`` nodes.

    Returns the list of coarsening levels (finest first).  Coarsening stops
    early when a round shrinks the graph by less than 10%, which indicates the
    matching has become ineffective (typical for star-like graphs).

    ``node_weights`` seeds the finest level (defaults to 1 per node);
    contracted nodes carry the *sum* of the weights they absorb, so every
    coarse level conserves the total weight and the node-weight cap keeps a
    single heavy community from swallowing the graph regardless of whether
    weight means "vertices represented" or "expected request rate".
    """
    levels: list[CoarseGraph] = []
    current_adjacency = adjacency
    if node_weights is None:
        current_weights: dict[int, float] = {node: 1 for node in adjacency}
        total_weight: float = len(adjacency)
        max_node_weight: float = max(1, total_weight // max(1, target_size // 2))
    else:
        current_weights = {node: node_weights.get(node, 1) for node in adjacency}
        total_weight = sum(current_weights.values())
        max_node_weight = max(
            max(current_weights.values(), default=1.0),
            total_weight / max(1, target_size // 2),
        )
    while len(current_adjacency) > target_size:
        level = coarsen_once(current_adjacency, current_weights, rng, max_node_weight)
        if level.num_nodes >= 0.9 * len(current_adjacency):
            break
        levels.append(level)
        current_adjacency = level.adjacency
        current_weights = level.node_weights
    return levels


__all__ = ["CoarseGraph", "coarsen_once", "coarsen_to_size"]
