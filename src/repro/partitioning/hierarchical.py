"""Hierarchical partitioning matching the data-center tree (hMETIS baseline).

The paper's hierarchical METIS baseline first partitions the social graph
into one part per *intermediate switch*, then recursively re-partitions each
part across the racks of that switch and finally across the servers of each
rack (section 4.1).  Compared with flat k-way partitioning this keeps the
views of friends that could not be co-located on the same server at least in
the same sub-tree, so their traffic avoids the top switch.
"""

from __future__ import annotations

import random
from collections.abc import Mapping
from dataclasses import dataclass

from ..config import ClusterSpec
from ..exceptions import PartitioningError
from .kway import PartitionResult, partition_kway
from .quality import balance_ratio, edge_cut


@dataclass(frozen=True)
class HierarchicalPartitionResult:
    """Result of a hierarchical partitioning run.

    ``server_assignment`` maps each node to a flat server index in
    ``range(total_servers)`` where servers are numbered rack by rack,
    intermediate switch by intermediate switch — the same order in which
    :class:`repro.topology.TreeTopology` creates them.
    """

    server_assignment: dict[int, int]
    intermediate_assignment: dict[int, int]
    rack_assignment: dict[int, int]
    total_servers: int
    edge_cut: int
    balance: float


def _restrict_adjacency(
    adjacency: Mapping[int, Mapping[int, int]], nodes: set[int]
) -> dict[int, dict[int, int]]:
    """Sub-graph induced by ``nodes`` (edges leaving the set are dropped)."""
    return {
        node: {n: w for n, w in adjacency[node].items() if n in nodes}
        for node in nodes
    }


def hierarchical_partition(
    adjacency: Mapping[int, Mapping[int, int]],
    spec: ClusterSpec,
    seed: int = 7,
    balance_tolerance: float = 1.05,
) -> HierarchicalPartitionResult:
    """Recursively partition a graph over the cluster tree described by ``spec``.

    Level 1 splits the graph across intermediate switches, level 2 splits
    each of those parts across the racks of the switch, level 3 splits each
    rack part across the rack's servers.
    """
    nodes = set(adjacency)
    if not nodes:
        return HierarchicalPartitionResult(
            server_assignment={},
            intermediate_assignment={},
            rack_assignment={},
            total_servers=spec.total_servers,
            edge_cut=0,
            balance=1.0,
        )

    rng = random.Random(seed)
    top = partition_kway(
        adjacency, spec.intermediate_switches, seed=seed, balance_tolerance=balance_tolerance
    )
    intermediate_assignment = dict(top.assignment)
    rack_assignment: dict[int, int] = {}
    server_assignment: dict[int, int] = {}

    for inter_index in range(spec.intermediate_switches):
        inter_nodes = {n for n, p in intermediate_assignment.items() if p == inter_index}
        if not inter_nodes:
            continue
        inter_adjacency = _restrict_adjacency(adjacency, inter_nodes)
        racks = partition_kway(
            inter_adjacency,
            spec.racks_per_intermediate,
            seed=rng.randrange(1 << 30),
            balance_tolerance=balance_tolerance,
        )
        for rack_index in range(spec.racks_per_intermediate):
            global_rack = inter_index * spec.racks_per_intermediate + rack_index
            rack_nodes = {n for n, p in racks.assignment.items() if p == rack_index}
            for node in rack_nodes:
                rack_assignment[node] = global_rack
            if not rack_nodes:
                continue
            rack_adjacency = _restrict_adjacency(adjacency, rack_nodes)
            servers = partition_kway(
                rack_adjacency,
                spec.servers_per_rack,
                seed=rng.randrange(1 << 30),
                balance_tolerance=balance_tolerance,
            )
            for node, server_index in servers.assignment.items():
                server_assignment[node] = global_rack * spec.servers_per_rack + server_index

    if set(server_assignment) != nodes:
        raise PartitioningError("hierarchical partition failed to cover every node")

    return HierarchicalPartitionResult(
        server_assignment=server_assignment,
        intermediate_assignment=intermediate_assignment,
        rack_assignment=rack_assignment,
        total_servers=spec.total_servers,
        edge_cut=edge_cut(adjacency, server_assignment),
        balance=balance_ratio(server_assignment, spec.total_servers),
    )


def flat_partition_for_spec(
    adjacency: Mapping[int, Mapping[int, int]],
    spec: ClusterSpec,
    seed: int = 7,
) -> PartitionResult:
    """Flat METIS-style partition with one part per server of ``spec``."""
    return partition_kway(adjacency, spec.total_servers, seed=seed)


__all__ = [
    "HierarchicalPartitionResult",
    "flat_partition_for_spec",
    "hierarchical_partition",
]
