"""User → shard assignment for the sharded replay engine.

The sharded runner (``repro.simulator.shard``) splits one simulation's
*request stream* across worker processes.  The assignment lives here because
it is exactly the k-way graph-partitioning problem the placement baselines
already solve: pack tightly-connected users onto the same shard so a worker's
requests touch a locality-coherent slice of the cluster, and keep shard
populations balanced so no worker becomes the critical path.

The product is a :class:`ShardAssignment` carrying a dense ``bytes`` map
indexed by user id — shard workers classify a whole :class:`EventChunk`'s
``users`` column at C speed with ``bytes(map(shard_map.__getitem__, users))``
and a ``bytes.translate`` selector, so the lookup structure matters as much
as the cut quality.  Users that ever appear in a stream without being part of
the initial graph (an open universe — the partitioned runner rejects those
streams anyway) still get a deterministic owner, ``user % shards``, so every
worker classifies identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import PartitioningError
from ..socialgraph.graph import SocialGraph
from .kway import partition_kway

__all__ = ["ShardAssignment", "assign_user_shards"]

#: k-way refinement is O(passes * edges); two passes recover most of the
#: locality win at half the prepare cost (the assignment is computed once
#: per run, but paper-scale graphs have millions of edges).
_REFINEMENT_PASSES = 2


@dataclass(frozen=True)
class ShardAssignment:
    """Deterministic user → shard mapping for one sharded run.

    ``shard_map`` is a dense ``bytes`` whose index is the user id; ids at or
    beyond ``len(shard_map)`` (and ids the graph never contained) own shard
    ``user % shards``.  Shard ids therefore fit one byte: ``shards <= 256``.
    """

    shards: int
    shard_map: bytes
    #: users of the initial graph per shard (balance diagnostic)
    populations: tuple[int, ...]
    #: edges of the undirected adjacency crossing shards (locality diagnostic)
    edge_cut: int

    def owner_of(self, user: int) -> int:
        """The shard that owns ``user``'s requests."""
        if 0 <= user < len(self.shard_map):
            return self.shard_map[user]
        return user % self.shards


def assign_user_shards(
    graph: SocialGraph, shards: int, seed: int = 7
) -> ShardAssignment:
    """Partition the graph's users into ``shards`` balanced locality groups.

    Uses the multilevel k-way partitioner over the social graph's symmetric
    adjacency (mutual follows weigh double), the same objective the METIS
    baseline optimises for server placement — tightly-coupled users land on
    one shard, so one worker's requests hit a coherent server subset.  The
    result is deterministic for a given ``(graph, shards, seed)``.
    """
    if not 1 <= shards <= 256:
        raise PartitioningError("shards must be between 1 and 256")
    users = graph.users
    if not users:
        raise PartitioningError("cannot shard an empty social graph")
    size = max(users) + 1
    if shards == 1:
        return ShardAssignment(
            shards=1,
            shard_map=bytes(size),
            populations=(len(users),),
            edge_cut=0,
        )
    result = partition_kway(
        graph.undirected_adjacency(),
        shards,
        seed=seed,
        refinement_passes=_REFINEMENT_PASSES,
    )
    # Dense map: graph users take their computed part, holes (ids the graph
    # skipped) fall back to the same modulo rule ``owner_of`` applies past
    # the end of the map, so ownership is one uniform function of user id.
    assignment = result.assignment
    shard_map = bytes(
        assignment.get(user, user % shards) for user in range(size)
    )
    populations = [0] * shards
    for user in users:
        populations[shard_map[user]] += 1
    return ShardAssignment(
        shards=shards,
        shard_map=shard_map,
        populations=tuple(populations),
        edge_cut=result.edge_cut,
    )
