"""User → shard assignment for the sharded replay engine.

The sharded runner (``repro.simulator.shard``) splits one simulation's
*request stream* across worker processes.  The assignment lives here because
it is exactly the k-way graph-partitioning problem the placement baselines
already solve: pack tightly-connected users onto the same shard so a worker's
requests touch a locality-coherent slice of the cluster, and keep shard
populations balanced so no worker becomes the critical path.

Balanced *populations* are only a proxy for balanced *work*: per-shard CPU
tracks the number of read/write events a shard owns, and social workloads
concentrate activity on a few well-connected users.  Passing an activity
profile (:mod:`repro.workload.activity`) to :func:`assign_user_shards`
switches the whole multilevel partitioning stack to balancing expected
request rates, which is what levels the critical-path worker on skewed
workloads.  The assignment changes, but byte-identity of the simulation
result is preserved by construction — the sharded runner produces identical
results for *any* user → shard mapping.

The product is a :class:`ShardAssignment` carrying a dense ``bytes`` map
indexed by user id — shard workers classify a whole :class:`EventChunk`'s
``users`` column at C speed with ``bytes(map(shard_map.__getitem__, users))``
and a ``bytes.translate`` selector, so the lookup structure matters as much
as the cut quality.  Users that ever appear in a stream without being part of
the initial graph (an open universe — the partitioned runner rejects those
streams anyway) still get a deterministic owner, ``user % shards``, so every
worker classifies identically.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from ..exceptions import PartitioningError
from ..socialgraph.graph import SocialGraph
from .kway import partition_kway

__all__ = ["ShardAssignment", "assign_user_shards"]

#: k-way refinement is O(passes * edges); two passes recover most of the
#: locality win at half the prepare cost (the assignment is computed once
#: per run, but paper-scale graphs have millions of edges).
_REFINEMENT_PASSES = 2

#: Activity rates are blended with a floor of this fraction of the mean rate
#: so silent users still carry weight: shard CPU is dominated by events, but
#: not *entirely* — per-chunk classification and decision-plane replay cost
#: a little for every user — and a pure-rate weighting would let the
#: partitioner pile thousands of zero-rate users onto one shard.
_ACTIVITY_FLOOR_FRACTION = 0.1


@dataclass(frozen=True)
class ShardAssignment:
    """Deterministic user → shard mapping for one sharded run.

    ``shard_map`` is a dense ``bytes`` whose index is the user id; ids at or
    beyond ``len(shard_map)`` (and ids the graph never contained) own shard
    ``user % shards``.  Shard ids therefore fit one byte: ``shards <= 256``.
    """

    shards: int
    shard_map: bytes
    #: users of the initial graph per shard (balance diagnostic)
    populations: tuple[int, ...]
    #: edges of the undirected adjacency crossing shards (locality diagnostic)
    edge_cut: int
    #: expected activity (request rate) per shard under the profile the
    #: assignment was computed with; ``None`` for population-only assignments
    weighted_populations: tuple[float, ...] | None = None

    def owner_of(self, user: int) -> int:
        """The shard that owns ``user``'s requests."""
        if 0 <= user < len(self.shard_map):
            return self.shard_map[user]
        return user % self.shards

    @property
    def weighted_imbalance(self) -> float | None:
        """Heaviest shard's expected activity over the per-shard ideal.

        This is the projected load-imbalance of the sharded replay's
        measurement plane — 1.0 means the critical-path worker carries
        exactly its fair share of expected events.
        """
        if self.weighted_populations is None:
            return None
        total = sum(self.weighted_populations)
        if total <= 0 or self.shards == 0:
            return 1.0
        return max(self.weighted_populations) * self.shards / total


def _activity_weights(
    activity: object, users: tuple[int, ...] | list[int]
) -> dict[int, float] | None:
    """Node weights from an activity profile, floored and validated.

    Accepts an :class:`~repro.workload.activity.ActivityProfile` or any
    ``user -> rate`` mapping (duck-typed through the ``rates`` attribute).
    Returns ``None`` when the profile is empty, all-zero or carries negative
    rates — callers then fall back to population balancing rather than
    handing the partitioner a degenerate objective.
    """
    rates = getattr(activity, "rates", activity)
    if not isinstance(rates, Mapping) or not rates:
        return None
    total = 0.0
    for user in users:
        rate = rates.get(user, 0.0)
        if rate < 0:
            return None
        total += rate
    if total <= 0:
        return None
    floor = _ACTIVITY_FLOOR_FRACTION * total / len(users)
    return {user: rates.get(user, 0.0) + floor for user in users}


def assign_user_shards(
    graph: SocialGraph,
    shards: int,
    seed: int = 7,
    activity: object | None = None,
) -> ShardAssignment:
    """Partition the graph's users into ``shards`` balanced locality groups.

    Uses the multilevel k-way partitioner over the social graph's symmetric
    adjacency (mutual follows weigh double), the same objective the METIS
    baseline optimises for server placement — tightly-coupled users land on
    one shard, so one worker's requests hit a coherent server subset.  The
    result is deterministic for a given ``(graph, shards, seed, activity)``.

    ``activity`` — an :class:`~repro.workload.activity.ActivityProfile` or a
    plain ``user -> expected request rate`` mapping — switches the balance
    objective from user count to expected *work*: the partitioner balances
    weighted part mass at every level, so a celebrity and her storm of
    followers no longer land on one critical-path shard just because they
    are few.  Rates are blended with a small per-user floor (10% of the mean
    rate) and degenerate profiles (empty, all-zero, negative) fall back to
    population balancing.
    """
    if not 1 <= shards <= 256:
        raise PartitioningError("shards must be between 1 and 256")
    users = graph.users
    if not users:
        raise PartitioningError("cannot shard an empty social graph")
    node_weights = None if activity is None else _activity_weights(activity, users)
    size = max(users) + 1
    if shards == 1:
        return ShardAssignment(
            shards=1,
            shard_map=bytes(size),
            populations=(len(users),),
            edge_cut=0,
            weighted_populations=(
                None if node_weights is None else (sum(node_weights.values()),)
            ),
        )
    result = partition_kway(
        graph.undirected_adjacency(),
        shards,
        seed=seed,
        refinement_passes=_REFINEMENT_PASSES,
        node_weights=node_weights,
    )
    # Dense map: graph users take their computed part, holes (ids the graph
    # skipped) fall back to the same modulo rule ``owner_of`` applies past
    # the end of the map, so ownership is one uniform function of user id.
    assignment = result.assignment
    shard_map = bytes(
        assignment.get(user, user % shards) for user in range(size)
    )
    populations = [0] * shards
    weighted: list[float] | None = None if node_weights is None else [0.0] * shards
    for user in users:
        shard = shard_map[user]
        populations[shard] += 1
        if weighted is not None:
            weighted[shard] += node_weights[user]
    return ShardAssignment(
        shards=shards,
        shard_map=shard_map,
        populations=tuple(populations),
        edge_cut=result.edge_cut,
        weighted_populations=None if weighted is None else tuple(weighted),
    )
