"""Graph partitioning substrate (multilevel k-way and hierarchical)."""

from .coarsen import CoarseGraph, coarsen_once, coarsen_to_size
from .hierarchical import (
    HierarchicalPartitionResult,
    flat_partition_for_spec,
    hierarchical_partition,
)
from .kway import PartitionResult, partition_kway, random_partition
from .quality import balance_ratio, edge_cut, part_weights, validate_partition
from .refine import rebalance_partition, refine_partition
from .sharding import ShardAssignment, assign_user_shards

__all__ = [
    "CoarseGraph",
    "HierarchicalPartitionResult",
    "PartitionResult",
    "ShardAssignment",
    "assign_user_shards",
    "balance_ratio",
    "coarsen_once",
    "coarsen_to_size",
    "edge_cut",
    "flat_partition_for_spec",
    "hierarchical_partition",
    "part_weights",
    "partition_kway",
    "random_partition",
    "rebalance_partition",
    "refine_partition",
    "validate_partition",
]
