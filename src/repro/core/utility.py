"""Algorithm 1 — Estimate Profit (paper section 3.2, "View utility").

The utility of keeping (or creating) a replica of a view on a server is the
network traffic saved by serving its reads from that server instead of the
next-closest replica, minus the traffic required to keep the replica up to
date:

    serverReadCost   = Σ_origin reads(origin) · cost(origin, server)
    nearestReadCost  = Σ_origin reads(origin) · cost(origin, nearest)
    serverWriteCost  = writes · cost(writeProxyBroker, server)
    profit           = nearestReadCost − serverReadCost − serverWriteCost

``cost`` counts the switches a message traverses; origins are the coarse
sub-tree labels recorded by the access statistics.

``stats`` is duck-typed: both the standalone
:class:`~repro.store.stats.AccessStatistics` objects and the table-backed
:class:`~repro.store.tables.StatsHandle` views satisfy the two queries used
here (``reads_by_origin``/``total_writes``).  The amortised estimator
pre-resolves the per-origin reference costs once, because the table-backed
engine prices many candidate servers against the same reference replica.
"""

from __future__ import annotations

from ..topology.base import ClusterTopology


def estimate_profit(
    topology: ClusterTopology,
    stats,
    candidate_server: int,
    reference_server: int,
    write_broker: int | None,
) -> float:
    """Profit of serving the recorded accesses from ``candidate_server``.

    Parameters
    ----------
    topology:
        Cluster topology providing switch costs.
    stats:
        Access statistics of the view (reads by origin plus writes).
    candidate_server:
        Leaf device index of the server whose benefit is being estimated.
    reference_server:
        Leaf device index of the server that would serve the reads otherwise
        (the next-closest replica, or the current server when evaluating the
        creation of a brand-new replica).
    write_broker:
        Leaf device index of the broker hosting the view's write proxy, or
        ``None`` when the view has never been written (write cost is then 0).
    """
    return estimate_profit_values(
        topology,
        stats.reads_by_origin(),
        stats.total_writes(),
        candidate_server,
        reference_server,
        write_broker,
    )


def estimate_profit_values(
    topology: ClusterTopology,
    reads_by_origin: dict[int, float],
    writes: float,
    candidate_server: int,
    reference_server: int,
    write_broker: int | None,
) -> float:
    """:func:`estimate_profit` on primitive inputs.

    The table-backed engine's maintenance sweep resolves the origin dict and
    the write total straight from the statistics columns, so the pricing
    needs no statistics view at all.
    """
    server_read_cost = 0.0
    nearest_read_cost = 0.0
    if reads_by_origin:
        candidate_costs = topology.cost_row(candidate_server)
        reference_costs = topology.cost_row(reference_server)
        cost_from_origin = topology.cost_from_origin
        for origin, reads in reads_by_origin.items():
            candidate_cost = candidate_costs[origin]
            reference_cost = reference_costs[origin]
            if candidate_cost is None or reference_cost is None:
                candidate_cost = cost_from_origin(origin, candidate_server)
                reference_cost = cost_from_origin(origin, reference_server)
            # Routing is deterministic and always picks the closest replica,
            # so reads from an origin only move to the candidate when it is
            # closer; they never become more expensive because the reference
            # replica (the current server or the next-closest replica) still
            # exists.  Without this clamp, views with geographically spread
            # readers would never be replicated, which contradicts the
            # paper's flash-event behaviour (one replica per intermediate
            # switch).
            if candidate_cost < reference_cost:
                server_read_cost += reads * candidate_cost
            else:
                server_read_cost += reads * reference_cost
            nearest_read_cost += reads * reference_cost
    if writes and write_broker is not None:
        server_write_cost = writes * topology.distance_row(write_broker)[candidate_server]
    else:
        server_write_cost = 0.0
    return nearest_read_cost - server_read_cost - server_write_cost


def estimate_profit_pairs(
    topology: ClusterTopology,
    pairs: list,
    writes: float,
    candidate_server: int,
    reference_server: int,
    write_broker: int | None,
) -> float:
    """:func:`estimate_profit_values` over ``(origin, reads)`` pairs.

    The batched maintenance sweep prices every replica of a position
    straight off the statistics columns: it gathers each replica's
    first-record-order origin chain into a reusable ``pairs`` scratch list
    and prices it here, with no per-slot dict materialisation.  The loop
    body is the same as :func:`estimate_profit_values` — same per-origin
    order (the origins cache is built in chain order, so iterating the
    chain and iterating the dict accumulate identical float sequences),
    same cost-row fallback, same deterministic-routing clamp — so the two
    produce bit-for-bit equal profits; like :func:`build_pricing` /
    :func:`priced_profit`, the non-``None`` cost-row entries are the cached
    ``cost_from_origin`` values, keeping every accumulation path exact.
    """
    server_read_cost = 0.0
    nearest_read_cost = 0.0
    if pairs:
        candidate_costs = topology.cost_row(candidate_server)
        reference_costs = topology.cost_row(reference_server)
        cost_from_origin = topology.cost_from_origin
        for origin, reads in pairs:
            candidate_cost = candidate_costs[origin]
            reference_cost = reference_costs[origin]
            if candidate_cost is None or reference_cost is None:
                candidate_cost = cost_from_origin(origin, candidate_server)
                reference_cost = cost_from_origin(origin, reference_server)
            # Deterministic-routing clamp, exactly as estimate_profit_values.
            if candidate_cost < reference_cost:
                server_read_cost += reads * candidate_cost
            else:
                server_read_cost += reads * reference_cost
            nearest_read_cost += reads * reference_cost
    if writes and write_broker is not None:
        server_write_cost = writes * topology.distance_row(write_broker)[candidate_server]
    else:
        server_write_cost = 0.0
    return nearest_read_cost - server_read_cost - server_write_cost


def build_pricing(
    topology: ClusterTopology,
    reads_by_origin: dict[int, float],
    writes: float,
    reference_server: int,
    write_broker: int | None,
    triples: list,
) -> tuple[float, float, list | None]:
    """Resolve the reference-side pricing state of :func:`profit_estimator`.

    The allocation-free twin of the estimator's setup phase: fills the
    caller-supplied ``triples`` scratch list with ``(origin, reads,
    reference_cost)`` rows (``None`` cost marks slow-path origins) and
    returns ``(nearest_read_cost, priced_writes, write_distances)``.
    Together with :func:`priced_profit` it computes bit-for-bit the same
    profits as the closure-based estimator — the batched decision kernel
    uses the pair to avoid one closure and one list allocation per
    evaluated read.
    """
    triples.clear()
    nearest_read_cost = 0.0
    if reads_by_origin:
        reference_costs = topology.cost_row(reference_server)
        cost_from_origin = topology.cost_from_origin
        for origin, reads in reads_by_origin.items():
            reference_cost = reference_costs[origin]
            if reference_cost is None:
                nearest_read_cost += reads * cost_from_origin(origin, reference_server)
                triples.append((origin, reads, None))
            else:
                nearest_read_cost += reads * reference_cost
                triples.append((origin, reads, reference_cost))
    priced_writes = writes if write_broker is not None else 0.0
    write_distances = topology.distance_row(write_broker) if priced_writes else None
    return nearest_read_cost, priced_writes, write_distances


def priced_profit(
    topology: ClusterTopology,
    triples: list,
    nearest_read_cost: float,
    priced_writes: float,
    write_distances,
    reference_server: int,
    candidate_server: int,
) -> float:
    """One candidate evaluation over :func:`build_pricing` state.

    Mirrors the estimator closure of :func:`profit_estimator` exactly,
    including the deterministic-routing clamp and the per-origin
    accumulation order, so the computed floats are identical.
    """
    server_read_cost = 0.0
    if triples:
        candidate_costs = topology.cost_row(candidate_server)
        cost_from_origin = topology.cost_from_origin
        for origin, reads, reference_cost in triples:
            candidate_cost = candidate_costs[origin]
            if candidate_cost is None or reference_cost is None:
                candidate_cost = cost_from_origin(origin, candidate_server)
                reference_cost = cost_from_origin(origin, reference_server)
            if candidate_cost < reference_cost:
                server_read_cost += reads * candidate_cost
            else:
                server_read_cost += reads * reference_cost
    if write_distances is not None:
        server_write_cost = priced_writes * write_distances[candidate_server]
    else:
        server_write_cost = 0.0
    return nearest_read_cost - server_read_cost - server_write_cost


def profit_estimator(
    topology: ClusterTopology,
    stats,
    reference_server: int,
    write_broker: int | None,
):
    """Amortised form of :func:`estimate_profit` for a fixed reference.

    Algorithms 2 and 3 price many candidate servers against the *same*
    reference replica and the *same* access statistics; the reference read
    cost and the per-origin ``(origin, reads, reference cost)`` triples are
    resolved once.  Returns a callable ``candidate_server -> profit``.
    """
    reads_by_origin = stats.reads_by_origin()
    nearest_read_cost = 0.0
    # (origin, reads, reference_cost) with the reference cost pre-resolved;
    # a None reference cost marks origins that need the slow-path lookup.
    triples: list[tuple[int, float, int | None]] = []
    if reads_by_origin:
        reference_costs = topology.cost_row(reference_server)
        cost_from_origin = topology.cost_from_origin
        for origin, reads in reads_by_origin.items():
            reference_cost = reference_costs[origin]
            if reference_cost is None:
                reference_cost = cost_from_origin(origin, reference_server)
                nearest_read_cost += reads * reference_cost
                triples.append((origin, reads, None))
            else:
                nearest_read_cost += reads * reference_cost
                triples.append((origin, reads, reference_cost))
    writes = stats.total_writes()
    priced_writes = writes if write_broker is not None else 0.0
    write_distances = (
        topology.distance_row(write_broker) if priced_writes else None
    )
    cost_row = topology.cost_row
    cost_from_origin = topology.cost_from_origin

    def estimate(candidate_server: int) -> float:
        server_read_cost = 0.0
        if triples:
            candidate_costs = cost_row(candidate_server)
            for origin, reads, reference_cost in triples:
                candidate_cost = candidate_costs[origin]
                if candidate_cost is None or reference_cost is None:
                    candidate_cost = cost_from_origin(origin, candidate_server)
                    reference_cost = cost_from_origin(origin, reference_server)
                # Same clamp as estimate_profit: reads only move to the
                # candidate when it is closer (deterministic routing).
                if candidate_cost < reference_cost:
                    server_read_cost += reads * candidate_cost
                else:
                    server_read_cost += reads * reference_cost
        if write_distances is not None:
            server_write_cost = priced_writes * write_distances[candidate_server]
        else:
            server_write_cost = 0.0
        return nearest_read_cost - server_read_cost - server_write_cost

    return estimate


def replica_utility(
    topology: ClusterTopology,
    stats,
    server: int,
    next_closest_replica: int | None,
    write_broker: int | None,
) -> float:
    """Utility of an *existing* replica (paper: impact of storing the view).

    When the replica is the only copy in the system the caller treats the
    utility as infinite (the replica cannot be evicted); this function is
    only meaningful when ``next_closest_replica`` exists.
    """
    reference = next_closest_replica if next_closest_replica is not None else server
    return estimate_profit(topology, stats, server, reference, write_broker)


__all__ = [
    "build_pricing",
    "estimate_profit",
    "estimate_profit_pairs",
    "estimate_profit_values",
    "priced_profit",
    "profit_estimator",
    "replica_utility",
]
