"""Algorithm 2 — Evaluate Creation of Replica (paper section 3.2).

Upon serving a read, a server re-examines the access statistics of the view:
for every origin that reads the view, it estimates the profit of placing a
new replica on the least-loaded server of that origin's sub-tree.  If the
best profit exceeds both the admission threshold of the target region and
zero, the server asks the view's write proxy to create the replica there.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..store.view import ViewReplica
from ..topology.base import ClusterTopology
from .utility import estimate_profit


@dataclass(frozen=True)
class ReplicationDecision:
    """Outcome of Algorithm 2 for one replica."""

    #: Target server *position* for the new replica, or None when no
    #: profitable placement was found.
    target_position: int | None
    profit: float

    @property
    def should_replicate(self) -> bool:
        """True when a new replica should be requested."""
        return self.target_position is not None


def evaluate_replica_creation(
    topology: ClusterTopology,
    replica: ViewReplica,
    replica_device: int,
    write_broker: int | None,
    least_loaded_server_under,
    admission_threshold_under,
    device_of_position,
    position_available=None,
) -> ReplicationDecision:
    """Run Algorithm 2 for one replica.

    Parameters
    ----------
    topology:
        Cluster topology.
    replica:
        The replica that just served a request (its statistics drive the
        decision).
    replica_device:
        Leaf device index of the server storing ``replica``.
    write_broker:
        Broker hosting the view's write proxy (prices the update traffic of
        the prospective replica).
    least_loaded_server_under:
        Callable ``(origin, user) -> position | None`` returning the
        least-loaded storage-server position under an origin switch that does
        not already store the user's view.
    admission_threshold_under:
        Callable ``(origin) -> float`` returning the lowest admission
        threshold among the servers under an origin switch (the thresholds a
        broker learns through piggybacking).
    device_of_position:
        Callable ``(position) -> leaf device index``.
    position_available:
        Optional callable ``(position) -> bool``; candidates for which it
        returns False are skipped.  The engine passes its server up/down
        mask here so replicas are never created on a crashed or drained
        server, even if a caller's candidate source lags behind a fault.
    """
    best_profit = 0.0
    best_position: int | None = None
    for origin, _reads in replica.stats.reads_by_origin().items():
        candidate_position = least_loaded_server_under(origin, replica.user)
        if candidate_position is None:
            continue
        if position_available is not None and not position_available(candidate_position):
            continue
        candidate_device = device_of_position(candidate_position)
        if candidate_device == replica_device:
            continue
        profit = estimate_profit(
            topology,
            replica.stats,
            candidate_device,
            replica_device,
            write_broker,
        )
        threshold = admission_threshold_under(origin)
        if profit > threshold and profit > best_profit:
            best_position = candidate_position
            best_profit = profit
    return ReplicationDecision(target_position=best_position, profit=best_profit)


__all__ = ["ReplicationDecision", "evaluate_replica_creation"]
