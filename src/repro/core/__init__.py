"""DynaSoRe core: utility, routing, proxies, replication, migration, engine."""

from .api import DynaSoReStore
from .engine import DynaSoRe, INITIAL_PLACEMENTS, fit_assignment_to_capacity
from .migration import MigrationAction, MigrationDecision, evaluate_replica_migration
from .proxies import ProxyDirectory, optimal_proxy_broker
from .replication import ReplicationDecision, evaluate_replica_creation
from .routing import RoutingService
from .utility import estimate_profit, replica_utility

__all__ = [
    "DynaSoRe",
    "DynaSoReStore",
    "INITIAL_PLACEMENTS",
    "MigrationAction",
    "MigrationDecision",
    "ProxyDirectory",
    "ReplicationDecision",
    "RoutingService",
    "estimate_profit",
    "evaluate_replica_creation",
    "evaluate_replica_migration",
    "fit_assignment_to_capacity",
    "optimal_proxy_broker",
    "replica_utility",
]
