"""Public key-value API of the store (paper section 3.1).

DynaSoRe exposes the same interface as Facebook's memcache deployment so it
can be dropped in as the caching tier of a social application:

* ``Read(u, L)`` — for every user id in ``L``, return her view;
* ``Write(u)`` — the persistent store processed a new event of user ``u``;
  the in-memory store fetches the new version and updates every replica.

:class:`DynaSoReStore` is the facade gluing together the persistent store
(source of truth), the placement engine (where replicas live and which
broker serves each request) and the actual view payloads held in memory.
"""

from __future__ import annotations

from ..baselines.base import PlacementStrategy
from ..config import DynaSoReConfig, SimulationConfig
from ..exceptions import SimulationError
from ..persistence.backend import PersistentStore
from ..socialgraph.graph import SocialGraph
from ..store.memory import MemoryBudget
from ..store.view import View
from ..topology.base import ClusterTopology
from ..traffic.accounting import TrafficAccountant
from .engine import DynaSoRe


class DynaSoReStore:
    """In-memory social view store with a memcache-compatible API.

    Parameters
    ----------
    topology:
        The data-center topology the store is deployed on.
    graph:
        The social graph (used for default read target lists and by the
        placement engine's initial partitioning).
    extra_memory_pct:
        Memory budget beyond one replica per view (paper section 2.3).
    strategy:
        The placement strategy; defaults to DynaSoRe initialised from a
        hierarchy-aware partitioning of the social graph.
    config:
        DynaSoRe tunables (only used when ``strategy`` is not provided).
    """

    def __init__(
        self,
        topology: ClusterTopology,
        graph: SocialGraph,
        extra_memory_pct: float = 30.0,
        strategy: PlacementStrategy | None = None,
        config: DynaSoReConfig | None = None,
        persistent_store: PersistentStore | None = None,
        seed: int = 7,
    ) -> None:
        self.topology = topology
        self.graph = graph
        self.persistent = persistent_store or PersistentStore()
        self.accountant = TrafficAccountant(topology, bucket_width=SimulationConfig().bucket_width)
        self.budget = MemoryBudget(
            views=graph.num_users,
            extra_memory_pct=extra_memory_pct,
            servers=len(topology.servers),
        )
        self.strategy = strategy or DynaSoRe(
            initializer="hmetis", config=config or DynaSoReConfig(), seed=seed
        )
        self.strategy.bind(topology, graph, self.accountant, self.budget, seed=seed)
        self.strategy.build_initial_placement()
        #: In-memory view payloads (one logical copy; physical replicas are
        #: tracked by the placement strategy).
        self._views: dict[int, View] = {}
        self._clock: float = 0.0

    # ------------------------------------------------------------------ time
    def advance_time(self, now: float) -> None:
        """Advance the store's clock (drives counter rotation on ticks)."""
        if now < self._clock:
            raise SimulationError("time cannot go backwards")
        self._clock = now

    @property
    def now(self) -> float:
        """Current clock of the store."""
        return self._clock

    # ------------------------------------------------------------------- API
    def read(self, user: int, targets: list[int] | tuple[int, ...] | None = None) -> dict[int, View]:
        """``Read(u, L)``: return the view of every user id in ``L``.

        When ``L`` is omitted the store reads the views of every user ``u``
        follows in the social graph, which is how feed requests are issued.
        """
        if targets is None:
            targets = tuple(self.graph.following(user)) if self.graph.has_user(user) else ()
        self.strategy.execute_read(user, self._clock, targets=tuple(targets))
        return {target: self._materialised_view(target) for target in targets}

    def write(self, user: int, payload: bytes = b"") -> int:
        """``Write(u)``: durably apply an event of ``user`` and refresh replicas.

        The event goes to the persistent store first (durability), which then
        notifies the write proxy; the in-memory copy is refreshed from the
        persistent store, exactly like the paper's cache-coherence protocol.
        Returns the new view version.
        """
        version = self.persistent.process_write(user, self._clock, payload)
        self.strategy.execute_write(user, self._clock)
        self._views[user] = self.persistent.fetch_view(user)
        return version

    def _materialised_view(self, user: int) -> View:
        view = self._views.get(user)
        if view is None:
            view = self.persistent.fetch_view(user)
            self._views[user] = view
        return view

    # ---------------------------------------------------------- maintenance
    def run_maintenance(self) -> None:
        """Run the periodic maintenance tick of the placement strategy."""
        self.strategy.on_tick(self._clock)

    # --------------------------------------------------------- introspection
    def replica_count(self, user: int) -> int:
        """Number of replicas of a user's view."""
        return self.strategy.replica_count(user)

    def top_switch_traffic(self) -> float:
        """Traffic recorded at the top switch since the store was created."""
        return self.accountant.top_switch_traffic()

    def traffic_snapshot(self):
        """Full traffic snapshot (per device and per level)."""
        return self.accountant.snapshot()


__all__ = ["DynaSoReStore"]
