"""Routing layer: closest-replica selection and routing-table maintenance.

Every broker conceptually stores, for each view, the location of the closest
replica according to the routing policy (lowest common ancestor, ties broken
by server identifier — paper section 3.2, "Routing policy").  The simulator
keeps a single authoritative replica-location map and resolves the closest
replica on demand, which is functionally identical; what matters for the
evaluation is the *notification traffic*: when the replica set of a view
changes, only the brokers whose answer changes are notified by the view's
write proxy (protocol messages).

The resolution loops are written against plain distance rows (flat lists
indexed by device) so they compose with the table-backed engine's
integer-id hot paths: no key functions, no per-call closures.
"""

from __future__ import annotations

from ..exceptions import RoutingError
from ..topology.base import ClusterTopology

_INFINITY = float("inf")


def _closest(distances, replica_devices) -> int:
    """Device with the lowest (distance, device) key — the routing policy."""
    best_device = _INFINITY
    best_distance = _INFINITY
    for device in replica_devices:
        distance = distances[device]
        if distance < best_distance or (
            distance == best_distance and device < best_device
        ):
            best_distance = distance
            best_device = device
    return best_device


class RoutingService:
    """Closest-replica resolution plus routing-update fan-out computation."""

    def __init__(self, topology: ClusterTopology) -> None:
        self.topology = topology
        self._broker_indices = tuple(broker.index for broker in topology.brokers)

    # ----------------------------------------------------------- resolution
    def closest_replica(self, broker: int, replica_devices: set[int] | tuple[int, ...]) -> int:
        """Replica device closest to ``broker``; ties break on device index."""
        if not replica_devices:
            raise RoutingError("view has no replica to route to")
        if len(replica_devices) == 1:
            return next(iter(replica_devices))
        return _closest(self.topology.distance_row(broker), replica_devices)

    def routing_table_for(self, broker: int, replica_map: dict[int, set[int]]) -> dict[int, int]:
        """Full routing table of one broker (used by tests and the API layer)."""
        return {
            user: self.closest_replica(broker, devices)
            for user, devices in replica_map.items()
            if devices
        }

    # ----------------------------------------------------- batch resolution
    def batch_resolver(self, broker: int):
        """Closest-replica resolver with the broker's distance row hoisted.

        The batched execution kernels resolve many views against the same
        broker per run; sharing one distance-row fetch across all of them
        removes the per-resolution topology hop.  The returned callable
        reads the **live** distance row, so resolutions interleaved with
        replication or migration decisions observe exactly the state a
        per-event resolution at the same point would — batching changes
        when the row is fetched, never what it contains (rows are immutable
        per topology).
        """
        distances = self.topology.distance_row(broker)

        def resolve(replica_devices) -> int:
            if not replica_devices:
                raise RoutingError("view has no replica to route to")
            best_device = _INFINITY
            best_distance = _INFINITY
            for device in replica_devices:
                distance = distances[device]
                if distance < best_distance or (
                    distance == best_distance and device < best_device
                ):
                    best_distance = distance
                    best_device = device
            return best_device

        return resolve

    def closest_replica_batch(
        self, broker: int, replica_sets
    ) -> list[int]:
        """Resolve many replica sets against one broker in a single pass.

        Equivalent to ``[closest_replica(broker, s) for s in replica_sets]``
        with the distance row fetched once.
        """
        resolve = self.batch_resolver(broker)
        return [resolve(devices) for devices in replica_sets]

    # ------------------------------------------------------------- fan-out
    def affected_brokers(
        self,
        before: set[int] | tuple[int, ...],
        after: set[int] | tuple[int, ...],
    ) -> tuple[int, ...]:
        """Brokers whose closest replica changes when the set goes from
        ``before`` to ``after``.

        The routing policy is deterministic, so the write proxy only notifies
        these brokers (paper section 3.2, "Routing tables").  One distance
        row is fetched per broker and shared by both resolutions.
        """
        changed = []
        distance_row = self.topology.distance_row
        for broker in self._broker_indices:
            distances = distance_row(broker)
            old = _closest(distances, before) if before else None
            new = _closest(distances, after) if after else None
            if old != new:
                changed.append(broker)
        return tuple(changed)

    def affected_brokers_on_add(
        self, before: set[int] | tuple[int, ...], added: int
    ) -> tuple[int, ...]:
        """Brokers whose closest replica changes when ``added`` joins ``before``.

        A broker is affected exactly when the new device beats its current
        closest replica under the (distance, device) policy — one resolution
        per broker instead of two.
        """
        changed = []
        distance_row = self.topology.distance_row
        for broker in self._broker_indices:
            distances = distance_row(broker)
            closest = _closest(distances, before)
            added_distance = distances[added]
            closest_distance = distances[closest]
            if added_distance < closest_distance or (
                added_distance == closest_distance and added < closest
            ):
                changed.append(broker)
        return tuple(changed)

    def affected_brokers_on_remove(
        self, after: set[int] | tuple[int, ...], removed: int
    ) -> tuple[int, ...]:
        """Brokers whose closest replica changes when ``removed`` leaves.

        ``after`` is the surviving (non-empty) replica set.  A broker is
        affected exactly when the removed device used to beat every
        survivor.
        """
        changed = []
        distance_row = self.topology.distance_row
        for broker in self._broker_indices:
            distances = distance_row(broker)
            closest = _closest(distances, after)
            removed_distance = distances[removed]
            closest_distance = distances[closest]
            if removed_distance < closest_distance or (
                removed_distance == closest_distance and removed < closest
            ):
                changed.append(broker)
        return tuple(changed)

    def next_closest(self, device: int, replica_devices: set[int]) -> int | None:
        """Closest *other* replica as seen from ``device`` (None when sole)."""
        distances = None
        best_device = _INFINITY
        best_distance = _INFINITY
        for other in replica_devices:
            if other == device:
                continue
            if distances is None:
                distances = self.topology.distance_row(device)
            distance = distances[other]
            if distance < best_distance or (
                distance == best_distance and other < best_device
            ):
                best_distance = distance
                best_device = other
        if distances is None:
            return None
        return best_device


__all__ = ["RoutingService"]
