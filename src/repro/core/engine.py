"""The DynaSoRe placement strategy (paper section 3).

This module ties the pieces together into the full protocol:

* per-user read and write proxies hosted on brokers, migrating towards the
  data they access;
* storage servers with bounded capacity, per-replica rotating access
  statistics, admission thresholds and proactive eviction;
* Algorithm 1 (utility), Algorithm 2 (replica creation) and Algorithm 3
  (replica migration) driving dynamic replication;
* closest-replica routing with routing-update notifications;
* traffic accounting of every application and system message.

Since the array-backed state refactor the engine holds **no replica
objects**: all placement state of the fleet lives in one shared
:class:`~repro.store.tables.ReplicaTable` (flat replica-id columns with
per-user and per-server chain indexes, plus the
:class:`~repro.store.tables.StatsTable` columns holding the rotating access
windows).  The hot paths — request execution, closest-replica resolution,
least-loaded ranking, the maintenance sweep — walk those columns directly
with integer replica ids; ``self.servers`` keeps a fleet of
:class:`~repro.store.server.StorageServer` façades attached to the shared
table for introspection and tests.  Decision algorithms receive a rebound
scratch view over the evaluated slot, so Algorithms 1–3 stay expressed in
the paper's object vocabulary while reading table columns.

The engine implements the same :class:`~repro.baselines.base.PlacementStrategy`
interface as the baselines, so the trace-driven simulator can run them
interchangeably.
"""

from __future__ import annotations

from collections.abc import Callable

from dataclasses import dataclass

from ..baselines.base import PlacementStrategy
from ..baselines.hmetis_placement import hmetis_assignment
from ..baselines.metis_placement import metis_assignment
from ..baselines.random_placement import random_assignment
from ..config import DynaSoReConfig
from ..exceptions import ConfigurationError, SimulationError
from ..persistence.recovery import RecoveryPlan
from ..socialgraph.graph import SocialGraph
from ..store.server import StorageServer
from ..store.tables import (
    NO_SLOT,
    ReplicaHandle,
    ReplicaTable,
    StatsHandle,
    pick_least_loaded,
    rank_by_utilisation,
)
from ..store.view import INFINITE_UTILITY
from ..topology.base import ClusterTopology
from ..traffic.messages import MessageKind
from ..workload.stream import KIND_READ
from .migration import MigrationAction, evaluate_replica_migration
from .proxies import ProxyDirectory, optimal_proxy_broker
from .replication import EvaluationMemo, evaluate_replica_creation
from .routing import RoutingService
from .utility import (
    build_pricing,
    estimate_profit,
    estimate_profit_pairs,
    estimate_profit_values,
    priced_profit,
)

#: "No expiring window" sentinel of the tick sweep's per-position expiry
#: tracking (larger than any reachable rotation period index).
_NEVER_EXPIRES = 1 << 62

#: Signature of an initial-placement function: (graph, topology, seed) -> {user: server position}.
InitialAssignment = Callable[[SocialGraph, ClusterTopology, int], dict[int, int]]


class _ScratchReplica(ReplicaHandle):
    """Reusable ``ViewReplica``-compatible view bound to one slot at a time.

    The engine evaluates Algorithms 2 and 3 thousands of times per second;
    rebinding one scratch view avoids a handle allocation per evaluation,
    and the slot-level ``stats`` attribute shadows the base property so the
    statistics view is not re-created on every access.  Never escapes the
    engine: decisions carry plain integers, and the scratch is rebound
    before every use.
    """

    __slots__ = ("stats",)

    def __init__(self, table: ReplicaTable) -> None:
        super().__init__(table, 0)
        self.stats = StatsHandle(table.stats, 0)

    def bind(self, slot: int) -> "_ScratchReplica":
        self.slot = slot
        self.stats.slot = slot
        return self


#: Named initial placements accepted by :class:`DynaSoRe`.
INITIAL_PLACEMENTS: dict[str, InitialAssignment] = {
    "random": random_assignment,
    "metis": metis_assignment,
    "hmetis": hmetis_assignment,
}


@dataclass
class EngineCounters:
    """Diagnostics of the dynamic decisions taken during a run."""

    replicas_created: int = 0
    replicas_removed: int = 0
    replicas_migrated: int = 0
    read_proxy_migrations: int = 0
    write_proxy_migrations: int = 0
    creation_rejected_full: int = 0
    servers_lost: int = 0
    views_recovered_from_memory: int = 0
    views_recovered_from_disk: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view used by reports and tests."""
        return {
            "replicas_created": self.replicas_created,
            "replicas_removed": self.replicas_removed,
            "replicas_migrated": self.replicas_migrated,
            "read_proxy_migrations": self.read_proxy_migrations,
            "write_proxy_migrations": self.write_proxy_migrations,
            "creation_rejected_full": self.creation_rejected_full,
            "servers_lost": self.servers_lost,
            "views_recovered_from_memory": self.views_recovered_from_memory,
            "views_recovered_from_disk": self.views_recovered_from_disk,
        }


def fit_assignment_to_capacity(
    assignment: dict[int, int], capacities: list[int]
) -> dict[int, int]:
    """Adjust an assignment so no server exceeds its capacity.

    Partitioners tolerate a few percent of imbalance, but at 0% extra memory
    the per-server capacity exactly matches a perfectly balanced assignment.
    Users overflowing a server are moved to the least-loaded server with free
    slots (placement quality matters little for the handful of moved users).
    """
    loads = [0] * len(capacities)
    fitted = dict(assignment)
    overflow: list[int] = []
    for user, position in assignment.items():
        if position < 0 or position >= len(capacities):
            raise SimulationError(f"user {user} assigned to invalid server {position}")
        if loads[position] < capacities[position]:
            loads[position] += 1
        else:
            overflow.append(user)
    for user in overflow:
        position = min(
            range(len(capacities)),
            key=lambda p: (loads[p] - capacities[p], loads[p], p),
        )
        if loads[position] >= capacities[position]:
            raise SimulationError("cluster capacity is too small to store every view")
        fitted[user] = position
        loads[position] += 1
    return fitted


class DynaSoRe(PlacementStrategy):
    """Dynamic social store: adaptive replica placement over a switch tree."""

    name = "dynasore"

    def __init__(
        self,
        initializer: str | InitialAssignment = "random",
        config: DynaSoReConfig | None = None,
        seed: int = 7,
    ) -> None:
        super().__init__()
        self.config = config or DynaSoReConfig()
        self.seed = seed
        if isinstance(initializer, str):
            if initializer not in INITIAL_PLACEMENTS:
                raise ConfigurationError(
                    f"unknown initial placement {initializer!r}; "
                    f"expected one of {sorted(INITIAL_PLACEMENTS)} or a callable"
                )
            self._initializer: InitialAssignment = INITIAL_PLACEMENTS[initializer]
            self.initializer_name = initializer
        else:
            self._initializer = initializer
            self.initializer_name = getattr(initializer, "__name__", "custom")
        self.name = f"dynasore[{self.initializer_name}]"

        #: Shared struct-of-arrays placement state of the whole fleet.
        self.tables: ReplicaTable | None = None
        self.servers: list[StorageServer] = []
        self.proxies = ProxyDirectory()
        self.routing: RoutingService | None = None
        self._device_of_position: list[int] = []
        self._position_of_device: dict[int, int] = {}
        self._positions_under_switch: dict[int, tuple[int, ...]] = {}
        self._threshold_cache: dict[int, float] = {}
        # Per-origin least-loaded rankings, reused between occupancy
        # changes (they are queried for every origin of every evaluated
        # read, far more often than occupancy actually changes).  An
        # occupancy change at a position invalidates only the origins whose
        # sub-tree contains that position — a ranking depends on nothing
        # else — so unrelated origins keep their cached ranking.
        self._origin_rank_cache: dict[int, tuple[int, ...]] = {}
        #: position -> origins whose ranking covers it (inverse sub-tree map)
        self._origins_above: list[tuple[int, ...]] = []
        self._last_tick: float = 0.0
        #: storage-server positions currently out of service
        self._down_positions: set[int] = set()
        #: nominal capacity of each position (restored when a server rejoins)
        self._position_capacity: list[int] = []
        #: reusable stats view for the utility sweep (avoids one allocation
        #: per replica per tick)
        self._stats_scratch: StatsHandle | None = None
        #: reusable replica view for Algorithm 2/3 evaluations
        self._replica_scratch: _ScratchReplica | None = None
        #: recycled scratch containers of the fused (batch-path) decision
        #: kernel — Algorithms 2 and 3 run once per evaluated read, and
        #: reusing these avoids per-evaluation allocations
        self._eval_candidates: list[tuple[int, int, int]] = []
        self._eval_triples: list = []
        self._eval_triples_migration: list = []
        self._eval_profits: dict[int, float] = {}
        self._eval_profits_migration: dict[int, float] = {}
        #: batch-kernel state: closest-replica memo (broker -> target ->
        #: (slot, position, device)), cleared in place on every placement
        #: change; origin memo (broker -> device -> origin label), a pure
        #: topology function, never cleared; run-local traffic aggregators
        self._route_memo: dict[int, dict[int, tuple[int, int, int]]] = {}
        self._origin_memo: dict[int, dict[int, int]] = {}
        self._read_run = None
        self._write_run = None
        #: execution epoch: bumped on every placement or graph change, it
        #: versions the proxy-stay memos below.  A read/write whose proxy
        #: decision came out "stay" records ``epoch * stride + broker``;
        #: while that code still matches, re-executions skip the transfer
        #: aggregation and the proxy-placement search entirely (the search
        #: is a pure function of placement + graph state, so the skipped
        #: computation could only conclude "stay" again).
        self._exec_epoch = 0
        self._read_stay: dict[int, int] = {}
        self._write_stay: dict[int, int] = {}
        #: per-slot candidate memo of the decision kernel: slot ->
        #: (origins dict object, epoch, candidates tuple).  The candidate
        #: list is a pure function of the origin *keys* (the dict object is
        #: rebuilt whenever they change) and of placement occupancy (the
        #: epoch); while both match, the ranked-server scan is skipped.
        self._candidate_memo: dict[int, tuple] = {}
        #: batched-tick dirty-set companions (see ``_on_tick_batched``):
        #: the earliest rotation period at which any counter of a position
        #: drops non-zero history, and whether the last sweep left the
        #: position with a negative-utility replica (drives the removal
        #: pass of skipped positions); plus the reusable (origin, reads)
        #: scratch of the pairwise pricing.
        self._tick_next_expiry: list[int] = []
        self._tick_has_negative: list[bool] = []
        self._tick_pairs: list[tuple[int, float]] = []
        self.counters = EngineCounters()

    # =====================================================================
    # Initial placement
    # =====================================================================
    def build_initial_placement(self) -> None:
        self.require_bound()
        assert self.topology is not None and self.graph is not None and self.budget is not None
        capacities = self.budget.per_server_capacity()
        if len(capacities) != len(self.topology.servers):
            raise SimulationError("memory budget does not match the number of servers")

        table = ReplicaTable(
            positions=len(capacities),
            counter_slots=self.config.counter_slots,
            counter_period=self.config.counter_period,
        )
        self.tables = table
        self._stats_scratch = StatsHandle(table.stats, 0)
        self._replica_scratch = _ScratchReplica(table)
        self.servers = [
            StorageServer(
                server_index=position,
                capacity=capacity,
                counter_slots=self.config.counter_slots,
                counter_period=self.config.counter_period,
                admission_fill=self.config.admission_fill,
                eviction_threshold=self.config.eviction_threshold,
                table=table,
            )
            for position, capacity in enumerate(capacities)
        ]
        self._position_capacity = list(capacities)
        self._down_positions = set()
        self._device_of_position = [server.index for server in self.topology.servers]
        self._position_of_device = {
            device: position for position, device in enumerate(self._device_of_position)
        }
        self.routing = RoutingService(self.topology)
        self._build_switch_index()

        assignment = self._initializer(self.graph, self.topology, self.seed)
        assignment = fit_assignment_to_capacity(assignment, capacities)

        for user, position in assignment.items():
            device = self._device_of_position[position]
            broker = self.topology.proxy_broker_for_server(device)
            table.allocate(user, position, write_proxy_broker=broker)
            self.proxies.place_both(user, broker)
        self._origin_rank_cache.clear()
        self._route_memo = {}
        self._origin_memo = {}
        self._exec_epoch = 0
        self._read_stay = {}
        self._write_stay = {}
        self._candidate_memo = {}
        # Every position starts dirty (expiry 0 = "must sweep"), so the
        # first batched tick prices the initial placement exactly like the
        # per-slot reference does.
        self._tick_next_expiry = [0] * table.num_positions
        self._tick_has_negative = [False] * table.num_positions
        self._tick_pairs = []
        self._read_run = self.accountant.roundtrip_run(
            MessageKind.READ_REQUEST, MessageKind.READ_RESPONSE
        )
        self._write_run = self.accountant.roundtrip_run(
            MessageKind.WRITE_UPDATE, MessageKind.WRITE_ACK
        )

    def _build_switch_index(self) -> None:
        """Pre-compute the storage-server positions under every switch."""
        assert self.topology is not None
        self._positions_under_switch = {}
        for switch in self.topology.switches:
            devices = self.topology.servers_under(switch.index)
            self._positions_under_switch[switch.index] = tuple(
                self._position_of_device[device]
                for device in devices
                if device in self._position_of_device
            )
        # In the flat topology origins are machines, not switches; each
        # machine-origin contains exactly the co-located storage server.
        for server in self.topology.servers:
            if server.index not in self._positions_under_switch:
                self._positions_under_switch[server.index] = (
                    self._position_of_device[server.index],
                )
        # Invert the map: the origins whose ranking covers each position.
        above: list[list[int]] = [[] for _ in self._device_of_position]
        for origin, positions in self._positions_under_switch.items():
            for position in positions:
                above[position].append(origin)
        self._origins_above = [tuple(origins) for origins in above]

    def _invalidate_ranks(self, position: int) -> None:
        """Drop the cached rankings of every origin covering ``position``.

        Every placement change funnels through here (or through the fault
        handlers), so it also clears the batch kernels' closest-replica
        memo — the memo answers are only valid between placement changes.
        """
        cache = self._origin_rank_cache
        for origin in self._origins_above[position]:
            cache.pop(origin, None)
        for memo in self._route_memo.values():
            memo.clear()
        self._exec_epoch += 1

    def _require_tables(self) -> ReplicaTable:
        if self.tables is None:
            raise SimulationError("the placement has not been deployed yet")
        return self.tables

    # =====================================================================
    # Helpers used by Algorithms 2 and 3
    # =====================================================================
    def positions_under(self, origin: int) -> tuple[int, ...]:
        """Storage-server positions under an origin switch (or machine)."""
        positions = self._positions_under_switch.get(origin)
        if positions is None:
            raise SimulationError(f"unknown origin {origin}")
        return positions

    def least_loaded_server_under(self, origin: int, user: int) -> int | None:
        """Least-loaded server under ``origin`` not already storing ``user``.

        Only servers with a free slot qualify: replica creation never evicts
        on the spot; memory is freed by the proactive eviction pass of the
        maintenance tick (paper section 3.2, "Eviction of views").
        """
        ranked = self._origin_rank_cache.get(origin)
        table = self.tables
        if ranked is None:
            positions = self._positions_under_switch.get(origin)
            if positions is None:
                raise SimulationError(f"unknown origin {origin}")
            ranked = rank_by_utilisation(positions, table.used, table.capacities)
            self._origin_rank_cache[origin] = ranked
        head = table._user_head.get(user, NO_SLOT)
        down = self._down_positions
        if head == NO_SLOT and not down:
            return ranked[0] if ranked else None
        # Walk the user's (replication-factor short) chain per candidate
        # instead of materialising a holder set.
        user_next = table._user_next
        server = table._server
        for position in ranked:
            if position in down:
                continue
            slot = head
            while slot != NO_SLOT:
                if server[slot] == position:
                    break
                slot = user_next[slot]
            if slot == NO_SLOT:
                return position
        return None

    def admission_threshold_under(self, origin: int) -> float:
        """Lowest admission threshold among the servers under ``origin``.

        Brokers learn thresholds through piggybacking and keep the lowest
        value per region; the cache is invalidated at every maintenance tick
        when thresholds are recomputed.
        """
        cached = self._threshold_cache.get(origin)
        if cached is not None:
            return cached
        positions = self.positions_under(origin)
        if not positions:
            value = INFINITE_UTILITY
        else:
            thresholds = self.tables.admission_thresholds
            value = min(thresholds[position] for position in positions)
        self._threshold_cache[origin] = value
        return value

    def device_of_position(self, position: int) -> int:
        """Leaf device index of a storage-server position."""
        return self._device_of_position[position]

    def position_available(self, position: int) -> bool:
        """True when the storage server at ``position`` is in service."""
        return position not in self._down_positions

    # =====================================================================
    # Request execution
    # =====================================================================
    def _ensure_user(self, user: int) -> None:
        """Allocate a view and proxies for a user unknown to the store.

        New users are placed on the least-loaded server of the cluster and
        their proxies on the closest broker (paper section 3.3, "Managing the
        social network").
        """
        table = self.tables
        if user in table._user_head:
            return
        assert self.topology is not None
        position = pick_least_loaded(
            table.used, self._down_positions, capacities=table.capacities
        )
        if position is None:
            raise SimulationError("no storage server is available")
        device = self._device_of_position[position]
        broker = self.topology.proxy_broker_for_server(device)
        table.allocate(user, position, write_proxy_broker=broker)
        self.proxies.place_both(user, broker)
        self._invalidate_ranks(position)

    def execute_read(
        self, user: int, now: float, targets: tuple[int, ...] | None = None
    ) -> None:
        self.require_bound()
        assert self.graph is not None and self.accountant is not None and self.topology is not None
        if targets is None:
            if not self.graph.has_user(user):
                return
            targets = tuple(self.graph.following(user))
        table = self.tables
        if user not in table._user_head:
            self._ensure_user(user)
        broker = self.proxies.read_broker(user)
        if broker is None:
            first_position = table._server[table._user_head[user]]
            broker = self.topology.proxy_broker_for_server(
                self._device_of_position[first_position]
            )
            self.proxies.read_proxy[user] = broker

        transfers: dict[int, float] = {}
        # Local bindings: this loop runs once per followed user per read and
        # dominates the simulator's wall clock.  The closest-replica walk is
        # inlined: most views have a single replica, so the common case is
        # one chain hop through two flat columns.
        ensure_user = self._ensure_user
        user_head = table._user_head
        user_next = table._user_next
        server_column = table._server
        device_of_position = self._device_of_position
        distance_row = self.topology.distance_row
        record_roundtrip = self.accountant.record_roundtrip
        origin_of = self.topology.origin_of
        stats = table.stats
        record_read = stats.record_read
        reads_since_eval = stats._reads_since_eval
        tick_dirty = table._tick_dirty
        check_interval = self.config.replication_check_interval
        for target in targets:
            slot = user_head.get(target, NO_SLOT)
            if slot == NO_SLOT:
                ensure_user(target)
                slot = user_head[target]
            following = user_next[slot]
            if following == NO_SLOT:
                position = server_column[slot]
            else:
                # Replicated view: pick the replica closest to the broker
                # (distance, ties on device index — the routing policy).
                distances = distance_row(broker)
                best_distance = best_device = float("inf")
                position = -1
                walk = slot
                while walk != NO_SLOT:
                    walk_position = server_column[walk]
                    device = device_of_position[walk_position]
                    distance = distances[device]
                    if distance < best_distance or (
                        distance == best_distance and device < best_device
                    ):
                        best_distance = distance
                        best_device = device
                        slot_found = walk
                        position = walk_position
                    walk = user_next[walk]
                slot = slot_found
            device = device_of_position[position]
            record_roundtrip(
                broker, device, MessageKind.READ_REQUEST, MessageKind.READ_RESPONSE, now
            )
            transfers[device] = transfers.get(device, 0.0) + 1.0

            origin = origin_of(device, broker)
            record_read(slot, origin, now)
            tick_dirty[position] = True

            if reads_since_eval[slot] >= check_interval:
                reads_since_eval[slot] = 0
                self._consider_replication(slot, position, now)

        if self.config.enable_proxy_migration and transfers:
            best = optimal_proxy_broker(self.topology, transfers, broker)
            if best != broker:
                self.accountant.record(broker, best, MessageKind.PROXY_MIGRATION, now)
                self.proxies.read_proxy[user] = best
                self.counters.read_proxy_migrations += 1

    def execute_write(self, user: int, now: float) -> None:
        self.require_bound()
        assert self.accountant is not None and self.topology is not None
        table = self.tables
        if user not in table._user_head:
            self._ensure_user(user)
        broker = self.proxies.write_broker(user)
        if broker is None:
            first_position = table._server[table._user_head[user]]
            broker = self.topology.proxy_broker_for_server(
                self._device_of_position[first_position]
            )
            self.proxies.write_proxy[user] = broker

        transfers: dict[int, float] = {}
        device_of_position = self._device_of_position
        record_write = table.stats.record_write
        tick_dirty = table._tick_dirty
        slots = list(table.user_slots(user))
        for slot in slots:
            position = table._server[slot]
            device = device_of_position[position]
            self.accountant.record_roundtrip(
                broker, device, MessageKind.WRITE_UPDATE, MessageKind.WRITE_ACK, now
            )
            transfers[device] = transfers.get(device, 0.0) + 1.0
            record_write(slot, now)
            tick_dirty[position] = True

        if self.config.enable_proxy_migration and transfers:
            best = optimal_proxy_broker(self.topology, transfers, broker)
            if best != broker:
                # Migrating a write proxy notifies every replica of the view.
                write_proxy = table._write_proxy
                for slot in slots:
                    device = device_of_position[table._server[slot]]
                    self.accountant.record(broker, device, MessageKind.PROXY_MIGRATION, now)
                    write_proxy[slot] = best
                self.proxies.write_proxy[user] = best
                self.counters.write_proxy_migrations += 1

    # =====================================================================
    # Batch kernel (chunk-native request execution)
    # =====================================================================
    def execute_request_batch(self, kinds, users, timestamps) -> None:
        """Fused request kernel over the replica and statistics columns.

        Executes a time-ordered run of reads and writes with byte-identical
        semantics to the per-event :meth:`execute_read` /
        :meth:`execute_write` pair, replacing their per-event costs with
        run-level state:

        * closest-replica resolutions are memoised per ``(broker, target)``
          in :attr:`_route_memo`; every placement change clears the memo in
          place (see :meth:`_invalidate_ranks`), so decisions triggered
          mid-run observe exactly the state a per-event resolution would;
        * origin labels (a pure topology function of ``(device, broker)``)
          are memoised permanently;
        * request/response roundtrips aggregate into per-path counts
          applied with one multiplied accountant update per distinct path
          and time bucket (warm-up messages only bump the message counter);
        * statistics recording is inlined on the counter-node columns.

        Replication checks (Algorithm 2/3 via :meth:`_consider_replication`)
        still fire per recorded read — the decision sequence is semantics,
        not overhead — and rare protocol messages (proxy migrations,
        replica control/copy, routing updates) are recorded directly.
        """
        read_run = self._read_run
        if read_run is None:
            # Not deployed through build_initial_placement (defensive).
            super().execute_request_batch(kinds, users, timestamps)
            return
        self.require_bound()
        topology = self.topology
        graph = self.graph
        has_user = graph.has_user
        following = graph.following
        table = self.tables
        stats = table.stats
        config = self.config
        check_interval = config.replication_check_interval
        proxy_migration = config.enable_proxy_migration
        accountant = self.accountant
        write_run = self._write_run
        read_counts_for = read_run.counts_for
        write_counts_for = write_run.counts_for
        stride = read_run.stride
        read_proxy = self.proxies.read_proxy
        write_proxy = self.proxies.write_proxy
        device_of_position = self._device_of_position
        distance_row = topology.distance_row
        origin_of = topology.origin_of
        proxy_broker_for_server = topology.proxy_broker_for_server
        route_memo = self._route_memo
        origin_memo = self._origin_memo
        ensure_user = self._ensure_user
        decide_with_candidates = self._decide_with_candidates
        counters = self.counters
        enable_view_migration = config.enable_view_migration
        least_loaded_server_under = self.least_loaded_server_under
        remove_replica = self._remove_replica
        reads_by_origin = stats.reads_by_origin
        eval_candidates = self._eval_candidates
        candidate_memo = self._candidate_memo
        origin_rank_cache = self._origin_rank_cache
        down_positions = self._down_positions
        user_head = table._user_head
        user_next = table._user_next
        server_column = table._server
        next_closest_column = table._next_closest
        write_proxy_column = table._write_proxy
        read_head = stats._read_head
        write_node = stats._write_node
        node_next = stats._node_next
        node_origin = stats._node_origin
        node_period = stats._node_period
        node_total = stats._node_total
        node_buckets = stats._node_buckets
        counter_slots = stats.slots
        counter_period = stats.period
        origins_cache = stats._origins_cache
        reads_since_eval = stats._reads_since_eval
        alloc_node = stats._alloc_node
        advance_node = stats._advance_node
        read_stay = self._read_stay
        write_stay = self._write_stay
        tick_dirty = table._tick_dirty
        #: scratch: serving devices of the current read, in target order
        #: (the transfers dict is only materialised when the proxy search
        #: actually runs — on stay-memo hits it never is)
        transfer_devices: list[int] = []
        #: scratch: slots of the current write's replica chain (collected
        #: only while its proxy search may run)
        write_slots_scratch: list[int] = []
        KIND_READ_ = KIND_READ

        for kind, user, now in zip(kinds, users, timestamps):
            if kind == KIND_READ_:
                # ---------------------------------------------- read event
                if not has_user(user):
                    continue
                if user not in user_head:
                    ensure_user(user)
                broker = read_proxy.get(user)
                if broker is None:
                    first_position = server_column[user_head[user]]
                    broker = proxy_broker_for_server(
                        device_of_position[first_position]
                    )
                    read_proxy[user] = broker
                memo = route_memo.get(broker)
                if memo is None:
                    memo = route_memo[broker] = {}
                origins = origin_memo.get(broker)
                if origins is None:
                    origins = origin_memo[broker] = {}
                base = broker * stride
                counts = read_counts_for(now)
                period_index = int(now // counter_period)
                if proxy_migration:
                    # Proxy-stay memo: when this user's last proxy search
                    # concluded "stay" and the epoch still matches at the
                    # end of the read, the search is provably "stay" again
                    # (same placement + same fan-out => same transfers)
                    # and is skipped.  Serving devices are still collected
                    # (a replication decision can mutate placement
                    # mid-read, in which case the search must run on the
                    # actual multiset exactly like the per-event path),
                    # but only into a flat scratch list — the transfers
                    # dict is materialised only when the search runs.
                    stay_code = self._exec_epoch * stride + broker
                    known_stay = read_stay.get(user) == stay_code
                    transfer_devices.clear()
                    collect_transfers = True
                else:
                    stay_code = 0
                    known_stay = False
                    collect_transfers = False
                for target in following(user):
                    entry = memo.get(target)
                    if entry is None:
                        slot = user_head.get(target, NO_SLOT)
                        if slot == NO_SLOT:
                            ensure_user(target)
                            slot = user_head[target]
                        if user_next[slot] == NO_SLOT:
                            position = server_column[slot]
                        else:
                            # Replicated view: closest replica to the
                            # broker, ties on the device index (the
                            # routing policy).
                            distances = distance_row(broker)
                            best_distance = best_device = float("inf")
                            position = -1
                            walk = slot
                            while walk != NO_SLOT:
                                walk_position = server_column[walk]
                                device = device_of_position[walk_position]
                                distance = distances[device]
                                if distance < best_distance or (
                                    distance == best_distance
                                    and device < best_device
                                ):
                                    best_distance = distance
                                    best_device = device
                                    slot_found = walk
                                    position = walk_position
                                walk = user_next[walk]
                            slot = slot_found
                        device = device_of_position[position]
                        memo[target] = (slot, position, device)
                    else:
                        slot, position, device = entry
                    key = base + device
                    count = counts.get(key)
                    counts[key] = 1 if count is None else count + 1
                    if collect_transfers:
                        transfer_devices.append(device)
                    origin = origins.get(device)
                    if origin is None:
                        origin = origins[device] = origin_of(device, broker)
                    # Inlined ``StatsTable.record_read`` on the node columns.
                    node = read_head[slot]
                    last = NO_SLOT
                    while node != NO_SLOT and node_origin[node] != origin:
                        last = node
                        node = node_next[node]
                    if node == NO_SLOT:
                        node = alloc_node(origin, period_index)
                        if last == NO_SLOT:
                            read_head[slot] = node
                        else:
                            node_next[last] = node
                    elif period_index > node_period[node]:
                        advance_node(node, period_index)
                    node_buckets[
                        node * counter_slots + node_period[node] % counter_slots
                    ] += 1.0
                    total = node_total[node] + 1.0
                    node_total[node] = total
                    tick_dirty[position] = True
                    cached = origins_cache.get(slot)
                    if cached is not None:
                        if origin in cached:
                            cached[origin] = total
                        else:
                            del origins_cache[slot]
                    evals = reads_since_eval[slot] + 1
                    if evals >= check_interval:
                        reads_since_eval[slot] = 0
                        # Inlined candidate resolution of Algorithms 2+3.
                        # The common steady-state case — no origin offers a
                        # placement candidate because the view already sits
                        # where its readers are — short-circuits: creation
                        # is impossible and migration reduces to the
                        # stay-or-remove check, which for a sole replica is
                        # unconditionally "stay" (the discarded profit is
                        # never computed).  With candidates, the fused
                        # decision method prices the prebuilt list.
                        origins_d = origins_cache.get(slot)
                        if origins_d is None:
                            origins_d = reads_by_origin(slot)
                        epoch = self._exec_epoch
                        memo_entry = candidate_memo.get(slot)
                        if (
                            memo_entry is not None
                            and memo_entry[0] is origins_d
                            and memo_entry[1] == epoch
                        ):
                            candidates = memo_entry[2]
                        else:
                            eval_candidates.clear()
                            for read_origin in origins_d:
                                # Inlined rank-cache hit path of
                                # ``least_loaded_server_under``.
                                ranked = origin_rank_cache.get(read_origin)
                                if ranked is None:
                                    found = least_loaded_server_under(
                                        read_origin, target
                                    )
                                else:
                                    found = None
                                    for ranked_position in ranked:
                                        if ranked_position in down_positions:
                                            continue
                                        chain = user_head[target]
                                        while (
                                            chain != NO_SLOT
                                            and server_column[chain]
                                            != ranked_position
                                        ):
                                            chain = user_next[chain]
                                        if chain == NO_SLOT:
                                            found = ranked_position
                                            break
                                if found is None:
                                    continue
                                found_device = device_of_position[found]
                                if found_device != device:
                                    eval_candidates.append(
                                        (read_origin, found, found_device)
                                    )
                            candidates = tuple(eval_candidates)
                            candidate_memo[slot] = (origins_d, epoch, candidates)
                        if candidates:
                            decide_with_candidates(
                                slot, position, now, target, origins_d, candidates
                            )
                        elif enable_view_migration:
                            next_closest = next_closest_column[slot]
                            if next_closest != NO_SLOT:
                                # Zero-write fast path: the clamp in the
                                # profit estimate guarantees the read term
                                # is never negative, so a view with no
                                # priced write cost can never price below
                                # zero — the stay-or-remove check is
                                # "stay" without pricing anything.
                                stats_node = write_node[slot]
                                if (
                                    stats_node != NO_SLOT
                                    and node_total[stats_node] > 0.0
                                    and write_proxy.get(target) is not None
                                ):
                                    stay_profit = estimate_profit_values(
                                        topology,
                                        origins_d,
                                        node_total[stats_node],
                                        device,
                                        next_closest,
                                        write_proxy.get(target),
                                    )
                                    if stay_profit < 0:
                                        remove_replica(target, position, now)
                    else:
                        reads_since_eval[slot] = evals
                if transfer_devices and (
                    not known_stay
                    or self._exec_epoch * stride + broker != stay_code
                ):
                    transfers: dict[int, float] = {}
                    for transfer_device in transfer_devices:
                        seen = transfers.get(transfer_device)
                        transfers[transfer_device] = (
                            1.0 if seen is None else seen + 1.0
                        )
                    best = optimal_proxy_broker(topology, transfers, broker)
                    if best != broker:
                        accountant.record(
                            broker, best, MessageKind.PROXY_MIGRATION, now
                        )
                        read_proxy[user] = best
                        counters.read_proxy_migrations += 1
                    elif self._exec_epoch * stride + broker == stay_code:
                        # No mid-read placement change: the "stay" answer
                        # stays valid until the next epoch bump.
                        read_stay[user] = stay_code
            else:
                # --------------------------------------------- write event
                if user not in user_head:
                    ensure_user(user)
                broker = write_proxy.get(user)
                if broker is None:
                    first_position = server_column[user_head[user]]
                    broker = proxy_broker_for_server(
                        device_of_position[first_position]
                    )
                    write_proxy[user] = broker
                base = broker * stride
                counts = write_counts_for(now)
                period_index = int(now // counter_period)
                if proxy_migration:
                    stay_code = self._exec_epoch * stride + broker
                    transfers = None if write_stay.get(user) == stay_code else {}
                else:
                    stay_code = 0
                    transfers = None
                if transfers is not None:
                    # Only the (rare) migration branch walks the slots
                    # again; skip collecting them when it cannot run.
                    slots = write_slots_scratch
                    slots.clear()
                else:
                    slots = None
                slot = user_head[user]
                while slot != NO_SLOT:
                    position = server_column[slot]
                    device = device_of_position[position]
                    key = base + device
                    count = counts.get(key)
                    counts[key] = 1 if count is None else count + 1
                    tick_dirty[position] = True
                    if transfers is not None:
                        slots.append(slot)
                        seen = transfers.get(device)
                        transfers[device] = 1.0 if seen is None else seen + 1.0
                    # Inlined ``StatsTable.record_write`` on the node columns.
                    node = write_node[slot]
                    if node == NO_SLOT:
                        node = alloc_node(NO_SLOT, 0)
                        write_node[slot] = node
                    if period_index > node_period[node]:
                        advance_node(node, period_index)
                    node_buckets[
                        node * counter_slots + node_period[node] % counter_slots
                    ] += 1.0
                    node_total[node] += 1.0
                    slot = user_next[slot]
                if transfers:
                    best = optimal_proxy_broker(topology, transfers, broker)
                    if best != broker:
                        for slot in slots:
                            device = device_of_position[server_column[slot]]
                            accountant.record(
                                broker, device, MessageKind.PROXY_MIGRATION, now
                            )
                            write_proxy_column[slot] = best
                        write_proxy[user] = best
                        counters.write_proxy_migrations += 1
                    elif self._exec_epoch * stride + broker == stay_code:
                        write_stay[user] = stay_code
        read_run.flush()
        write_run.flush()

    # =====================================================================
    # Replication, migration, eviction
    # =====================================================================
    def _consider_replication(self, slot: int, position: int, now: float) -> None:
        """Run Algorithm 2 for a replica; fall back to Algorithm 3 when no
        replica can be created (paper: "When no replicas can be created, the
        server attempts to migrate the view to a more appropriate location")."""
        replica = self._replica_scratch.bind(slot)
        replica_device = self._device_of_position[position]
        # Both algorithms price the same per-origin candidates; resolve them
        # once (nothing changes placement between the two evaluations), on
        # the slot's origin dict directly.  No availability filter is
        # needed: ``least_loaded_server_under`` never returns a position
        # from the down set.
        user = self.tables._user[slot]
        least_loaded_server_under = self.least_loaded_server_under
        device_of_position = self._device_of_position
        candidates: list[tuple[int, int, int]] = []
        for origin in self.tables.stats.reads_by_origin(slot):
            candidate_position = least_loaded_server_under(origin, user)
            if candidate_position is None:
                continue
            candidate_device = device_of_position[candidate_position]
            if candidate_device == replica_device:
                continue
            candidates.append((origin, candidate_position, candidate_device))
        # Algorithm 3 falls back to the replica's own server as reference
        # when the replica is sole — the same reference Algorithm 2 prices
        # against — so the memo lets it reuse the estimator and prices.
        memo = EvaluationMemo()
        decision = evaluate_replica_creation(
            self.topology,
            replica,
            replica_device,
            self.proxies.write_broker(replica.user),
            self.least_loaded_server_under,
            self.admission_threshold_under,
            self.device_of_position,
            position_available=self.position_available,
            candidates=candidates,
            memo=memo,
        )
        if decision.should_replicate and decision.target_position is not None:
            self._create_replica(
                replica.user, decision.target_position, now, requesting_position=position,
                incoming_profit=decision.profit,
            )
            return
        if self.config.enable_view_migration:
            self._consider_migration(replica, position, now, candidates=candidates, memo=memo)

    def _consider_migration(
        self,
        replica: _ScratchReplica,
        position: int,
        now: float,
        candidates: list[tuple[int, int, int]] | None = None,
        memo: EvaluationMemo | None = None,
    ) -> None:
        """Run Algorithm 3 for a replica and apply its decision."""
        next_device = replica.next_closest_replica
        decision = evaluate_replica_migration(
            self.topology,
            replica,
            self._device_of_position[position],
            next_device,
            self.proxies.write_broker(replica.user),
            self.least_loaded_server_under,
            self.admission_threshold_under,
            self.device_of_position,
            position_available=self.position_available,
            candidates=candidates,
            memo=memo,
        )
        if decision.action is MigrationAction.REMOVE:
            self._remove_replica(replica.user, position, now)
        elif decision.action is MigrationAction.MOVE and decision.target_position is not None:
            created = self._create_replica(
                replica.user,
                decision.target_position,
                now,
                requesting_position=position,
                incoming_profit=decision.profit,
            )
            if created:
                self._remove_replica(replica.user, position, now)
                self.counters.replicas_migrated += 1

    def _decide_with_candidates(
        self,
        slot: int,
        position: int,
        now: float,
        user: int,
        origins: dict[int, float],
        candidates,
    ) -> None:
        """Fused Algorithms 2+3 of the batch kernel (allocation-free).

        Behaviourally identical to :meth:`_consider_replication` — the same
        pricing arithmetic in the same per-origin order and the same
        decision application — but running on recycled scratch containers
        with no closure, memo-object or decision-object allocation per
        evaluation.  The caller (the request kernel) has already resolved
        the per-origin ``candidates`` (non-empty, possibly served from the
        per-slot candidate memo) and handles the no-candidate cases inline;
        the per-event path keeps the shared :mod:`~repro.core.replication`
        / :mod:`~repro.core.migration` implementations, which the parity
        suite holds byte-identical to this kernel.
        """
        table = self.tables
        stats = table.stats
        topology = self.topology
        replica_device = self._device_of_position[position]
        admission_threshold_under = self.admission_threshold_under
        write_broker = self.proxies.write_proxy.get(user)

        # Algorithm 2: price a new replica against the current server.
        best_profit = 0.0
        best_position = None
        triples = self._eval_triples
        profits = self._eval_profits
        profits.clear()
        nearest, priced_writes, write_distances = build_pricing(
            topology,
            origins,
            stats.total_writes(slot),
            replica_device,
            write_broker,
            triples,
        )
        for origin, candidate_position, candidate_device in candidates:
            profit = profits.get(candidate_device)
            if profit is None:
                profit = priced_profit(
                    topology,
                    triples,
                    nearest,
                    priced_writes,
                    write_distances,
                    replica_device,
                    candidate_device,
                )
                profits[candidate_device] = profit
            threshold = admission_threshold_under(origin)
            if profit > threshold and profit > best_profit:
                best_position = candidate_position
                best_profit = profit
        if best_position is not None:
            self._create_replica(
                user,
                best_position,
                now,
                requesting_position=position,
                incoming_profit=best_profit,
            )
            return
        if not self.config.enable_view_migration:
            return

        # Algorithm 3: migrate (or remove) this replica.  A sole replica is
        # priced against its own server — exactly Algorithm 2's reference,
        # so its pricing state and per-device profits are reused verbatim.
        next_closest = table._next_closest[slot]
        sole = next_closest == NO_SLOT
        reference = replica_device if sole else next_closest
        if sole:
            # Pricing the replica's own server against itself: candidate
            # and reference costs come from the same row, so the clamped
            # read terms cancel exactly and only the write cost remains.
            if write_distances is not None:
                stay_profit = 0.0 - priced_writes * write_distances[replica_device]
            else:
                stay_profit = 0.0
        else:
            triples = self._eval_triples_migration
            profits = self._eval_profits_migration
            profits.clear()
            nearest, priced_writes, write_distances = build_pricing(
                topology,
                origins,
                stats.total_writes(slot),
                reference,
                write_broker,
                triples,
            )
            stay_profit = priced_profit(
                topology,
                triples,
                nearest,
                priced_writes,
                write_distances,
                reference,
                replica_device,
            )
        best_profit = stay_profit
        best_position = None
        for origin, candidate_position, candidate_device in candidates:
            profit = profits.get(candidate_device)
            if profit is None:
                profit = priced_profit(
                    topology,
                    triples,
                    nearest,
                    priced_writes,
                    write_distances,
                    reference,
                    candidate_device,
                )
                profits[candidate_device] = profit
            threshold = admission_threshold_under(origin)
            if profit > best_profit and profit > threshold:
                best_position = candidate_position
                best_profit = profit
        if best_profit < 0 and not sole:
            self._remove_replica(user, position, now)
        elif best_position is not None and best_profit > stay_profit:
            created = self._create_replica(
                user,
                best_position,
                now,
                requesting_position=position,
                incoming_profit=best_profit,
            )
            if created:
                self._remove_replica(user, position, now)
                self.counters.replicas_migrated += 1

    def _create_replica(
        self,
        user: int,
        target_position: int,
        now: float,
        requesting_position: int | None = None,
        incoming_profit: float = 0.0,
    ) -> bool:
        """Create a replica of ``user``'s view on ``target_position``.

        Returns True when the replica was created.  The target may refuse
        when it is full and none of its evictable replicas is less useful
        than the incoming view.
        """
        assert self.accountant is not None and self.routing is not None
        table = self.tables
        positions = table.user_positions(user)
        if target_position in positions:
            return False
        if table.used[target_position] >= table.capacities[target_position]:
            if not self._make_room(target_position, incoming_profit, now):
                self.counters.creation_rejected_full += 1
                return False

        write_broker = self.proxies.write_broker(user)
        device_of_position = self._device_of_position
        target_device = device_of_position[target_position]
        before_devices = {device_of_position[p] for p in positions}

        # Control traffic: the requesting server notifies the write proxy,
        # which instructs the target server and ships the view data from the
        # closest existing replica.
        if requesting_position is not None and write_broker is not None:
            self.accountant.record(
                device_of_position[requesting_position],
                write_broker,
                MessageKind.REPLICA_CONTROL,
                now,
            )
        if write_broker is not None:
            self.accountant.record(write_broker, target_device, MessageKind.REPLICA_CONTROL, now)
        source_device = self.routing.closest_replica(target_device, before_devices)
        self.accountant.record(source_device, target_device, MessageKind.REPLICA_COPY, now)

        source_slot = table.slot_of(user, self._position_of_device[source_device])
        new_slot = table.allocate(user, target_position, write_proxy_broker=write_broker)
        self._seed_statistics(source_slot, new_slot, source_device, target_device, now)
        self._invalidate_ranks(target_position)
        self._notify_routing_add(user, before_devices, target_device, now)
        self._refresh_next_closest(user)
        self._refresh_utility(new_slot)
        self.counters.replicas_created += 1
        return True

    def _seed_statistics(
        self, source_slot: int, new_slot: int, source_device: int, target_device: int, now: float
    ) -> None:
        """Seed a freshly created replica's statistics from its source.

        The new replica inherits, from the replica it was copied from, the
        read counts of the origins that will be routed to it (those closer to
        the new location than to the source) and the view's write rate.
        Seeding prevents a cold-start artefact where a new replica — created
        precisely because a region reads the view heavily — would look
        useless at the next maintenance tick simply because its own counters
        are still empty, get evicted, and be re-created on the next read.
        """
        assert self.topology is not None
        stats = self.tables.stats
        cost_from_origin = self.topology.cost_from_origin
        for origin, reads in stats.reads_by_origin(source_slot).items():
            if cost_from_origin(origin, target_device) < cost_from_origin(
                origin, source_device
            ):
                stats.record_read(new_slot, origin, now, reads)
        writes = stats.total_writes(source_slot)
        if writes:
            stats.record_write(new_slot, now, writes)
        stats.mark_evaluated(new_slot)

    def _make_room(self, target_position: int, incoming_profit: float, now: float) -> bool:
        """Evict the least useful replica of a full server if it is less
        useful than the incoming view.  Returns True when a slot was freed."""
        table = self.tables
        candidates = table.eviction_candidate_slots(target_position)
        if not candidates:
            return False
        victim = candidates[0]
        if table.effective_utility(victim) >= incoming_profit:
            return False
        self._remove_replica(table._user[victim], target_position, now)
        return True

    def _remove_replica(self, user: int, position: int, now: float) -> bool:
        """Remove the replica of ``user`` stored at ``position`` (never the
        last one)."""
        assert self.accountant is not None
        table = self.tables
        slot = table.slot_of(user, position)
        if slot is None:
            return False
        if table.user_replica_count(user) <= self.config.min_replicas:
            return False
        device_of_position = self._device_of_position
        device = device_of_position[position]
        before_devices = {device_of_position[p] for p in table.user_positions(user)}
        table.free(slot)
        self._invalidate_ranks(position)
        after_devices = {device_of_position[p] for p in table.user_positions(user)}

        write_broker = self.proxies.write_broker(user)
        if write_broker is not None:
            self.accountant.record(device, write_broker, MessageKind.REPLICA_CONTROL, now)
        self._notify_routing_remove(user, after_devices, device, now)
        self._refresh_next_closest(user)
        self.counters.replicas_removed += 1
        return True

    def _notify_routing_change(
        self, user: int, before: set[int], after: set[int], now: float
    ) -> None:
        """Send routing updates to the brokers whose closest replica changed."""
        assert self.routing is not None and self.accountant is not None
        write_broker = self.proxies.write_broker(user)
        if write_broker is None:
            return
        for broker in self.routing.affected_brokers(before, after):
            if broker == write_broker:
                continue
            self.accountant.record(write_broker, broker, MessageKind.ROUTING_UPDATE, now)

    def _notify_routing_add(
        self, user: int, before: set[int], added: int, now: float
    ) -> None:
        """Routing updates when ``added`` joins the replica set ``before``."""
        assert self.routing is not None and self.accountant is not None
        write_broker = self.proxies.write_broker(user)
        if write_broker is None:
            return
        record = self.accountant.record
        for broker in self.routing.affected_brokers_on_add(before, added):
            if broker == write_broker:
                continue
            record(write_broker, broker, MessageKind.ROUTING_UPDATE, now)

    def _notify_routing_remove(
        self, user: int, after: set[int], removed: int, now: float
    ) -> None:
        """Routing updates when ``removed`` leaves, ``after`` surviving."""
        assert self.routing is not None and self.accountant is not None
        write_broker = self.proxies.write_broker(user)
        if write_broker is None:
            return
        record = self.accountant.record
        for broker in self.routing.affected_brokers_on_remove(after, removed):
            if broker == write_broker:
                continue
            record(write_broker, broker, MessageKind.ROUTING_UPDATE, now)

    def _refresh_next_closest(self, user: int) -> None:
        """Refresh every replica's pointer to its next-closest sibling."""
        assert self.routing is not None
        table = self.tables
        device_of_position = self._device_of_position
        slots = table.user_slots(user)
        next_closest = table._next_closest
        server_column = table._server
        # A next-closest change re-prices every replica of the view at the
        # next tick (the pointer is Algorithm 1's reference replica).
        tick_dirty = table._tick_dirty
        for slot in slots:
            tick_dirty[server_column[slot]] = True
        if len(slots) == 1:
            next_closest[slots[0]] = NO_SLOT
            return
        if len(slots) == 2:
            # The common replicated case: each replica's only sibling is
            # the other one.
            first, second = slots
            next_closest[first] = device_of_position[server_column[second]]
            next_closest[second] = device_of_position[server_column[first]]
            return
        devices = {device_of_position[server_column[slot]] for slot in slots}
        for slot in slots:
            device = device_of_position[server_column[slot]]
            nearest = self.routing.next_closest(device, devices)
            next_closest[slot] = NO_SLOT if nearest is None else nearest

    # =====================================================================
    # Maintenance tick
    # =====================================================================
    def on_tick(self, now: float) -> None:
        """Hourly maintenance: rotate counters, refresh utilities and
        thresholds, evict, and run the migration sweep (Algorithm 3).

        Dispatches to the fused column sweep (the default) or to the
        per-slot reference path; the two produce byte-identical simulation
        results (tick parity tests pin this for every strategy and
        scenario).
        """
        if self.batch_tick:
            self._on_tick_batched(now)
        else:
            self._on_tick_reference(now)

    def _on_tick_reference(self, now: float) -> None:
        """Per-slot reference tick: wholesale counter rotation, then a
        utility walk per position.  Kept verbatim as the baseline of the
        tick parity tests and the tick benchmark
        (``SimulationConfig(batch_tick=False)``)."""
        self.require_bound()
        assert self.topology is not None
        self._last_tick = now
        self._threshold_cache.clear()

        table = self._require_tables()
        # Counter rotation is one flat sweep over the statistics columns;
        # the utility refresh then walks each position's chain (Algorithm 1
        # per replica) before its admission threshold is recomputed.  Sole
        # replicas short-circuit to infinite utility without pricing
        # (Algorithm 1 needs a next-closest replica to compare against).
        table.advance_all_counters(now)
        admission_fill = self.config.admission_fill
        stats = table.stats
        srv_head = table._srv_head
        srv_next = table._srv_next
        next_closest = table._next_closest
        utility = table._utility
        server_column = table._server
        user_column = table._user
        write_node = stats._write_node
        node_total = stats._node_total
        origins_of = stats.reads_by_origin
        device_of_position = self._device_of_position
        write_broker_of = self.proxies.write_proxy.get
        topology = self.topology
        for position in range(table.num_positions):
            slot = srv_head[position]
            while slot != NO_SLOT:
                nearest = next_closest[slot]
                if nearest == NO_SLOT:
                    utility[slot] = INFINITE_UTILITY
                else:
                    node = write_node[slot]
                    utility[slot] = estimate_profit_values(
                        topology,
                        origins_of(slot),
                        node_total[node] if node != NO_SLOT else 0.0,
                        device_of_position[server_column[slot]],
                        nearest,
                        write_broker_of(user_column[slot]),
                    )
                slot = srv_next[slot]
            table.update_admission_threshold(position, admission_fill)

        # Proactive eviction: free memory on servers above the threshold,
        # shedding the least useful replicas first.
        eviction_threshold = self.config.eviction_threshold
        for position in range(table.num_positions):
            if not table.needs_eviction(position, eviction_threshold):
                continue
            excess = table.excess_replicas(position, eviction_threshold)
            for slot in table.eviction_candidate_slots(position):
                if excess <= 0:
                    break
                if self._remove_replica(user_column[slot], position, now):
                    excess -= 1

        # Views with negative utility are removed regardless of memory
        # pressure (their write cost exceeds their read benefit).
        for position in range(table.num_positions):
            for slot in table.position_slots(position):
                if table.effective_utility(slot) < 0:
                    self._remove_replica(user_column[slot], position, now)

    def _on_tick_batched(self, now: float) -> None:
        """Fused maintenance sweep over the placement and statistics columns.

        One chain walk per *dirty* position does everything the reference
        tick does in three passes: rotates each replica's counter windows
        (the per-node arithmetic of ``StatsTable.advance_pool``), gathers
        the surviving ``(origin, reads)`` pairs straight off the node
        columns, prices the replica with
        :func:`~repro.core.utility.estimate_profit_pairs` (no per-slot dict
        materialisation), and recomputes the admission threshold once the
        chain is done.

        Positions are skipped entirely — no rotation, no pricing, no
        threshold — when nothing that feeds Algorithm 1 changed since their
        last sweep:

        * ``ReplicaTable._tick_dirty`` is raised by reads, writes, placement
          changes (allocate/detach/capacity), next-closest refreshes and
          write-proxy migrations touching the position;
        * ``_tick_next_expiry`` bounds the first rotation period at which
          any counter of the position drops non-zero history.  Until then,
          deferring the rotation only skips zero-subtractions, so windows,
          utilities and thresholds are provably unchanged — records landing
          later advance their node lazily from the stale period with
          identical results (amounts are non-negative, so the skipped
          buckets are exactly the zero ones).

        The expiry bound is computed *lazily*: a position swept because it
        is dirty publishes the trivial bound 0 ("sweep again next tick") and
        skips the oldest-bucket probes entirely — steady traffic re-dirties
        it before the bound would ever be consulted, so the probes would be
        pure waste.  Only a sweep of a *clean* position (one re-priced
        because its previous bound expired) pays for the exact scan; that
        is precisely the moment the position may go quiet and the bound
        starts earning its keep.  Net effect: quiet positions pay one extra
        no-op sweep on their first silent tick, busy positions never probe
        buckets at all.  Under-estimating the bound is always safe — it
        only schedules extra sweeps, and sweeping re-derives every value
        the reference path would compute.

        Unlike the reference path's wholesale ``_origins_cache.clear()``,
        the sweep invalidates the per-slot origin dicts *precisely*: only
        when a rotation actually changed a read window.  Untouched dicts
        stay value- and order-identical to a rebuild (first-record chain
        order), which keeps the decision kernel's candidate memos hot
        across ticks.  The eviction pass is unchanged (its ``needs_eviction``
        gate is O(1)); the negative-utility pass only scans positions whose
        last sweep actually produced a negative utility (eviction removals
        can only *raise* effective utilities, never create negatives).

        Byte-identical to :meth:`_on_tick_reference` by construction: same
        per-origin accumulation order, same rotation arithmetic, same
        removal order.
        """
        self.require_bound()
        assert self.topology is not None
        self._last_tick = now
        self._threshold_cache.clear()

        table = self._require_tables()
        stats = table.stats
        admission_fill = self.config.admission_fill
        period_index = int(now // stats.period)
        counter_slots = stats.slots

        srv_head = table._srv_head
        srv_next = table._srv_next
        next_closest = table._next_closest
        utility = table._utility
        user_column = table._user
        tick_dirty = table._tick_dirty
        read_head = stats._read_head
        write_node = stats._write_node
        node_next = stats._node_next
        node_origin = stats._node_origin
        node_period = stats._node_period
        node_total = stats._node_total
        node_buckets = stats._node_buckets
        origins_cache = stats._origins_cache
        device_of_position = self._device_of_position
        write_broker_of = self.proxies.write_proxy.get
        topology = self.topology
        pairs = self._tick_pairs
        next_expiry = self._tick_next_expiry
        has_negative = self._tick_has_negative
        num_positions = table.num_positions
        # Positions added after deployment start dirty, like the initial ones.
        while len(next_expiry) < num_positions:
            next_expiry.append(0)
            has_negative.append(False)

        for position in range(num_positions):
            if tick_dirty[position]:
                tick_dirty[position] = False
                # Dirty sweep: publish the trivial bound and skip the
                # oldest-bucket probes (see the docstring).
                want_expiry = False
                expiry = 0
            elif period_index < next_expiry[position]:
                continue
            else:
                # Expiry-triggered sweep of a clean position: compute the
                # exact bound so it can start skipping ticks.
                want_expiry = True
                expiry = _NEVER_EXPIRES
            negative = False
            position_device = device_of_position[position]
            slot = srv_head[position]
            while slot != NO_SLOT:
                pairs.clear()
                changed = False
                node = read_head[slot]
                while node != NO_SLOT:
                    total = node_total[node]
                    current = node_period[node]
                    if current < period_index:
                        # Inlined ``advance_pool`` per-node rotation; a zero
                        # window total means every bucket is already zero.
                        if total:
                            base = node * counter_slots
                            elapsed = period_index - current
                            if elapsed >= counter_slots:
                                for index in range(base, base + counter_slots):
                                    node_buckets[index] = 0.0
                                node_total[node] = 0.0
                                total = 0.0
                                changed = True
                            else:
                                before = total
                                for step in range(1, elapsed + 1):
                                    index = base + (current + step) % counter_slots
                                    total -= node_buckets[index]
                                    node_buckets[index] = 0.0
                                node_total[node] = total
                                if total != before:
                                    changed = True
                        node_period[node] = period_index
                    if total > 0.0:
                        pairs.append((node_origin[node], total))
                        # Oldest surviving bucket bounds the next rotation
                        # at which this window drops history.  Ages past
                        # ``period_index`` name periods before the epoch
                        # (physically zero buckets); skipping them and the
                        # scan itself once the bound is already minimal
                        # keeps this probe O(1) amortised.
                        if want_expiry and expiry > period_index + 1:
                            base = node * counter_slots
                            for age in range(min(counter_slots - 1, period_index), -1, -1):
                                if node_buckets[base + (period_index - age) % counter_slots]:
                                    drop = period_index - age + counter_slots
                                    if drop < expiry:
                                        expiry = drop
                                    break
                    node = node_next[node]
                if changed:
                    # Precise invalidation: the cached origin dict only
                    # mirrors read-window totals, so it survives rotations
                    # that drop nothing.
                    origins_cache.pop(slot, None)
                wtotal = 0.0
                wnode = write_node[slot]
                if wnode != NO_SLOT:
                    wtotal = node_total[wnode]
                    current = node_period[wnode]
                    if current < period_index:
                        if wtotal:
                            base = wnode * counter_slots
                            elapsed = period_index - current
                            if elapsed >= counter_slots:
                                for index in range(base, base + counter_slots):
                                    node_buckets[index] = 0.0
                                node_total[wnode] = 0.0
                                wtotal = 0.0
                            else:
                                for step in range(1, elapsed + 1):
                                    index = base + (current + step) % counter_slots
                                    wtotal -= node_buckets[index]
                                    node_buckets[index] = 0.0
                                node_total[wnode] = wtotal
                        node_period[wnode] = period_index
                    if wtotal > 0.0 and want_expiry and expiry > period_index + 1:
                        base = wnode * counter_slots
                        for age in range(min(counter_slots - 1, period_index), -1, -1):
                            if node_buckets[base + (period_index - age) % counter_slots]:
                                drop = period_index - age + counter_slots
                                if drop < expiry:
                                    expiry = drop
                                break
                nearest = next_closest[slot]
                if nearest == NO_SLOT:
                    utility[slot] = INFINITE_UTILITY
                else:
                    value = estimate_profit_pairs(
                        topology,
                        pairs,
                        wtotal,
                        position_device,
                        nearest,
                        write_broker_of(user_column[slot]),
                    )
                    utility[slot] = value
                    if value < 0.0:
                        negative = True
                slot = srv_next[slot]
            next_expiry[position] = expiry
            has_negative[position] = negative
            table.update_admission_threshold(position, admission_fill)

        # Proactive eviction, exactly as the reference path (the
        # needs_eviction gate is already O(1) per position).
        eviction_threshold = self.config.eviction_threshold
        for position in range(num_positions):
            if not table.needs_eviction(position, eviction_threshold):
                continue
            excess = table.excess_replicas(position, eviction_threshold)
            for slot in table.eviction_candidate_slots(position):
                if excess <= 0:
                    break
                if self._remove_replica(user_column[slot], position, now):
                    excess -= 1

        # Negative-utility removal, gated on the sweep's verdict: eviction
        # removals only detach slots (utilities and effective utilities of
        # the survivors can only move towards +inf when a sibling leaves),
        # so a position whose sweep saw no negative utility cannot grow one
        # by the time this pass runs.  Refused removals (min_replicas) keep
        # the flag raised and are retried next tick, like the reference.
        for position in range(num_positions):
            if not has_negative[position]:
                continue
            for slot in table.position_slots(position):
                if table.effective_utility(slot) < 0:
                    self._remove_replica(user_column[slot], position, now)

    def _refresh_utility(self, slot: int) -> None:
        """Recompute the cached utility of a replica (Algorithm 1).

        Sole replicas are pinned at infinite utility (window totals are
        never negative, so the object path's ``total_reads() >= 0`` guard
        was always true).
        """
        assert self.topology is not None
        table = self.tables
        next_closest = table._next_closest[slot]
        if next_closest == NO_SLOT:
            table._utility[slot] = INFINITE_UTILITY
            return
        scratch = self._stats_scratch
        scratch.slot = slot
        table._utility[slot] = estimate_profit(
            self.topology,
            scratch,
            self._device_of_position[table._server[slot]],
            next_closest,
            self.proxies.write_broker(table._user[slot]),
        )

    # =====================================================================
    # Graph evolution
    # =====================================================================
    def on_edge_added(self, follower: int, followee: int, now: float) -> None:
        """New social connection: make sure both users exist in the store."""
        self._ensure_user(follower)
        self._ensure_user(followee)
        # The follower's read fan-out changed: proxy-stay memos are stale.
        self._exec_epoch += 1

    def on_edge_removed(self, follower: int, followee: int, now: float) -> None:
        """Removed connection: nothing to do, statistics decay naturally —
        but the follower's read fan-out changed, so proxy-stay memos are
        stale."""
        self._exec_epoch += 1

    # =====================================================================
    # Server failures and elastic capacity
    # =====================================================================
    def on_server_down(
        self, position: int, now: float, graceful: bool = False
    ) -> RecoveryPlan:
        """Evacuate a departed server and re-place what it held.

        Views replicated elsewhere only need routing updates (the surviving
        replicas keep serving — the paper's fast recovery path).  Views
        whose sole replica lived here are re-created on the least-loaded
        survivor: after a crash the data comes from the persistent store
        through the view's write proxy, on a graceful drain it is copied
        directly from the leaving server (and keeps its access statistics).
        """
        self.require_bound()
        assert self.accountant is not None and self.topology is not None
        if self.routing is None or not self.servers:
            raise SimulationError("the placement has not been deployed yet")
        table = self._require_tables()
        self._begin_server_down(position, self._down_positions, len(self.servers))
        self.counters.servers_lost += 1

        device_of_position = self._device_of_position
        device = device_of_position[position]
        plan = RecoveryPlan(crashed_server=position)
        doomed = table.position_slots(position)
        for slot in doomed:
            user = table._user[slot]
            write_proxy = table._write_proxy[slot]
            before_devices = {
                device_of_position[p] for p in table.user_positions(user)
            }
            table.detach(slot)
            remaining = table.user_positions(user)
            if remaining:
                # Fast path: other replicas keep serving; reroute brokers.
                plan.recoverable_from_memory.append(user)
                self.counters.views_recovered_from_memory += 1
                after_devices = {device_of_position[p] for p in remaining}
                self._notify_routing_remove(user, after_devices, device, now)
                self._refresh_next_closest(user)
                continue
            # Slow path: the sole replica is gone; rebuild it elsewhere.
            target = self._recovery_target()
            target_device = device_of_position[target]
            write_broker = self.proxies.write_broker(user)
            if graceful:
                plan.recoverable_from_memory.append(user)
                self.counters.views_recovered_from_memory += 1
                source = device
            else:
                plan.recoverable_from_disk.append(user)
                self.counters.views_recovered_from_disk += 1
                # The write proxy pulls the view out of the persistent
                # store and ships it to the new host; the crash wiped the
                # access statistics along with the memory.
                source = (
                    write_broker
                    if write_broker is not None
                    else self.topology.proxy_broker_for_server(target_device)
                )
            self.accountant.record(source, target_device, MessageKind.REPLICA_COPY, now)
            new_slot = table.allocate(
                user,
                target,
                write_proxy_broker=None if write_proxy == NO_SLOT else write_proxy,
            )
            if graceful:
                # A drained replica keeps its access history.
                table.stats.move_slot(slot, new_slot)
            self._notify_routing_change(user, before_devices, {target_device}, now)
            self._refresh_next_closest(user)

        # Recycle the evacuated slots and leave the departed position with
        # zero capacity (and an infinite admission threshold) while it is
        # away so no decision ever lands on it.
        for slot in doomed:
            table.release(slot)
        table.set_capacity(position, 0)
        table.admission_thresholds[position] = INFINITE_UTILITY
        self._threshold_cache.clear()
        self._origin_rank_cache.clear()
        for memo in self._route_memo.values():
            memo.clear()
        self._exec_epoch += 1
        return plan

    def on_server_up(self, position: int, now: float) -> None:
        """A server rejoins with empty memory and its nominal capacity.

        Nothing is placed on it eagerly: its zero admission threshold makes
        it the most attractive target, so Algorithms 2 and 3 rebalance views
        onto it as traffic flows.
        """
        self._begin_server_up(position, self._down_positions)
        table = self._require_tables()
        table.set_capacity(position, self._position_capacity[position])
        table.admission_thresholds[position] = 0.0
        self._threshold_cache.clear()
        self._origin_rank_cache.clear()
        for memo in self._route_memo.values():
            memo.clear()
        self._exec_epoch += 1

    def _recovery_target(self) -> int:
        """Least-loaded in-service server, preferring ones with free slots.

        Recovery must always succeed, so when every survivor is full the
        least-utilised one takes the view anyway (the next maintenance
        tick's eviction pass works the overshoot off).
        """
        table = self.tables
        target = pick_least_loaded(
            table.used, self._down_positions, capacities=table.capacities, skip_full=True
        )
        if target is None:
            target = pick_least_loaded(
                table.used, self._down_positions, capacities=table.capacities
            )
        if target is None:
            raise SimulationError("no storage server is available")
        return target

    # =====================================================================
    # Introspection
    # =====================================================================
    def replica_positions(self, user: int) -> tuple[int, ...]:
        """Storage-server positions holding a replica of ``user``'s view."""
        return self._require_tables().user_positions(user)

    def replica_locations(self) -> dict[int, set[int]]:
        table = self._require_tables()
        device_of_position = self._device_of_position
        return {
            user: {device_of_position[p] for p in table.user_positions(user)}
            for user in table.users()
        }

    def replica_count(self, user: int) -> int:
        return self._require_tables().user_replica_count(user)

    def has_any_replica(self, user: int) -> bool:
        """O(1) availability check used by the simulator's final audit."""
        return self._require_tables().has_user(user)

    def replication_factor(self) -> float:
        """Average number of replicas per view."""
        table = self._require_tables()
        users = len(table._user_head)
        if not users:
            return 0.0
        return table.active_count / users

    def memory_in_use(self) -> int:
        """Total view slots in use (O(1) from the table counters)."""
        return self._require_tables().active_count

    def memory_capacity(self) -> int:
        """Total capacity of the cluster in views."""
        return sum(self._require_tables().capacities)

    def server_utilisations(self) -> list[float]:
        """Per-server memory utilisation (O(1) per server from counters)."""
        table = self._require_tables()
        result = []
        for position in range(table.num_positions):
            capacity = table.capacities[position]
            used = table.used[position]
            if capacity == 0:
                result.append(1.0 if used else 0.0)
            else:
                result.append(used / capacity)
        return result


__all__ = ["DynaSoRe", "INITIAL_PLACEMENTS", "InitialAssignment", "fit_assignment_to_capacity"]
