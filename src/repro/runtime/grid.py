"""Grid expansion for figure-style experiments.

Every figure/table of the paper is a cross product of independent runs —
strategies x memory budgets x datasets x scenarios.  :class:`RunGrid`
expands those axes into an ordered tuple of :class:`~repro.runtime.spec.RunSpec`
objects that a :class:`~repro.runtime.executor.RuntimeExecutor` can fan out
in one call, and :class:`GridResult` pairs the specs back up with their
results for the figure-specific post-processing.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from ..config import SimulationConfig
from ..simulator.results import SimulationResult
from .spec import GraphSpec, RunSpec, ScenarioSpec, TopologySpec, WorkloadSpec


@dataclass(frozen=True)
class RunGrid:
    """Ordered collection of run specs (one experiment grid)."""

    specs: tuple[RunSpec, ...]

    @staticmethod
    def product(
        topologies: Sequence[TopologySpec] | TopologySpec,
        graphs: Sequence[GraphSpec] | GraphSpec,
        workloads: Sequence[WorkloadSpec] | WorkloadSpec,
        configs: Sequence[SimulationConfig] | SimulationConfig,
        strategies: Sequence[str] | str,
        scenarios: Sequence[ScenarioSpec | None] = (None,),
        **spec_kwargs,
    ) -> "RunGrid":
        """Cross product of the experiment axes.

        Scalar arguments are treated as one-element axes.  The strategy axis
        is innermost so the expansion order matches the paper's reporting
        (every strategy at one grid point, then the next point) — and, for
        the executor, runs that share expensive inputs sit next to each
        other.  Extra keyword arguments go to every :class:`RunSpec`
        verbatim (``strategy_seed``, ``tracked_views``, ...).
        """
        specs = [
            RunSpec(
                topology=topology,
                graph=graph,
                workload=workload,
                strategy=strategy,
                config=config,
                scenario=scenario,
                **spec_kwargs,
            )
            for topology in _axis(topologies)
            for graph in _axis(graphs)
            for workload in _axis(workloads)
            for scenario in _axis(scenarios)
            for config in _axis(configs)
            for strategy in _axis(strategies)
        ]
        return RunGrid(specs=tuple(specs))

    def __iter__(self) -> Iterator[RunSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def run(self, executor) -> "GridResult":
        """Execute the grid on an executor; pairs specs with results."""
        return GridResult(self.specs, tuple(executor.run(self.specs)))


def _axis(value) -> tuple:
    """Normalise one grid axis: scalars become one-element axes."""
    if value is None:
        return (None,)
    if isinstance(value, (list, tuple)):
        return tuple(value)
    return (value,)


@dataclass(frozen=True)
class GridResult:
    """Results of a grid execution, aligned with the expanded specs."""

    specs: tuple[RunSpec, ...]
    results: tuple[SimulationResult, ...]

    def items(self) -> Iterator[tuple[RunSpec, SimulationResult]]:
        """Iterate ``(spec, result)`` pairs in grid order."""
        return iter(zip(self.specs, self.results))

    def select(self, **criteria) -> list[tuple[RunSpec, SimulationResult]]:
        """Pairs whose spec matches every criterion.

        Criteria compare against :class:`RunSpec` fields by name, with two
        conveniences: ``extra_memory_pct`` matches ``config.extra_memory_pct``
        and ``dataset`` matches ``graph.dataset``.
        """
        matched = []
        for spec, result in self.items():
            for key, expected in criteria.items():
                if key == "extra_memory_pct":
                    actual: object = spec.config.extra_memory_pct
                elif key == "dataset":
                    actual = spec.graph.dataset
                else:
                    actual = getattr(spec, key)
                if actual != expected:
                    break
            else:
                matched.append((spec, result))
        return matched

    def by_strategy(self, **criteria) -> dict[str, SimulationResult]:
        """``{strategy key: result}`` for the pairs matching the criteria."""
        return {spec.strategy: result for spec, result in self.select(**criteria)}


def iter_strategy_results(
    grid_result: GridResult,
) -> Iterable[tuple[str, SimulationResult]]:
    """Convenience iterator over ``(strategy, result)`` pairs."""
    for spec, result in grid_result.items():
        yield spec.strategy, result


__all__ = ["GridResult", "RunGrid", "iter_strategy_results"]
