"""Parallel experiment runtime.

Declarative :class:`RunSpec` descriptions of simulation runs, grid
expansion (:class:`RunGrid`), and a :class:`RuntimeExecutor` with serial
and process-pool backends plus an on-disk result cache.  See
``README.md`` ("Experiment runtime") for the user-facing tour.
"""

from .executor import (
    DEFAULT_CACHE_DIR,
    Progress,
    ResultCache,
    RuntimeExecutor,
    execute_spec,
)
from .grid import GridResult, RunGrid
from .spec import (
    FlashSpec,
    GraphSpec,
    RunSpec,
    STRATEGY_KEYS,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    build_strategy,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "FlashSpec",
    "GraphSpec",
    "GridResult",
    "Progress",
    "ResultCache",
    "RunGrid",
    "RunSpec",
    "RuntimeExecutor",
    "STRATEGY_KEYS",
    "ScenarioSpec",
    "TopologySpec",
    "WorkloadSpec",
    "build_strategy",
    "execute_spec",
]
