"""Execution backends for declarative run specs.

:func:`execute_spec` materialises a :class:`~repro.runtime.spec.RunSpec`
and runs it to a :class:`~repro.simulator.results.SimulationResult`; it is a
module-level function so it pickles cleanly into worker processes.

:class:`RuntimeExecutor` fans a list of specs out across CPU cores
(``jobs > 1`` uses a :class:`~concurrent.futures.ProcessPoolExecutor`),
consults an optional on-disk :class:`ResultCache` keyed by the spec's
content hash, and reports progress/ETA through a callback.  Results are
returned in spec order regardless of completion order, and every run is
seeded from its spec alone, so serial and parallel execution produce
identical results.
"""

from __future__ import annotations

import os
import pickle
import time
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, replace
from pathlib import Path

from ..simulator.results import SimulationResult
from .spec import RunSpec, build_strategy

#: Default location of the on-disk result cache (relative to the CWD).
DEFAULT_CACHE_DIR = ".repro-cache"


def run_materialised(
    topology,
    graph,
    strategy,
    log,
    config,
    tracked_views: Sequence[int] = (),
    scenario=None,
    persistent_store=None,
) -> SimulationResult:
    """Execution core shared by :func:`execute_spec` and the legacy
    factory-based :func:`repro.simulator.runner.run_simulation` wrapper.

    ``log`` may be a materialised :class:`~repro.workload.requests.RequestLog`
    or a chunked :class:`~repro.workload.stream.EventStream`; both replay to
    byte-identical results.
    """
    from ..simulator.engine import ClusterSimulator

    simulator = ClusterSimulator(
        topology,
        graph,
        strategy,
        config,
        scenario=scenario,
        persistent_store=persistent_store,
    )
    for user in tracked_views:
        simulator.track_view(user)
    return simulator.run(log)


def execute_spec(spec: RunSpec, shard_progress=None) -> SimulationResult:
    """Run one spec from scratch and return its result.

    Everything is rebuilt from the spec (topology, graph, stream, strategy),
    so runs are independent and deterministic in the spec's seeds — the
    property that makes both caching and process-level parallelism safe.
    The workload is consumed as a lazy chunk stream: a worker never holds
    more than one chunk of events in memory.

    A spec with ``shards > 1`` replays through the sharded engine
    (:func:`repro.simulator.shard.run_spec_sharded`) — byte-identical to the
    single-process path by contract, so both routes share one cache entry.
    ``shard_progress`` (optional) receives the workers'
    :class:`~repro.simulator.shard.ShardHeartbeat` liveness reports.
    """
    if spec.shards > 1:
        from ..simulator.shard import run_spec_sharded

        return run_spec_sharded(spec, spec.shards, progress=shard_progress)
    topology = spec.topology.build()
    graph = spec.graph.build()
    stream, workload_tracked = spec.workload.build_stream(graph)
    strategy = build_strategy(
        spec.strategy, spec.effective_strategy_seed(), spec.dynasore_config
    )
    scenario = spec.scenario.build() if spec.scenario is not None else None
    tracked = list(workload_tracked)
    tracked.extend(user for user in spec.tracked_views if user not in workload_tracked)
    return run_materialised(
        topology, graph, strategy, stream, spec.config, tracked, scenario
    )


class ResultCache:
    """On-disk cache of simulation results keyed by spec content hash."""

    def __init__(self, directory: str | os.PathLike = DEFAULT_CACHE_DIR) -> None:
        self.directory = Path(directory)

    def path_for(self, spec: RunSpec) -> Path:
        """File backing a spec's cached result."""
        return self.directory / f"{spec.cache_key()}.pkl"

    def get(self, spec: RunSpec) -> SimulationResult | None:
        """Cached result of a spec, or None (corrupt entries read as misses)."""
        path = self.path_for(spec)
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None
        if not isinstance(payload, dict) or payload.get("key") != spec.cache_key():
            return None
        result = payload.get("result")
        return result if isinstance(result, SimulationResult) else None

    def put(self, spec: RunSpec, result: SimulationResult) -> None:
        """Store a result (best effort: cache failures never fail the run)."""
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self.path_for(spec)
            tmp = path.with_suffix(".tmp")
            with tmp.open("wb") as handle:
                pickle.dump({"key": spec.cache_key(), "result": result}, handle)
            os.replace(tmp, path)
        except OSError:
            pass

    def clear(self) -> int:
        """Delete every cache entry; returns the number of files removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


@dataclass(frozen=True)
class Progress:
    """One progress update of a grid execution."""

    completed: int
    total: int
    cached: int
    elapsed: float
    #: Estimated seconds remaining (None until one run has finished live).
    eta: float | None
    #: Optional free-text detail — e.g. a per-shard heartbeat line while a
    #: sharded run is in flight.
    note: str | None = None

    def describe(self) -> str:
        """Human-readable one-liner for progress displays."""
        eta = f", eta {self.eta:.0f}s" if self.eta is not None else ""
        cached = f" ({self.cached} cached)" if self.cached else ""
        note = f" — {self.note}" if self.note else ""
        return (
            f"{self.completed}/{self.total} runs{cached}, "
            f"{self.elapsed:.0f}s elapsed{eta}{note}"
        )


ProgressCallback = Callable[[Progress], None]


class RuntimeExecutor:
    """Runs grids of specs on a serial or process-pool backend.

    Parameters
    ----------
    jobs:
        Worker processes; 1 (the default) executes in-process, which keeps
        tracebacks simple and avoids fork overhead for small grids.
    cache:
        Optional :class:`ResultCache`.  Hits skip execution entirely; every
        live result is written back.
    progress:
        Optional callback invoked with a :class:`Progress` after every
        completed run, and (serial backend only) whenever a shard worker
        of an in-flight sharded run reports a heartbeat.
    shards:
        Intra-run parallelism: rewrite every spec to replay across this many
        shard worker processes (see :mod:`repro.simulator.shard`).  Results
        are byte-identical to ``shards=1``, so the cache is shared across
        shard counts.  Composes with ``jobs`` — each pool worker may itself
        fan out — but ``jobs=1`` with ``shards=N`` is the intended pairing.
    shard_activity:
        When sharding, balance shards by expected per-user request rates
        (:mod:`repro.workload.activity`) instead of user count — the
        default, since it levels the critical-path worker on skewed
        workloads.  ``False`` restores population-balanced assignment.
        Like ``shards``, never changes results, only wall time.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        progress: ProgressCallback | None = None,
        shards: int = 1,
        shard_activity: bool = True,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if shards < 1:
            raise ValueError("shards must be at least 1")
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.shards = shards
        self.shard_activity = shard_activity

    # ------------------------------------------------------------------ runs
    def run(self, specs: Sequence[RunSpec]) -> list[SimulationResult]:
        """Execute every spec and return results in spec order."""
        specs = list(specs)
        if self.shards > 1:
            specs = [
                spec
                if spec.shards == self.shards
                and spec.shard_activity == self.shard_activity
                else replace(
                    spec, shards=self.shards, shard_activity=self.shard_activity
                )
                for spec in specs
            ]
        results: list[SimulationResult | None] = [None] * len(specs)
        started = time.perf_counter()
        cached = 0

        pending: list[int] = []
        for index, spec in enumerate(specs):
            hit = self.cache.get(spec) if self.cache is not None else None
            if hit is not None:
                results[index] = hit
                cached += 1
            else:
                pending.append(index)
        completed = len(specs) - len(pending)
        self._report(completed, len(specs), cached, started, live_done=0, live_time=0.0)

        if pending:
            if self.jobs == 1 or len(pending) == 1:
                self._run_serial(specs, results, pending, cached, started)
            else:
                self._run_parallel(specs, results, pending, cached, started)

        # Callers pair results with specs/labels positionally; a hole here
        # would silently mis-attribute every following result.
        missing = [index for index, result in enumerate(results) if result is None]
        if missing:  # pragma: no cover - defensive
            raise RuntimeError(f"runs {missing} produced no result")
        return results

    def run_labelled(
        self, labelled: Sequence[tuple[str, RunSpec]]
    ) -> dict[str, SimulationResult]:
        """Execute labelled specs; returns ``{label: result}`` in order."""
        results = self.run([spec for _, spec in labelled])
        return {label: result for (label, _), result in zip(labelled, results)}

    # -------------------------------------------------------------- backends
    def _run_serial(self, specs, results, pending, cached, started) -> None:
        live_done = 0
        live_time = 0.0
        for index in pending:
            t0 = time.perf_counter()
            result = execute_spec(
                specs[index],
                shard_progress=self._shard_heartbeat(
                    len(specs) - len(pending) + live_done, len(specs), cached, started
                ),
            )
            live_time += time.perf_counter() - t0
            live_done += 1
            results[index] = result
            if self.cache is not None:
                self.cache.put(specs[index], result)
            self._report(
                len(specs) - len(pending) + live_done,
                len(specs),
                cached,
                started,
                live_done,
                live_time,
                remaining=len(pending) - live_done,
            )

    def _run_parallel(self, specs, results, pending, cached, started) -> None:
        live_done = 0
        live_time = 0.0
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(execute_spec, specs[index]): index for index in pending}
            waiting = set(futures)
            while waiting:
                done, waiting = wait(waiting, return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures[future]
                    result = future.result()
                    results[index] = result
                    live_done += 1
                    if self.cache is not None:
                        self.cache.put(specs[index], result)
                    # Wall-clock per completed run already reflects the
                    # pool's concurrency, so the ETA formula is shared with
                    # the serial backend.
                    live_time = time.perf_counter() - started
                    self._report(
                        len(specs) - len(pending) + live_done,
                        len(specs),
                        cached,
                        started,
                        live_done,
                        live_time,
                        remaining=len(pending) - live_done,
                    )

    # -------------------------------------------------------------- progress
    def _shard_heartbeat(self, completed, total, cached, started):
        """Adapter turning shard worker heartbeats into :class:`Progress`.

        Returns None when no progress callback is installed so the shard
        coordinator skips heartbeat plumbing entirely.
        """
        if self.progress is None:
            return None

        def forward(beat) -> None:
            self.progress(
                Progress(
                    completed=completed,
                    total=total,
                    cached=cached,
                    elapsed=time.perf_counter() - started,
                    eta=None,
                    note=beat.describe(),
                )
            )

        return forward

    def _report(
        self,
        completed: int,
        total: int,
        cached: int,
        started: float,
        live_done: int,
        live_time: float,
        remaining: int = 0,
    ) -> None:
        if self.progress is None:
            return
        elapsed = time.perf_counter() - started
        eta: float | None = None
        if live_done and remaining:
            eta = live_time / live_done * remaining
        self.progress(
            Progress(
                completed=completed,
                total=total,
                cached=cached,
                elapsed=elapsed,
                eta=eta,
            )
        )


__all__ = [
    "DEFAULT_CACHE_DIR",
    "Progress",
    "ProgressCallback",
    "ResultCache",
    "RuntimeExecutor",
    "execute_spec",
    "run_materialised",
]
