"""Declarative run specifications.

A :class:`RunSpec` is a frozen, hashable description of one simulation run:
which topology to build, which social graph to generate, which request log
to replay, which placement strategy to deploy and under which
:class:`~repro.config.SimulationConfig` (plus an optional fault/load
scenario).  Because a spec contains only plain data it can be

* hashed into a stable cache key (the on-disk result cache),
* pickled across process boundaries (the parallel executor),
* expanded into grids (strategy x memory x dataset x scenario) by
  :mod:`repro.runtime.grid`.

The middleware literature calls this a *declarative request description
layer*: experiments say **what** to run, the
:class:`~repro.runtime.executor.RuntimeExecutor` decides **how**.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from ..baselines import (
    HierarchicalMetisPlacement,
    MetisPlacement,
    RandomPlacement,
    SparPlacement,
)
from ..baselines.base import PlacementStrategy
from ..config import ClusterSpec, DynaSoReConfig, FlatClusterSpec, SimulationConfig
from ..exceptions import ConfigurationError
from ..socialgraph.generators import dataset_preset, generate_social_graph
from ..socialgraph.graph import SocialGraph
from ..topology.base import ClusterTopology
from ..topology.flat import FlatTopology
from ..topology.tree import TreeTopology
from ..workload.flash import inject_flash_event, plan_flash_event
from ..workload.requests import RequestLog
from ..workload.synthetic import SyntheticWorkloadConfig, SyntheticWorkloadGenerator
from ..workload.trace import NewsActivityTraceConfig, NewsActivityTraceGenerator

#: Bump when the semantics of spec execution change, so stale on-disk cache
#: entries from older code are never served.
SPEC_VERSION = 1


# ---------------------------------------------------------------------------
# Component specs
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TopologySpec:
    """Declarative cluster topology: a tree of switches or a flat cluster."""

    kind: str = "tree"
    cluster: ClusterSpec | None = None
    machines: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("tree", "flat"):
            raise ConfigurationError(f"unknown topology kind {self.kind!r}")

    def build(self) -> ClusterTopology:
        """Materialise the topology."""
        if self.kind == "tree":
            return TreeTopology(self.cluster or ClusterSpec())
        machines = self.machines if self.machines is not None else 250
        return FlatTopology(FlatClusterSpec(machines=machines))

    @staticmethod
    def tree(cluster: ClusterSpec) -> "TopologySpec":
        return TopologySpec(kind="tree", cluster=cluster)

    @staticmethod
    def flat(machines: int) -> "TopologySpec":
        return TopologySpec(kind="flat", machines=machines)


@dataclass(frozen=True)
class GraphSpec:
    """Declarative social graph: a scaled analogue of one paper dataset."""

    dataset: str
    users: int
    seed: int

    def build(self) -> SocialGraph:
        """Generate the graph (deterministic in the seed)."""
        return generate_social_graph(
            dataset_preset(self.dataset, users=self.users), seed=self.seed
        )


@dataclass(frozen=True)
class FlashSpec:
    """Flash event injected into a workload (paper section 4.6)."""

    followers: int
    start_day: float
    end_day: float
    reads_per_follower_per_day: float = 4.0


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative request log: synthetic or trace-like, optionally with a
    flash event merged in."""

    kind: str
    days: float
    seed: int
    flash: FlashSpec | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("synthetic", "trace"):
            raise ConfigurationError(f"unknown workload kind {self.kind!r}")

    def build(self, graph: SocialGraph) -> tuple[RequestLog, tuple[int, ...]]:
        """Generate the log; returns ``(log, views to track)``.

        The tracked views are non-empty only for flash workloads: the flash
        target is chosen here (deterministically from the seed), so only the
        builder knows which view the experiment must sample.
        """
        if self.kind == "synthetic":
            log = SyntheticWorkloadGenerator(
                graph, SyntheticWorkloadConfig(days=self.days, seed=self.seed)
            ).generate()
        else:
            log = NewsActivityTraceGenerator(
                graph, NewsActivityTraceConfig(days=self.days, seed=self.seed)
            ).generate()
        if self.flash is None:
            return log, ()
        rng = random.Random(self.seed)
        event = plan_flash_event(
            graph,
            rng,
            followers=self.flash.followers,
            start_day=self.flash.start_day,
            end_day=self.flash.end_day,
        )
        log = inject_flash_event(
            log,
            event,
            reads_per_follower_per_day=self.flash.reads_per_follower_per_day,
            seed=self.seed,
        )
        return log, (event.target_user,)


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative fault/load scenario (name + constructor parameters)."""

    kind: str
    params: tuple[tuple[str, object], ...] = ()

    @staticmethod
    def of(kind: str, **params) -> "ScenarioSpec":
        """Build a spec from keyword parameters (sorted for stable hashing)."""
        return ScenarioSpec(kind=kind, params=tuple(sorted(params.items())))

    def build(self):
        """Materialise the scenario object."""
        from ..scenarios.faults import (
            CrashRecoverScenario,
            NodeChurnScenario,
            RackOutageScenario,
        )
        from ..scenarios.load import DiurnalLoadScenario, RegionalFlashCrowdScenario

        builders = {
            "crash_recover": CrashRecoverScenario,
            "rack_outage": RackOutageScenario,
            "node_churn": NodeChurnScenario,
            "diurnal_load": DiurnalLoadScenario,
            "regional_flash_crowd": RegionalFlashCrowdScenario,
        }
        builder = builders.get(self.kind)
        if builder is None:
            raise ConfigurationError(
                f"unknown scenario kind {self.kind!r}; known: {sorted(builders)}"
            )
        return builder(**dict(self.params))


# ---------------------------------------------------------------------------
# Strategy registry
# ---------------------------------------------------------------------------
#: Labels of every placement strategy evaluated by the paper, in report order.
STRATEGY_KEYS = (
    "random",
    "metis",
    "hmetis",
    "spar",
    "dynasore_random",
    "dynasore_metis",
    "dynasore_hmetis",
)


def build_strategy(
    key: str, seed: int, dynasore_config: DynaSoReConfig | None = None
) -> PlacementStrategy:
    """Fresh, unbound strategy instance for a registry key."""
    from ..core.engine import DynaSoRe

    if key == "random":
        return RandomPlacement(seed=seed)
    if key == "metis":
        return MetisPlacement(seed=seed)
    if key == "hmetis":
        return HierarchicalMetisPlacement(seed=seed)
    if key == "spar":
        return SparPlacement(seed=seed)
    if key.startswith("dynasore_"):
        initializer = key[len("dynasore_") :]
        return DynaSoRe(
            initializer=initializer,
            config=dynasore_config or DynaSoReConfig(),
            seed=seed,
        )
    raise ConfigurationError(
        f"unknown strategy key {key!r}; known: {', '.join(STRATEGY_KEYS)}"
    )


# ---------------------------------------------------------------------------
# The run spec
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """Complete, declarative description of one simulation run."""

    topology: TopologySpec
    graph: GraphSpec
    workload: WorkloadSpec
    strategy: str
    config: SimulationConfig = field(default_factory=SimulationConfig)
    scenario: ScenarioSpec | None = None
    #: Strategy seed; ``None`` means "use ``config.seed``" (the common case).
    strategy_seed: int | None = None
    #: DynaSoRe tunables (ignored by the baselines).
    dynasore_config: DynaSoReConfig | None = None
    #: Extra views whose replica counts are sampled during the run, on top
    #: of any view the workload itself asks to track (flash targets).
    tracked_views: tuple[int, ...] = ()

    def effective_strategy_seed(self) -> int:
        """Seed used to build the strategy."""
        return self.config.seed if self.strategy_seed is None else self.strategy_seed

    def cache_key(self) -> str:
        """Stable content hash of the spec (the result-cache key).

        Built from the reprs of frozen dataclasses of plain values, which
        are deterministic across processes and sessions (unlike ``hash()``,
        which is randomised for strings).
        """
        payload = (
            f"v{SPEC_VERSION}|{self.topology!r}|{self.graph!r}|{self.workload!r}|"
            f"{self.strategy}|{self.config!r}|{self.scenario!r}|"
            f"{self.strategy_seed!r}|{self.dynasore_config!r}|{self.tracked_views!r}"
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


__all__ = [
    "FlashSpec",
    "GraphSpec",
    "RunSpec",
    "STRATEGY_KEYS",
    "ScenarioSpec",
    "SPEC_VERSION",
    "TopologySpec",
    "WorkloadSpec",
    "build_strategy",
]
