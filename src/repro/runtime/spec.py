"""Declarative run specifications.

A :class:`RunSpec` is a frozen, hashable description of one simulation run:
which topology to build, which social graph to generate, which request log
to replay, which placement strategy to deploy and under which
:class:`~repro.config.SimulationConfig` (plus an optional fault/load
scenario).  Because a spec contains only plain data it can be

* hashed into a stable cache key (the on-disk result cache),
* pickled across process boundaries (the parallel executor),
* expanded into grids (strategy x memory x dataset x scenario) by
  :mod:`repro.runtime.grid`.

The middleware literature calls this a *declarative request description
layer*: experiments say **what** to run, the
:class:`~repro.runtime.executor.RuntimeExecutor` decides **how**.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from ..baselines import (
    HierarchicalMetisPlacement,
    MetisPlacement,
    RandomPlacement,
    SparPlacement,
)
from ..baselines.base import PlacementStrategy
from ..config import ClusterSpec, DynaSoReConfig, FlatClusterSpec, SimulationConfig
from ..exceptions import ConfigurationError
from ..socialgraph.generators import dataset_preset, generate_social_graph
from ..socialgraph.graph import SocialGraph
from ..topology.base import ClusterTopology
from ..topology.flat import FlatTopology
from ..topology.tree import TreeTopology
from ..workload.flash import inject_flash_stream, plan_flash_event
from ..workload.models import (
    CelebrityReadStormGenerator,
    CelebrityStormConfig,
    ParetoBurstConfig,
    ParetoBurstWorkloadGenerator,
)
from ..workload.requests import RequestLog
from ..workload.stream import EventStream
from ..workload.synthetic import SyntheticWorkloadConfig, SyntheticWorkloadGenerator
from ..workload.trace import NewsActivityTraceConfig, NewsActivityTraceGenerator

#: Bump when the semantics of spec execution change, so stale on-disk cache
#: entries from older code are never served.  Version 2: workloads are
#: generated through the chunked stream pipeline.
SPEC_VERSION = 2


# ---------------------------------------------------------------------------
# Component specs
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TopologySpec:
    """Declarative cluster topology: a tree of switches or a flat cluster."""

    kind: str = "tree"
    cluster: ClusterSpec | None = None
    machines: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("tree", "flat"):
            raise ConfigurationError(f"unknown topology kind {self.kind!r}")

    def build(self) -> ClusterTopology:
        """Materialise the topology."""
        if self.kind == "tree":
            return TreeTopology(self.cluster or ClusterSpec())
        machines = self.machines if self.machines is not None else 250
        return FlatTopology(FlatClusterSpec(machines=machines))

    @staticmethod
    def tree(cluster: ClusterSpec) -> "TopologySpec":
        return TopologySpec(kind="tree", cluster=cluster)

    @staticmethod
    def flat(machines: int) -> "TopologySpec":
        return TopologySpec(kind="flat", machines=machines)


@dataclass(frozen=True)
class GraphSpec:
    """Declarative social graph: a scaled analogue of one paper dataset."""

    dataset: str
    users: int
    seed: int

    def build(self) -> SocialGraph:
        """Generate the graph (deterministic in the seed)."""
        return generate_social_graph(
            dataset_preset(self.dataset, users=self.users), seed=self.seed
        )


@dataclass(frozen=True)
class FlashSpec:
    """Flash event injected into a workload (paper section 4.6)."""

    followers: int
    start_day: float
    end_day: float
    reads_per_follower_per_day: float = 4.0


#: Workload kinds understood by :class:`WorkloadSpec`.
WORKLOAD_KINDS = ("synthetic", "trace", "pareto_burst", "celebrity_storm", "file")


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative workload: a generated stream (synthetic, trace-like,
    Pareto-bursty, celebrity read storms) or a binary trace file, optionally
    with a flash event merged in.

    Workers rebuild the *stream* from this spec — nothing but the spec
    crosses process boundaries, and replay consumes chunks lazily, so a
    paper-scale workload is never materialised per worker.
    """

    kind: str
    days: float
    seed: int
    flash: FlashSpec | None = None
    #: Model-specific parameters (sorted key/value pairs; see ``of``).
    params: tuple[tuple[str, object], ...] = ()
    #: Path of a binary trace file (``kind="file"`` only).
    path: str | None = None
    #: SHA-256 of the trace file's bytes (``kind="file"`` only): the
    #: content address used for result-cache keys and integrity checks.
    content_hash: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ConfigurationError(f"unknown workload kind {self.kind!r}")
        if self.kind == "file" and not self.path:
            raise ConfigurationError("file workloads require a path")

    @staticmethod
    def of(kind: str, days: float, seed: int, flash: FlashSpec | None = None, **params):
        """Build a spec with model parameters (sorted for stable hashing)."""
        return WorkloadSpec(
            kind=kind,
            days=days,
            seed=seed,
            flash=flash,
            params=tuple(sorted(params.items())),
        )

    @staticmethod
    def from_file(path, flash: FlashSpec | None = None, seed: int = 0) -> "WorkloadSpec":
        """Content-addressed spec for a saved binary trace file.

        ``seed`` only matters together with ``flash``: it drives the flash
        target choice and the injected read timestamps, so sweeping flash
        randomness over one saved trace means varying ``seed`` here.
        """
        from ..workload.io import trace_content_hash

        return WorkloadSpec(
            kind="file",
            days=0.0,
            seed=seed,
            flash=flash,
            path=str(path),
            content_hash=trace_content_hash(path),
        )

    def cache_token(self) -> str:
        """Contribution of this workload to the run's cache key.

        File workloads are addressed by *content*, not by path: moving a
        trace file never invalidates cached results, and two paths holding
        identical bytes share entries.  A hand-built file spec without a
        content hash (``from_file`` always sets one) falls back to the
        path, so distinct trace files can never collide on one cache key.
        """
        if self.kind == "file":
            address = self.content_hash or f"path={self.path}"
            if self.flash is None:
                return f"WorkloadSpec(file:{address}, flash=None)"
            # The seed still matters with a flash event: it drives the
            # flash target choice and the injected read timestamps.
            return (
                f"WorkloadSpec(file:{address}, flash={self.flash!r}, "
                f"seed={self.seed})"
            )
        return repr(self)

    def build_stream(self, graph: SocialGraph) -> tuple[EventStream, tuple[int, ...]]:
        """Build the chunked event stream; returns ``(stream, tracked views)``.

        The tracked views are non-empty only for flash workloads: the flash
        target is chosen here (deterministically from the seed), so only the
        builder knows which view the experiment must sample.
        """
        params = dict(self.params)
        if self.kind == "synthetic":
            stream = SyntheticWorkloadGenerator(
                graph, SyntheticWorkloadConfig(days=self.days, seed=self.seed, **params)
            ).stream()
        elif self.kind == "trace":
            stream = NewsActivityTraceGenerator(
                graph, NewsActivityTraceConfig(days=self.days, seed=self.seed, **params)
            ).stream()
        elif self.kind == "pareto_burst":
            stream = ParetoBurstWorkloadGenerator(
                graph, ParetoBurstConfig(days=self.days, seed=self.seed, **params)
            ).stream()
        elif self.kind == "celebrity_storm":
            stream = CelebrityReadStormGenerator(
                graph, CelebrityStormConfig(days=self.days, seed=self.seed, **params)
            ).stream()
        else:
            stream = self._load_trace_file()
        if self.flash is None:
            return stream, ()
        rng = random.Random(self.seed)
        event = plan_flash_event(
            graph,
            rng,
            followers=self.flash.followers,
            start_day=self.flash.start_day,
            end_day=self.flash.end_day,
        )
        stream = inject_flash_stream(
            stream,
            event,
            reads_per_follower_per_day=self.flash.reads_per_follower_per_day,
            seed=self.seed,
        )
        return stream, (event.target_user,)

    def _load_trace_file(self) -> EventStream:
        from ..exceptions import WorkloadError
        from ..workload.io import read_trace, trace_content_hash

        if self.content_hash is not None:
            actual = trace_content_hash(self.path)
            if actual != self.content_hash:
                raise WorkloadError(
                    f"trace file {self.path} changed on disk: content hash "
                    f"{actual[:12]}… does not match the spec's "
                    f"{self.content_hash[:12]}…"
                )
        return read_trace(self.path)

    def build(self, graph: SocialGraph) -> tuple[RequestLog, tuple[int, ...]]:
        """Materialised adapter over :meth:`build_stream` (compat path)."""
        stream, tracked = self.build_stream(graph)
        return stream.materialise(), tracked


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative fault/load scenario (name + constructor parameters)."""

    kind: str
    params: tuple[tuple[str, object], ...] = ()

    @staticmethod
    def of(kind: str, **params) -> "ScenarioSpec":
        """Build a spec from keyword parameters (sorted for stable hashing)."""
        return ScenarioSpec(kind=kind, params=tuple(sorted(params.items())))

    def build(self):
        """Materialise the scenario object."""
        from ..scenarios.faults import (
            CrashRecoverScenario,
            NodeChurnScenario,
            RackOutageScenario,
        )
        from ..scenarios.load import DiurnalLoadScenario, RegionalFlashCrowdScenario

        builders = {
            "crash_recover": CrashRecoverScenario,
            "rack_outage": RackOutageScenario,
            "node_churn": NodeChurnScenario,
            "diurnal_load": DiurnalLoadScenario,
            "regional_flash_crowd": RegionalFlashCrowdScenario,
        }
        builder = builders.get(self.kind)
        if builder is None:
            raise ConfigurationError(
                f"unknown scenario kind {self.kind!r}; known: {sorted(builders)}"
            )
        return builder(**dict(self.params))


# ---------------------------------------------------------------------------
# Strategy registry
# ---------------------------------------------------------------------------
#: Labels of every placement strategy evaluated by the paper, in report order.
STRATEGY_KEYS = (
    "random",
    "metis",
    "hmetis",
    "spar",
    "dynasore_random",
    "dynasore_metis",
    "dynasore_hmetis",
)


def build_strategy(
    key: str, seed: int, dynasore_config: DynaSoReConfig | None = None
) -> PlacementStrategy:
    """Fresh, unbound strategy instance for a registry key."""
    from ..core.engine import DynaSoRe

    if key == "random":
        return RandomPlacement(seed=seed)
    if key == "metis":
        return MetisPlacement(seed=seed)
    if key == "hmetis":
        return HierarchicalMetisPlacement(seed=seed)
    if key == "spar":
        return SparPlacement(seed=seed)
    if key.startswith("dynasore_"):
        initializer = key[len("dynasore_") :]
        return DynaSoRe(
            initializer=initializer,
            config=dynasore_config or DynaSoReConfig(),
            seed=seed,
        )
    raise ConfigurationError(
        f"unknown strategy key {key!r}; known: {', '.join(STRATEGY_KEYS)}"
    )


# ---------------------------------------------------------------------------
# The run spec
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """Complete, declarative description of one simulation run."""

    topology: TopologySpec
    graph: GraphSpec
    workload: WorkloadSpec
    strategy: str
    config: SimulationConfig = field(default_factory=SimulationConfig)
    scenario: ScenarioSpec | None = None
    #: Strategy seed; ``None`` means "use ``config.seed``" (the common case).
    strategy_seed: int | None = None
    #: DynaSoRe tunables (ignored by the baselines).
    dynasore_config: DynaSoReConfig | None = None
    #: Extra views whose replica counts are sampled during the run, on top
    #: of any view the workload itself asks to track (flash targets).
    tracked_views: tuple[int, ...] = ()
    #: Intra-run parallelism: replay this spec across ``shards`` worker
    #: processes (:mod:`repro.simulator.shard`).  Deliberately **excluded**
    #: from :meth:`cache_key` — sharded and single-process replay are
    #: byte-identical by contract, so results cached under one shard count
    #: are valid under every other.
    shards: int = 1
    #: Balance shard *activity* (expected per-user request rates from
    #: :mod:`repro.workload.activity`) instead of shard population when
    #: partitioning users across shard workers.  Like ``shards``, excluded
    #: from :meth:`cache_key`: the assignment changes which worker executes
    #: which event, never the merged result.
    shard_activity: bool = True

    def effective_strategy_seed(self) -> int:
        """Seed used to build the strategy."""
        return self.config.seed if self.strategy_seed is None else self.strategy_seed

    def cache_key(self) -> str:
        """Stable content hash of the spec (the result-cache key).

        Built from the reprs of frozen dataclasses of plain values, which
        are deterministic across processes and sessions (unlike ``hash()``,
        which is randomised for strings).
        """
        payload = (
            f"v{SPEC_VERSION}|{self.topology!r}|{self.graph!r}|"
            f"{self.workload.cache_token()}|"
            f"{self.strategy}|{self.config!r}|{self.scenario!r}|"
            f"{self.strategy_seed!r}|{self.dynasore_config!r}|{self.tracked_views!r}"
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


__all__ = [
    "FlashSpec",
    "GraphSpec",
    "RunSpec",
    "STRATEGY_KEYS",
    "ScenarioSpec",
    "SPEC_VERSION",
    "TopologySpec",
    "WORKLOAD_KINDS",
    "WorkloadSpec",
    "build_strategy",
]
