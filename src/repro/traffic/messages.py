"""Message taxonomy used for traffic accounting.

The paper distinguishes *application* traffic (read requests, write updates
and their answers, 10 units each) from *system* traffic (protocol messages of
size 1 and replica data copies of size 10) when studying convergence
(Figure 6).  Every message recorded by the simulator carries one of the kinds
below so the accountant can keep the two series separate.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..constants import APPLICATION_MESSAGE_SIZE, PROTOCOL_MESSAGE_SIZE


class MessageClass(str, Enum):
    """Coarse accounting class of a message."""

    APPLICATION = "application"
    SYSTEM = "system"


class MessageKind(str, Enum):
    """Fine-grained message types recorded by the simulator."""

    READ_REQUEST = "read_request"
    READ_RESPONSE = "read_response"
    WRITE_UPDATE = "write_update"
    WRITE_ACK = "write_ack"
    REPLICA_COPY = "replica_copy"
    REPLICA_CONTROL = "replica_control"
    ROUTING_UPDATE = "routing_update"
    THRESHOLD_PIGGYBACK = "threshold_piggyback"
    PROXY_MIGRATION = "proxy_migration"

    @property
    def message_class(self) -> MessageClass:
        """Whether the kind counts as application or system traffic."""
        if self in _APPLICATION_KINDS:
            return MessageClass.APPLICATION
        return MessageClass.SYSTEM

    @property
    def default_size(self) -> int:
        """Default size of the message in protocol-message units."""
        if self in _DATA_KINDS:
            return APPLICATION_MESSAGE_SIZE
        return PROTOCOL_MESSAGE_SIZE


#: Kinds counted as application traffic (paper section 4.3).
_APPLICATION_KINDS = frozenset(
    {
        MessageKind.READ_REQUEST,
        MessageKind.READ_RESPONSE,
        MessageKind.WRITE_UPDATE,
        MessageKind.WRITE_ACK,
    }
)

#: Kinds that carry view data and therefore use the application size even
#: when they are system messages (replica copies).
_DATA_KINDS = frozenset(
    {
        MessageKind.READ_REQUEST,
        MessageKind.READ_RESPONSE,
        MessageKind.WRITE_UPDATE,
        MessageKind.WRITE_ACK,
        MessageKind.REPLICA_COPY,
    }
)


@dataclass(frozen=True)
class Message:
    """A single point-to-point message between two leaf machines."""

    source: int
    destination: int
    kind: MessageKind
    size: int
    timestamp: float

    @property
    def message_class(self) -> MessageClass:
        """Accounting class of this message."""
        return self.kind.message_class


__all__ = ["Message", "MessageClass", "MessageKind"]
