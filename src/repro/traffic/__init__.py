"""Traffic measurement substrate (switch-level message accounting)."""

from .accounting import TrafficAccountant, TrafficSnapshot
from .messages import Message, MessageClass, MessageKind

__all__ = [
    "Message",
    "MessageClass",
    "MessageKind",
    "TrafficAccountant",
    "TrafficSnapshot",
]
