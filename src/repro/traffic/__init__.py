"""Traffic measurement substrate (switch-level message accounting)."""

from .accounting import TrafficAccountant, TrafficDelta, TrafficSnapshot
from .messages import Message, MessageClass, MessageKind

__all__ = [
    "Message",
    "MessageClass",
    "MessageKind",
    "TrafficAccountant",
    "TrafficDelta",
    "TrafficSnapshot",
]
