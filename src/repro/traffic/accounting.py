"""Traffic accounting: how much data crosses every switch of the cluster.

The simulator models switches as pure forwarders (paper section 2.1): a
message between two leaf machines adds its size to every switch on the path
between them.  The accountant keeps, per device:

* total traffic,
* the application / system split used by the convergence study (Figure 6),
* a time-bucketed series used by the time plots (Figures 4 and 6).

It also aggregates traffic per switch *level* (top, intermediate, rack) since
Tables 2 and 3 of the paper report average per-level traffic.

Two recording granularities coexist:

* the per-message entry points (:meth:`TrafficAccountant.record` /
  :meth:`~TrafficAccountant.record_roundtrip`) used by the per-event replay
  path and by rare protocol messages (replica copies, routing updates);
* the batch entry points (:meth:`~TrafficAccountant.record_batch` /
  :meth:`~TrafficAccountant.record_roundtrip_batch`) used by the chunk-native
  execution kernels: a run accumulates ``(source, destination) -> count``
  aggregates and applies them with **one multiplied update per distinct
  path**.  All traffic amounts are integer-valued floats, so the multiplied
  updates are bit-for-bit identical to repeating the per-message additions.

:class:`RoundtripRun` packages the aggregation discipline (bucket segments,
warm-up separation, flush) so every strategy kernel shares one correct
implementation.

Two further facilities exist for the sharded replay engine:

* a depth-counted **mute** (:meth:`~TrafficAccountant.push_mute` /
  :meth:`~TrafficAccountant.pop_mute`): while muted, every recording entry
  point is a no-op — traffic *and* message counters.  Shard workers replay
  system events (fault bursts, ticks, edge mutations) on every shard to keep
  placement state identical, but only the owning shard may account for them;
* a **delta** protocol (:meth:`~TrafficAccountant.export_delta` /
  :meth:`~TrafficAccountant.merge_delta`): a picklable column snapshot the
  coordinator sums into a fresh accountant.  All volumes are integer-valued
  floats, so summing per-shard deltas is bit-for-bit identical to recording
  the same messages in one process, in any order or grouping.

Per-device totals live in flat ``array('d')`` columns indexed by device id.
The out-of-range contract is explicit: :meth:`~TrafficAccountant.device_traffic`
raises :class:`~repro.exceptions.SimulationError` for indices outside the
topology (it used to raise ``IndexError`` for large indices but silently
*wrap* for negative ones), while the level queries return 0.0 for levels no
switch belongs to (a level name is a label, not an index).
"""

from __future__ import annotations

from array import array
from collections import defaultdict
from dataclasses import dataclass

from ..exceptions import SimulationError
from ..topology.base import ClusterTopology
from .messages import MessageClass, MessageKind


@dataclass
class TrafficSnapshot:
    """Immutable summary of the traffic recorded so far."""

    total_by_device: dict[int, float]
    application_by_device: dict[int, float]
    system_by_device: dict[int, float]
    total_by_level: dict[str, float]
    application_by_level: dict[str, float]
    system_by_level: dict[str, float]
    messages: int

    def top_switch_traffic(self) -> float:
        """Traffic that crossed the top switch."""
        return self.total_by_level.get("top", 0.0)

    def level_average(self, level: str, device_count: int) -> float:
        """Average traffic per switch of a level."""
        if device_count <= 0:
            return 0.0
        return self.total_by_level.get(level, 0.0) / device_count


@dataclass
class TrafficDelta:
    """Picklable column snapshot of one accountant's recorded traffic.

    ``total``/``application``/``system`` carry the raw bytes of the per-device
    ``array('d')`` columns (``stride`` doubles each); the top-switch series
    travel as plain bucket dicts.  Produced by
    :meth:`TrafficAccountant.export_delta` in shard workers and summed into
    the coordinator's accountant by :meth:`TrafficAccountant.merge_delta`.
    """

    stride: int
    total: bytes
    application: bytes
    system: bytes
    top_series_app: dict[int, float]
    top_series_sys: dict[int, float]
    messages: int


class TrafficAccountant:
    """Records message traffic against a cluster topology."""

    def __init__(
        self,
        topology: ClusterTopology,
        bucket_width: float = 3600.0,
        measure_from: float = 0.0,
    ) -> None:
        if bucket_width <= 0:
            raise SimulationError("bucket_width must be positive")
        if measure_from < 0:
            raise SimulationError("measure_from cannot be negative")
        self.topology = topology
        self.bucket_width = float(bucket_width)
        #: Traffic earlier than this timestamp is ignored (warm-up phase);
        #: the messages themselves still count towards ``message_count``.
        self.measure_from = float(measure_from)
        device_count = len(topology.devices)
        self._total = array("d", bytes(8 * device_count))
        self._application = array("d", bytes(8 * device_count))
        self._system = array("d", bytes(8 * device_count))
        self._level = {d.index: topology.level_of(d.index) for d in topology.switches}
        # bucket index -> {"application": x, "system": y} aggregated over the
        # *top switch only* plus per-level dictionaries; the paper's time
        # series all report top-switch traffic.
        self._top_series_app: dict[int, float] = defaultdict(float)
        self._top_series_sys: dict[int, float] = defaultdict(float)
        self._messages = 0
        # Depth-counted mute: >0 means every recording entry point is a
        # no-op (shard workers replay non-owned system events silently).
        # A depth counter rather than a flag because mute sections nest —
        # ``_apply_due_faults`` runs ``_advance_ticks`` inside its own guard.
        self._mute_depth = 0
        # Hot-path state: per-source rows of preresolved switch paths (shared
        # tuple-of-indices arrays served by the topology) and the top-switch
        # index, so ``record`` runs on plain list lookups.
        self._path_rows: list[list[tuple[int, ...] | None] | None] = [None] * device_count
        self._top_index = topology.top_switch.index
        # kind -> (default size, is application): the enum properties resolve
        # frozenset memberships, far too slow for once-per-message lookups.
        self._kind_info: dict[MessageKind, tuple[int, bool]] = {
            kind: (kind.default_size, kind.message_class is MessageClass.APPLICATION)
            for kind in MessageKind
        }

    # ----------------------------------------------------------------- muting
    def push_mute(self) -> None:
        """Enter a muted section: recording entry points become no-ops.

        Mute sections nest; traffic resumes when every :meth:`push_mute`
        has been matched by a :meth:`pop_mute`.
        """
        self._mute_depth += 1

    def pop_mute(self) -> None:
        """Leave the innermost muted section."""
        if self._mute_depth <= 0:
            raise SimulationError("pop_mute without matching push_mute")
        self._mute_depth -= 1

    @property
    def muted(self) -> bool:
        """Whether recording is currently suppressed."""
        return self._mute_depth > 0

    # ------------------------------------------------------------- recording
    def _resolve_path(self, source: int, destination: int) -> tuple[int, ...]:
        """Preresolved switch path between two leaves (validating lazily)."""
        rows = self._path_rows
        if not 0 <= source < len(rows) or not 0 <= destination < len(rows):
            # Out-of-range indices would raise (or negative ones silently
            # wrap) in the list lookups below; delegate to the topology for
            # the usual error.
            return self.topology.path_between(source, destination)
        row = rows[source]
        if row is None:
            row = self.topology.path_row(source)
            rows[source] = row
        path = row[destination]
        if path is None:
            # Destination is not a leaf machine: raise the topology's error.
            return self.topology.path_between(source, destination)
        return path

    def record(
        self,
        source: int,
        destination: int,
        kind: MessageKind,
        timestamp: float,
        size: int | None = None,
    ) -> int:
        """Record one message and return the number of switches it crossed.

        Every offered message counts towards :attr:`message_count` — both
        machine-local messages (empty path) and messages inside the warm-up
        window (``timestamp < measure_from``); only the *traffic* of warm-up
        messages is discarded.  While muted, nothing is counted at all.
        """
        if self._mute_depth:
            return 0
        self._messages += 1
        if timestamp < self.measure_from:
            return 0
        path = self._resolve_path(source, destination)
        if not path:
            return 0
        default_size, is_application = self._kind_info[kind]
        size_value = default_size if size is None else size
        total = self._total
        split = self._application if is_application else self._system
        for switch in path:
            total[switch] += size_value
            split[switch] += size_value
        if self._top_index in path:
            bucket = int(timestamp // self.bucket_width)
            series = self._top_series_app if is_application else self._top_series_sys
            series[bucket] += size_value
        return len(path)

    def record_roundtrip(
        self,
        source: int,
        destination: int,
        request_kind: MessageKind,
        response_kind: MessageKind,
        timestamp: float,
    ) -> int:
        """Record a request and its answer; returns switches crossed one-way.

        Both directions traverse the same switches, so the path is resolved
        once and both message sizes are applied in a single pass.
        """
        if self._mute_depth:
            return 0
        self._messages += 2
        if timestamp < self.measure_from:
            return 0
        # Inlined fast path of ``_resolve_path`` (this is the single hottest
        # accounting entry point: every read/write fans out one roundtrip
        # per replica touched).
        rows = self._path_rows
        if 0 <= source < len(rows) and 0 <= destination < len(rows):
            row = rows[source]
            if row is None:
                row = self.topology.path_row(source)
                rows[source] = row
            path = row[destination]
            if path is None:
                path = self._resolve_path(source, destination)
        else:
            path = self._resolve_path(source, destination)
        if not path:
            return 0
        kind_info = self._kind_info
        request_size, request_app = kind_info[request_kind]
        response_size, response_app = kind_info[response_kind]
        total = self._total
        application = self._application
        system = self._system
        combined = request_size + response_size
        if request_app is response_app:
            split = application if request_app else system
            for switch in path:
                total[switch] += combined
                split[switch] += combined
        else:
            request_split = application if request_app else system
            response_split = application if response_app else system
            for switch in path:
                total[switch] += combined
                request_split[switch] += request_size
                response_split[switch] += response_size
        if self._top_index in path:
            bucket = int(timestamp // self.bucket_width)
            if request_app:
                self._top_series_app[bucket] += request_size
            else:
                self._top_series_sys[bucket] += request_size
            if response_app:
                self._top_series_app[bucket] += response_size
            else:
                self._top_series_sys[bucket] += response_size
        return len(path)

    # ------------------------------------------------------- batch recording
    @property
    def device_count(self) -> int:
        """Number of devices in the bound topology (the batch-key stride)."""
        return len(self._total)

    def count_messages(self, count: int) -> None:
        """Add ``count`` messages to the counter without recording traffic.

        The batch path's warm-up flush: messages offered before
        ``measure_from`` count towards :attr:`message_count` but leave no
        traffic, exactly like the per-message entry points.
        """
        if count < 0:
            raise SimulationError("message count cannot be negative")
        if self._mute_depth:
            return
        self._messages += count

    def record_batch(
        self,
        source: int,
        destination: int,
        kind: MessageKind,
        count: int,
        bucket: int,
    ) -> int:
        """Record ``count`` identical messages with one multiplied update.

        All aggregated messages share the same time ``bucket``
        (``int(timestamp // bucket_width)``) and lie past ``measure_from`` —
        callers route warm-up messages through :meth:`count_messages`
        instead.  Returns the number of switches each message crossed.
        """
        if count <= 0:
            if count == 0:
                return 0
            raise SimulationError("message count cannot be negative")
        if self._mute_depth:
            return 0
        self._messages += count
        path = self._resolve_path(source, destination)
        if not path:
            return 0
        default_size, is_application = self._kind_info[kind]
        volume = default_size * count
        total = self._total
        split = self._application if is_application else self._system
        for switch in path:
            total[switch] += volume
            split[switch] += volume
        if self._top_index in path:
            series = self._top_series_app if is_application else self._top_series_sys
            series[bucket] += volume
        return len(path)

    def record_roundtrip_batch(
        self,
        counts: dict[int, int],
        request_kind: MessageKind,
        response_kind: MessageKind,
        bucket: int,
    ) -> None:
        """Apply aggregated roundtrips: one multiplied update per path.

        ``counts`` maps ``source * device_count + destination`` (the
        flat-key encoding of a leaf pair) to the number of roundtrips that
        crossed it.  All aggregated roundtrips share the same time bucket
        and lie past ``measure_from``; strategy kernels maintain those
        invariants through :class:`RoundtripRun`.
        """
        if not counts or self._mute_depth:
            return
        stride = len(self._total)
        kind_info = self._kind_info
        request_size, request_app = kind_info[request_kind]
        response_size, response_app = kind_info[response_kind]
        combined = request_size + response_size
        total = self._total
        application = self._application
        system = self._system
        top_index = self._top_index
        messages = 0
        for key, count in counts.items():
            messages += count
            source, destination = divmod(key, stride)
            path = self._resolve_path(source, destination)
            if not path:
                continue
            volume = combined * count
            if request_app is response_app:
                split = application if request_app else system
                for switch in path:
                    total[switch] += volume
                    split[switch] += volume
            else:
                request_volume = request_size * count
                response_volume = response_size * count
                for switch in path:
                    total[switch] += volume
                    application[switch] += (
                        request_volume if request_app else response_volume
                    )
                    system[switch] += (
                        response_volume if request_app else request_volume
                    )
            if top_index in path:
                if request_app:
                    self._top_series_app[bucket] += request_size * count
                else:
                    self._top_series_sys[bucket] += request_size * count
                if response_app:
                    self._top_series_app[bucket] += response_size * count
                else:
                    self._top_series_sys[bucket] += response_size * count
        self._messages += 2 * messages

    def roundtrip_run(
        self, request_kind: MessageKind, response_kind: MessageKind
    ) -> "RoundtripRun":
        """A reusable run-local aggregator for one roundtrip kind pair."""
        return RoundtripRun(self, request_kind, response_kind)

    # --------------------------------------------------------------- queries
    @property
    def message_count(self) -> int:
        """Number of messages offered to the accountant.

        The contract (regression-tested): *every* message counts — including
        machine-local messages whose path is empty and messages that fall in
        the warm-up window before ``measure_from``.  Only traffic volumes are
        filtered by ``measure_from``; counters restart on :meth:`reset`.
        """
        return self._messages

    def device_traffic(self, device: int) -> float:
        """Total traffic recorded at a device.

        The out-of-range contract is explicit: a device index outside the
        bound topology raises :class:`~repro.exceptions.SimulationError`.
        (The dict-era behaviour was inconsistent — large indices raised
        ``IndexError`` while negative ones silently wrapped around to a real
        device's counter.)  Level queries, by contrast, return 0.0 for
        levels no switch belongs to: a level is a label, not an index.
        """
        if not 0 <= device < len(self._total):
            raise SimulationError(
                f"unknown device index {device} (topology has "
                f"{len(self._total)} devices)"
            )
        return self._total[device]

    def top_switch_traffic(self) -> float:
        """Total traffic recorded at the top switch."""
        return self._total[self.topology.top_switch.index]

    def level_traffic(self, level: str) -> float:
        """Total traffic summed over all switches of a level.

        Levels with no switches (including unknown level names) sum to 0.0.
        """
        return sum(self._total[idx] for idx, lvl in self._level.items() if lvl == level)

    def level_average_traffic(self, level: str) -> float:
        """Average traffic per switch of a level (Tables 2 and 3)."""
        devices = [idx for idx, lvl in self._level.items() if lvl == level]
        if not devices:
            return 0.0
        return sum(self._total[idx] for idx in devices) / len(devices)

    def snapshot(self) -> TrafficSnapshot:
        """Produce an immutable summary of everything recorded so far."""
        total_by_level: dict[str, float] = defaultdict(float)
        app_by_level: dict[str, float] = defaultdict(float)
        sys_by_level: dict[str, float] = defaultdict(float)
        for idx, lvl in self._level.items():
            total_by_level[lvl] += self._total[idx]
            app_by_level[lvl] += self._application[idx]
            sys_by_level[lvl] += self._system[idx]
        switch_indices = set(self._level)
        return TrafficSnapshot(
            total_by_device={i: self._total[i] for i in switch_indices},
            application_by_device={i: self._application[i] for i in switch_indices},
            system_by_device={i: self._system[i] for i in switch_indices},
            total_by_level=dict(total_by_level),
            application_by_level=dict(app_by_level),
            system_by_level=dict(sys_by_level),
            messages=self._messages,
        )

    def top_switch_series(self) -> tuple[dict[int, float], dict[int, float]]:
        """Time-bucketed (application, system) traffic series at the top switch.

        Buckets are emitted in ascending order.  Per-message recording
        already inserts them chronologically (timestamps are
        non-decreasing), but the batched path's per-kind aggregators may
        first *touch* buckets out of order when a single run spans a
        bucket boundary — sorting here keeps the exported series, and with
        it the byte-identity of :class:`SimulationResult`\\ s, independent
        of the recording granularity.
        """
        application = self._top_series_app
        system = self._top_series_sys
        return (
            {bucket: application[bucket] for bucket in sorted(application)},
            {bucket: system[bucket] for bucket in sorted(system)},
        )

    # ----------------------------------------------------------------- deltas
    def export_delta(self) -> TrafficDelta:
        """Snapshot everything recorded so far as a picklable column delta.

        Shard workers call this once at the end of their replay; the
        coordinator sums the deltas into a fresh accountant with
        :meth:`merge_delta`.  Exporting does not modify the accountant.
        """
        return TrafficDelta(
            stride=len(self._total),
            total=self._total.tobytes(),
            application=self._application.tobytes(),
            system=self._system.tobytes(),
            top_series_app=dict(self._top_series_app),
            top_series_sys=dict(self._top_series_sys),
            messages=self._messages,
        )

    def merge_delta(self, delta: TrafficDelta) -> None:
        """Add a worker's exported delta into this accountant.

        All traffic volumes are integer-valued floats, so element-wise
        addition is exact and independent of merge order.  A stride mismatch
        means the delta was recorded against a different topology and raises
        :class:`~repro.exceptions.SimulationError`.
        """
        if delta.stride != len(self._total):
            raise SimulationError(
                f"traffic delta stride {delta.stride} does not match topology "
                f"device count {len(self._total)}"
            )
        for column, payload in (
            (self._total, delta.total),
            (self._application, delta.application),
            (self._system, delta.system),
        ):
            incoming = array("d")
            incoming.frombytes(payload)
            if len(incoming) != delta.stride:
                raise SimulationError("traffic delta column length mismatch")
            for index, value in enumerate(incoming):
                if value:
                    column[index] += value
        for bucket, volume in delta.top_series_app.items():
            self._top_series_app[bucket] += volume
        for bucket, volume in delta.top_series_sys.items():
            self._top_series_sys[bucket] += volume
        self._messages += delta.messages

    def reset(self) -> None:
        """Clear every counter (used between warm-up and measurement phases)."""
        for i in range(len(self._total)):
            self._total[i] = 0.0
            self._application[i] = 0.0
            self._system[i] = 0.0
        self._top_series_app.clear()
        self._top_series_sys.clear()
        self._messages = 0


class RoundtripRun:
    """Run-local roundtrip aggregation for one ``(request, response)`` pair.

    The execution kernels drive it with two calls:

    * :meth:`counts_for` **once per event** returns the live aggregation
      dict; the kernel bumps ``counts[source * stride + destination]`` once
      per roundtrip.  The method transparently separates warm-up events
      (before ``measure_from`` — message counting only) from measured ones
      and flushes whenever the event's time bucket changes, so every dict
      it hands out only ever aggregates messages that share one bucket;
    * :meth:`flush` at the end of the run applies whatever is pending.

    Timestamps must be non-decreasing (event streams are time ordered).
    A run object is reusable across runs — :meth:`flush` leaves it empty.
    """

    __slots__ = (
        "stride",
        "_accountant",
        "_request_kind",
        "_response_kind",
        "_counts",
        "_warm",
        "_bucket",
        "_measure_from",
        "_bucket_width",
    )

    def __init__(
        self,
        accountant: TrafficAccountant,
        request_kind: MessageKind,
        response_kind: MessageKind,
    ) -> None:
        self._accountant = accountant
        self._request_kind = request_kind
        self._response_kind = response_kind
        #: Flat-key stride: keys encode ``source * stride + destination``.
        self.stride = accountant.device_count
        self._counts: dict[int, int] = {}
        self._warm: dict[int, int] = {}
        self._bucket: int | None = None
        self._measure_from = accountant.measure_from
        self._bucket_width = accountant.bucket_width

    def counts_for(self, timestamp: float) -> dict[int, int]:
        """The aggregation dict the event at ``timestamp`` must bump."""
        if timestamp < self._measure_from:
            return self._warm
        bucket = int(timestamp // self._bucket_width)
        if bucket != self._bucket:
            if self._counts:
                self._accountant.record_roundtrip_batch(
                    self._counts, self._request_kind, self._response_kind, self._bucket
                )
                self._counts.clear()
            self._bucket = bucket
        return self._counts

    def flush(self) -> None:
        """Apply all pending aggregates to the accountant."""
        if self._warm:
            self._accountant.count_messages(2 * sum(self._warm.values()))
            self._warm.clear()
        if self._counts:
            self._accountant.record_roundtrip_batch(
                self._counts, self._request_kind, self._response_kind, self._bucket
            )
            self._counts.clear()
        self._bucket = None


__all__ = ["RoundtripRun", "TrafficAccountant", "TrafficDelta", "TrafficSnapshot"]
