"""Shared constants used across the DynaSoRe reproduction.

Time is measured in seconds (floats).  The paper's simulator rotates access
counters every hour and reports traffic per day, so the hour and the day are
the two natural units used throughout the code base.
"""

from __future__ import annotations

#: Number of seconds in one minute.
MINUTE: float = 60.0

#: Number of seconds in one hour.  Access counters rotate on this period.
HOUR: float = 3600.0

#: Number of seconds in one day.  Synthetic workloads issue one write per
#: user per day on average (paper section 4.2).
DAY: float = 86400.0

#: Size of an application message (read request, write update and their
#: answers).  The paper assumes application messages are ten times larger
#: than protocol messages (section 4.3).
APPLICATION_MESSAGE_SIZE: int = 10

#: Size of a protocol message (replica creation and eviction notices,
#: routing-table updates, admission-threshold piggybacks, proxy migrations).
PROTOCOL_MESSAGE_SIZE: int = 1

#: Default number of rotating-counter slots (24 one-hour slots, section 4.3).
DEFAULT_COUNTER_SLOTS: int = 24

#: Default rotation period of the access counters, in seconds.
DEFAULT_COUNTER_PERIOD: float = HOUR

#: Fraction of a server's memory that must be filled by views whose utility
#: exceeds the admission threshold before the threshold becomes non-zero
#: (paper section 3.2, "Replication of views").
DEFAULT_ADMISSION_FILL: float = 0.90

#: Memory utilisation above which a server proactively evicts its least
#: useful replicas (paper section 3.2, "Eviction of views").
DEFAULT_EVICTION_THRESHOLD: float = 0.95

#: Ratio of reads to writes in the synthetic workload (Silberstein et al.,
#: cited in paper section 4.2).
SYNTHETIC_READ_WRITE_RATIO: float = 4.0
