"""Synthetic social-graph generators.

The paper evaluates DynaSoRe on crawls of Twitter (1.7M users, 5M links),
Facebook (3M users, 47M links) and LiveJournal (4.8M users, 69M links).
Those datasets are not redistributable, so this module builds *scaled
synthetic analogues* that preserve the two structural properties the
placement algorithms actually exploit:

* heavy-tailed (power-law) degree distributions, so a few users attract a
  large share of the read traffic, and
* community structure (high clustering), so graph partitioning and
  social-locality replication have something to gain.

The generator combines a community-biased preferential-attachment process
with a configurable average degree, which yields graphs whose degree
distribution and modularity are in the right regime for the experiments.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from .graph import SocialGraph


@dataclass(frozen=True)
class DatasetSpec:
    """Knobs of a synthetic dataset (a scaled analogue of a paper dataset)."""

    name: str
    users: int
    average_out_degree: float
    #: Probability that a new edge stays inside the user's community.
    community_bias: float
    #: Number of communities the users are spread over.
    communities: int
    #: Probability that a follow edge is reciprocated (Facebook-like graphs
    #: are nearly symmetric, Twitter much less so).
    reciprocity: float

    @property
    def expected_edges(self) -> int:
        """Approximate number of directed edges the generator will produce."""
        return int(self.users * self.average_out_degree)


#: Structural knobs of the three paper datasets (Table 1), expressed as
#: ratios so they can be generated at any scale.  Average degrees follow the
#: paper's edge/user ratios: Twitter ~2.9, Facebook ~15.7, LiveJournal ~14.4.
_DATASET_PRESETS = {
    "twitter": DatasetSpec(
        name="twitter",
        users=1_700_000,
        average_out_degree=2.9,
        community_bias=0.6,
        communities=200,
        reciprocity=0.2,
    ),
    "facebook": DatasetSpec(
        name="facebook",
        users=3_000_000,
        average_out_degree=15.7,
        community_bias=0.85,
        communities=300,
        reciprocity=0.7,
    ),
    "livejournal": DatasetSpec(
        name="livejournal",
        users=4_800_000,
        average_out_degree=14.4,
        community_bias=0.8,
        communities=400,
        reciprocity=0.55,
    ),
}


def dataset_preset(name: str, users: int | None = None) -> DatasetSpec:
    """Return the preset for a paper dataset, optionally rescaled.

    ``users`` rescales the graph while keeping the average degree, community
    bias and reciprocity of the preset; the community count is scaled with
    the square root of the size ratio so communities keep a sensible size.
    """
    key = name.lower()
    if key not in _DATASET_PRESETS:
        raise KeyError(f"unknown dataset {name!r}; expected one of {sorted(_DATASET_PRESETS)}")
    preset = _DATASET_PRESETS[key]
    if users is None or users == preset.users:
        return preset
    ratio = users / preset.users
    communities = max(4, int(preset.communities * math.sqrt(ratio)))
    return DatasetSpec(
        name=preset.name,
        users=users,
        average_out_degree=preset.average_out_degree,
        community_bias=preset.community_bias,
        communities=communities,
        reciprocity=preset.reciprocity,
    )


def generate_social_graph(spec: DatasetSpec, seed: int = 7) -> SocialGraph:
    """Generate a synthetic social graph matching a :class:`DatasetSpec`.

    The process assigns each user to a community, then adds edges one user at
    a time: targets are drawn preferentially by in-degree, biased towards the
    user's own community with probability ``community_bias``.  A fraction
    ``reciprocity`` of edges is reciprocated immediately.
    """
    rng = random.Random(seed)
    graph = SocialGraph(range(spec.users))
    if spec.users < 2:
        return graph

    communities = max(1, min(spec.communities, spec.users))
    community_of = [rng.randrange(communities) for _ in range(spec.users)]
    members: list[list[int]] = [[] for _ in range(communities)]
    for user, community in enumerate(community_of):
        members[community].append(user)

    # Repeated-node list implements preferential attachment in O(1) per draw.
    popular: list[int] = list(range(spec.users))
    popular_by_community: list[list[int]] = [list(c) for c in members]

    target_edges = spec.expected_edges
    attempts_limit = target_edges * 12
    attempts = 0
    while graph.num_edges < target_edges and attempts < attempts_limit:
        attempts += 1
        follower = rng.randrange(spec.users)
        community = community_of[follower]
        in_community = rng.random() < spec.community_bias and len(members[community]) > 1
        if in_community:
            pool = popular_by_community[community]
        else:
            pool = popular
        followee = pool[rng.randrange(len(pool))]
        if followee == follower:
            continue
        if graph.add_edge(follower, followee):
            popular.append(followee)
            popular_by_community[community_of[followee]].append(followee)
            if rng.random() < spec.reciprocity and not graph.has_edge(followee, follower):
                if graph.add_edge(followee, follower):
                    popular.append(follower)
                    popular_by_community[community].append(follower)

    _connect_isolated_users(graph, rng)
    return graph


def _connect_isolated_users(graph: SocialGraph, rng: random.Random) -> None:
    """Give every user at least one outgoing edge so reads are never empty."""
    users = graph.users
    if len(users) < 2:
        return
    for user in users:
        if graph.out_degree(user) == 0:
            target = user
            while target == user:
                target = users[rng.randrange(len(users))]
            graph.add_edge(user, target)


def twitter_like(users: int = 5000, seed: int = 7) -> SocialGraph:
    """Scaled analogue of the paper's Twitter sample (sparse, asymmetric)."""
    return generate_social_graph(dataset_preset("twitter", users), seed=seed)


def facebook_like(users: int = 5000, seed: int = 7) -> SocialGraph:
    """Scaled analogue of the paper's Facebook sample (dense, reciprocal)."""
    return generate_social_graph(dataset_preset("facebook", users), seed=seed)


def livejournal_like(users: int = 5000, seed: int = 7) -> SocialGraph:
    """Scaled analogue of the paper's LiveJournal sample."""
    return generate_social_graph(dataset_preset("livejournal", users), seed=seed)


def graph_statistics(graph: SocialGraph) -> dict[str, float]:
    """Summary statistics used by Table 1 and the documentation."""
    degrees = graph.degree_sequence()
    if not degrees:
        return {"users": 0, "edges": 0, "avg_out_degree": 0.0, "max_in_degree": 0.0}
    out_degrees = [out for _, _, out in degrees]
    in_degrees = [inn for _, inn, _ in degrees]
    return {
        "users": float(graph.num_users),
        "edges": float(graph.num_edges),
        "avg_out_degree": sum(out_degrees) / len(out_degrees),
        "max_in_degree": float(max(in_degrees)),
        "max_out_degree": float(max(out_degrees)),
    }


__all__ = [
    "DatasetSpec",
    "dataset_preset",
    "facebook_like",
    "generate_social_graph",
    "graph_statistics",
    "livejournal_like",
    "twitter_like",
]
