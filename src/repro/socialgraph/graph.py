"""Directed social graph used by the workload generators and baselines.

The paper's data model is a follower graph: a read request from user ``u``
fetches the views of every user ``u`` follows (the Twitter API model, paper
section 2.1).  The graph therefore stores, for each user, the set of users
she follows (``following``) and the set of users following her
(``followers``).  Both directions are kept because:

* read target lists come from ``following``;
* activity models use in- and out-degrees (Huberman et al., section 4.2);
* flash events add *followers* to a user (section 4.6).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from ..exceptions import WorkloadError


class SocialGraph:
    """Mutable directed social graph with integer user identifiers."""

    def __init__(self, users: Iterable[int] = ()) -> None:
        self._following: dict[int, set[int]] = {}
        self._followers: dict[int, set[int]] = {}
        self._edge_count = 0
        for user in users:
            self.add_user(user)

    # ----------------------------------------------------------------- users
    def add_user(self, user: int) -> bool:
        """Add a user; returns True if the user was not already present."""
        if user in self._following:
            return False
        self._following[user] = set()
        self._followers[user] = set()
        return True

    def has_user(self, user: int) -> bool:
        """True when the user exists in the graph."""
        return user in self._following

    @property
    def users(self) -> tuple[int, ...]:
        """All user identifiers, in insertion order."""
        return tuple(self._following)

    @property
    def num_users(self) -> int:
        """Number of users."""
        return len(self._following)

    @property
    def num_edges(self) -> int:
        """Number of directed follow edges."""
        return self._edge_count

    # ----------------------------------------------------------------- edges
    def add_edge(self, follower: int, followee: int) -> bool:
        """Add a follow edge ``follower -> followee``.

        Users are created on demand.  Self-follows are rejected.  Returns
        True when the edge is new.
        """
        if follower == followee:
            raise WorkloadError("self-follow edges are not allowed")
        self.add_user(follower)
        self.add_user(followee)
        if followee in self._following[follower]:
            return False
        self._following[follower].add(followee)
        self._followers[followee].add(follower)
        self._edge_count += 1
        return True

    def remove_edge(self, follower: int, followee: int) -> bool:
        """Remove a follow edge; returns True when the edge existed."""
        if follower not in self._following or followee not in self._following[follower]:
            return False
        self._following[follower].discard(followee)
        self._followers[followee].discard(follower)
        self._edge_count -= 1
        return True

    def has_edge(self, follower: int, followee: int) -> bool:
        """True when ``follower`` follows ``followee``."""
        return follower in self._following and followee in self._following[follower]

    # --------------------------------------------------------------- queries
    def following(self, user: int) -> frozenset[int]:
        """Users that ``user`` follows (her read targets)."""
        self._require_user(user)
        return frozenset(self._following[user])

    def followers(self, user: int) -> frozenset[int]:
        """Users following ``user`` (the consumers of her view)."""
        self._require_user(user)
        return frozenset(self._followers[user])

    def out_degree(self, user: int) -> int:
        """Number of users ``user`` follows."""
        self._require_user(user)
        return len(self._following[user])

    def in_degree(self, user: int) -> int:
        """Number of followers of ``user``."""
        self._require_user(user)
        return len(self._followers[user])

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over every directed edge as ``(follower, followee)``."""
        for follower, followees in self._following.items():
            for followee in followees:
                yield follower, followee

    def undirected_adjacency(self) -> dict[int, dict[int, int]]:
        """Symmetric weighted adjacency used by the graph partitioner.

        Reciprocal follow relations get weight 2, one-way relations weight 1,
        so partitioning favours keeping mutual friends together.
        """
        adjacency: dict[int, dict[int, int]] = {user: {} for user in self._following}
        for follower, followees in self._following.items():
            for followee in followees:
                adjacency[follower][followee] = adjacency[follower].get(followee, 0) + 1
                adjacency[followee][follower] = adjacency[followee].get(follower, 0) + 1
        return adjacency

    def degree_sequence(self) -> list[tuple[int, int, int]]:
        """List of ``(user, in_degree, out_degree)`` tuples."""
        return [
            (user, len(self._followers[user]), len(self._following[user]))
            for user in self._following
        ]

    def copy(self) -> "SocialGraph":
        """Deep copy of the graph."""
        clone = SocialGraph(self._following)
        for follower, followees in self._following.items():
            for followee in followees:
                clone.add_edge(follower, followee)
        return clone

    def _require_user(self, user: int) -> None:
        if user not in self._following:
            raise WorkloadError(f"unknown user {user}")

    def __contains__(self, user: int) -> bool:
        return user in self._following

    def __len__(self) -> int:
        return len(self._following)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SocialGraph(users={self.num_users}, edges={self.num_edges})"


__all__ = ["SocialGraph"]
