"""Helpers for dynamic social-graph mutations.

The paper stresses that social networks evolve continuously and that
DynaSoRe adapts transparently (section 3.3, "Managing the social network");
the flash-event experiment (section 4.6) adds 100 random followers to a user
and removes them five days later.  These helpers produce the edge mutations
that the workload generators interleave with read/write requests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .graph import SocialGraph


@dataclass(frozen=True)
class EdgeMutation:
    """A timestamped follow/unfollow event."""

    timestamp: float
    follower: int
    followee: int
    add: bool


def random_new_followers(
    graph: SocialGraph,
    target_user: int,
    count: int,
    rng: random.Random,
) -> list[tuple[int, int]]:
    """Pick ``count`` random users that do not yet follow ``target_user``.

    Returns the ``(follower, followee)`` pairs to add; fewer pairs are
    returned when the graph does not contain enough candidates.
    """
    existing = graph.followers(target_user)
    candidates = [
        user
        for user in graph.users
        if user != target_user and user not in existing
    ]
    rng.shuffle(candidates)
    return [(user, target_user) for user in candidates[:count]]


def flash_event_mutations(
    graph: SocialGraph,
    target_user: int,
    new_followers: int,
    start_time: float,
    end_time: float,
    rng: random.Random,
) -> list[EdgeMutation]:
    """Mutations for one flash event: followers added at ``start_time`` and
    removed at ``end_time`` (paper section 4.6)."""
    pairs = random_new_followers(graph, target_user, new_followers, rng)
    additions = [
        EdgeMutation(timestamp=start_time, follower=f, followee=t, add=True) for f, t in pairs
    ]
    removals = [
        EdgeMutation(timestamp=end_time, follower=f, followee=t, add=False) for f, t in pairs
    ]
    return additions + removals


def apply_mutation(graph: SocialGraph, mutation: EdgeMutation) -> bool:
    """Apply a single mutation to the graph; returns True when it changed."""
    if mutation.add:
        return graph.add_edge(mutation.follower, mutation.followee)
    return graph.remove_edge(mutation.follower, mutation.followee)


__all__ = ["EdgeMutation", "apply_mutation", "flash_event_mutations", "random_new_followers"]
