"""Social graph substrate: data structure, generators, IO and mutations."""

from .generators import (
    DatasetSpec,
    dataset_preset,
    facebook_like,
    generate_social_graph,
    graph_statistics,
    livejournal_like,
    twitter_like,
)
from .graph import SocialGraph
from .io import load_edge_list, save_edge_list
from .mutations import EdgeMutation, apply_mutation, flash_event_mutations, random_new_followers

__all__ = [
    "DatasetSpec",
    "EdgeMutation",
    "SocialGraph",
    "apply_mutation",
    "dataset_preset",
    "facebook_like",
    "flash_event_mutations",
    "generate_social_graph",
    "graph_statistics",
    "livejournal_like",
    "load_edge_list",
    "random_new_followers",
    "save_edge_list",
    "twitter_like",
]
