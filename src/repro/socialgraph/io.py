"""Edge-list persistence for social graphs.

Real crawls (such as the ones the paper uses) are usually distributed as
plain edge lists; this module reads and writes that format so users can plug
their own graphs into the experiment harness.
"""

from __future__ import annotations

from pathlib import Path

from ..exceptions import WorkloadError
from .graph import SocialGraph


def save_edge_list(graph: SocialGraph, path: str | Path) -> int:
    """Write the graph as a ``follower<TAB>followee`` edge list.

    Returns the number of edges written.
    """
    target = Path(path)
    count = 0
    with target.open("w", encoding="utf-8") as handle:
        handle.write(f"# users={graph.num_users} edges={graph.num_edges}\n")
        for follower, followee in graph.edges():
            handle.write(f"{follower}\t{followee}\n")
            count += 1
    return count


def load_edge_list(path: str | Path) -> SocialGraph:
    """Load a graph from a ``follower<TAB>followee`` edge list.

    Lines starting with ``#`` are comments.  Whitespace-separated pairs are
    accepted so common public datasets load unchanged.
    """
    source = Path(path)
    if not source.exists():
        raise WorkloadError(f"edge list {source} does not exist")
    graph = SocialGraph()
    with source.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise WorkloadError(f"{source}:{line_number}: malformed edge line {line!r}")
            try:
                follower, followee = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise WorkloadError(
                    f"{source}:{line_number}: user ids must be integers"
                ) from exc
            if follower != followee:
                graph.add_edge(follower, followee)
    return graph


__all__ = ["load_edge_list", "save_edge_list"]
