"""Command-line experiment runner.

Usage::

    python -m repro list
    python -m repro run figure3c --profile ci
    python -m repro run all --profile laptop --jobs 4
    python -m repro figure7 --no-cache    # shorthand for "run figure7 ..."

Every experiment prints the paper-style rows/series to stdout; use shell
redirection to capture them.  ``--jobs N`` fans each experiment's run grid
out over N worker processes (results are identical to serial execution);
completed runs land in an on-disk cache keyed by the run's content hash,
so re-running an experiment only executes what changed.  ``--no-cache``
bypasses the cache; the cache directory and default worker count come from
the :class:`~repro.config.ExperimentProfile`.  ``--shards K`` parallelises
*inside* each run instead: the workload is partitioned over K worker
processes whose merged result is byte-identical to serial replay.
"""

from __future__ import annotations

import argparse
import sys
import time

from .config import ExperimentProfile
from .experiments.registry import EXPERIMENTS, get_experiment
from .runtime.executor import Progress, ResultCache, RuntimeExecutor


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser."""
    parser = argparse.ArgumentParser(
        prog="dynasore-repro",
        description="Reproduce the tables and figures of the DynaSoRe paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id (e.g. figure3c) or 'all'")
    run_parser.add_argument(
        "--profile",
        default="ci",
        choices=["ci", "laptop", "paper"],
        help="scale profile (default: ci)",
    )
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for run grids (default: the profile's jobs)",
    )
    run_parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="K",
        help=(
            "replay each run across K shard worker processes "
            "(byte-identical to serial replay; default: 1)"
        ),
    )
    run_parser.add_argument(
        "--shard-balance",
        choices=("activity", "population"),
        default="activity",
        help=(
            "what the shard partitioner balances: expected per-user request "
            "rates (activity, the default — levels the critical-path worker "
            "on skewed workloads) or plain user count (population)"
        ),
    )
    run_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache",
    )
    run_parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result-cache directory (default: the profile's cache_dir)",
    )
    return parser


def _progress_printer(stream) -> callable:
    """Progress callback writing one status line per completed run."""

    def show(progress: Progress) -> None:
        print(f"  [{progress.describe()}]", file=stream)

    return show


def build_executor(
    profile: ExperimentProfile,
    jobs: int | None = None,
    no_cache: bool = False,
    cache_dir: str | None = None,
    progress_stream=None,
    shards: int = 1,
    shard_balance: str = "activity",
) -> RuntimeExecutor:
    """Executor configured from a profile plus CLI overrides."""
    cache = None
    if not no_cache:
        cache = ResultCache(cache_dir if cache_dir is not None else profile.cache_dir)
    progress = (
        _progress_printer(progress_stream) if progress_stream is not None else None
    )
    return RuntimeExecutor(
        jobs=jobs if jobs is not None else profile.jobs,
        cache=cache,
        progress=progress,
        shards=shards,
        shard_activity=shard_balance == "activity",
    )


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``dynasore-repro`` command."""
    if argv is None:
        argv = sys.argv[1:]
    # ``python -m repro figure7`` is shorthand for ``python -m repro run figure7``.
    if argv and (argv[0] in EXPERIMENTS or argv[0] == "all"):
        argv = ["run", *argv]
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for identifier, experiment in sorted(EXPERIMENTS.items()):
            print(f"{identifier:10s}  {experiment.description}")
        return 0

    profile = ExperimentProfile.by_name(args.profile)
    executor = build_executor(
        profile,
        jobs=args.jobs,
        no_cache=args.no_cache,
        cache_dir=args.cache_dir,
        progress_stream=sys.stderr,
        shards=args.shards,
        shard_balance=args.shard_balance,
    )
    identifiers = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for identifier in identifiers:
        try:
            experiment = get_experiment(identifier)
        except KeyError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        started = time.time()
        print(
            f"== {identifier}: {experiment.description} "
            f"(profile={profile.name}, jobs={executor.jobs}) =="
        )
        print(experiment.run_and_render(profile, executor=executor))
        print(f"-- completed in {time.time() - started:.1f}s --\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
