"""Command-line experiment runner.

Usage::

    python -m repro list
    python -m repro run figure3c --profile ci
    python -m repro run all --profile laptop
    python -m repro figure7            # shorthand for "run figure7"

Every experiment prints the paper-style rows/series to stdout; use shell
redirection to capture them.
"""

from __future__ import annotations

import argparse
import sys
import time

from .config import ExperimentProfile
from .experiments.registry import EXPERIMENTS, get_experiment


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser."""
    parser = argparse.ArgumentParser(
        prog="dynasore-repro",
        description="Reproduce the tables and figures of the DynaSoRe paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id (e.g. figure3c) or 'all'")
    run_parser.add_argument(
        "--profile",
        default="ci",
        choices=["ci", "laptop", "paper"],
        help="scale profile (default: ci)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``dynasore-repro`` command."""
    if argv is None:
        argv = sys.argv[1:]
    # ``python -m repro figure7`` is shorthand for ``python -m repro run figure7``.
    if argv and (argv[0] in EXPERIMENTS or argv[0] == "all"):
        argv = ["run", *argv]
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for identifier, experiment in sorted(EXPERIMENTS.items()):
            print(f"{identifier:10s}  {experiment.description}")
        return 0

    profile = ExperimentProfile.by_name(args.profile)
    identifiers = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for identifier in identifiers:
        try:
            experiment = get_experiment(identifier)
        except KeyError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        started = time.time()
        print(f"== {identifier}: {experiment.description} (profile={profile.name}) ==")
        print(experiment.run_and_render(profile))
        print(f"-- completed in {time.time() - started:.1f}s --\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
