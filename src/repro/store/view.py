"""Views and view replicas.

A *view* is the producer-pivoted list of events of one user (paper section
2.1).  The simulator mostly manipulates :class:`ViewReplica` objects — the
placement-relevant metadata of one copy of a view on one server — while the
actual event payloads live in :class:`View` and are only materialised by the
public key-value API (:mod:`repro.core.api`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .stats import AccessStatistics


@dataclass
class Event:
    """A single piece of user-produced content (opaque payload)."""

    producer: int
    timestamp: float
    payload: bytes = b""


@dataclass
class View:
    """Producer-pivoted materialised view: the events produced by one user.

    Events are kept in reverse chronological order (most recent first), which
    is how social feeds consume them.  ``version`` increases with every write
    so the cache-coherence protocol can detect stale replicas.
    """

    user: int
    events: list[Event] = field(default_factory=list)
    version: int = 0
    max_events: int | None = None

    def append(self, event: Event) -> None:
        """Add a new event and bump the version."""
        self.events.insert(0, event)
        if self.max_events is not None and len(self.events) > self.max_events:
            del self.events[self.max_events :]
        self.version += 1

    def latest(self, count: int) -> list[Event]:
        """The ``count`` most recent events."""
        return self.events[:count]

    def copy(self) -> "View":
        """Deep copy used when replicating a view to another server."""
        clone = View(user=self.user, version=self.version, max_events=self.max_events)
        clone.events = list(self.events)
        return clone


#: Utility value used for replicas that must never be evicted (sole replica
#: of a view, or fewer replicas than the configured minimum).
INFINITE_UTILITY = math.inf


@dataclass
class ViewReplica:
    """Placement metadata of one copy of a view on one storage server."""

    user: int
    server: int
    stats: AccessStatistics
    #: Cached utility of this replica, recomputed during maintenance ticks.
    utility: float = 0.0
    #: Index of the broker hosting the view's write proxy (paper: each view
    #: stores the location of its write proxy so the server can notify it).
    write_proxy_broker: int | None = None
    #: Index of the server hosting the next closest replica, or None when
    #: this is the only replica (paper: each replica stores the location of
    #: the next closest replica, used to estimate utility).
    next_closest_replica: int | None = None

    @property
    def is_sole_replica(self) -> bool:
        """True when no other replica exists in the system."""
        return self.next_closest_replica is None

    def effective_utility(self) -> float:
        """Utility used by eviction: infinite for sole replicas."""
        if self.is_sole_replica:
            return INFINITE_UTILITY
        return self.utility


__all__ = ["Event", "INFINITE_UTILITY", "View", "ViewReplica"]
