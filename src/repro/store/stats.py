"""Per-replica access statistics with origin coarsening.

Each replica tracks, with rotating counters:

* how many reads it served, broken down by *origin* — the coarse-grained
  switch label computed by the topology (the source's rack switch within the
  replica's own sub-tree, the source's intermediate switch otherwise);
* how many writes it received (writes always come from the view's write
  proxy, so a single counter suffices — paper section 3.2).

These statistics feed Algorithm 1 (utility estimation), Algorithm 2 (replica
creation) and Algorithm 3 (replica migration).
"""

from __future__ import annotations

from ..constants import DEFAULT_COUNTER_PERIOD, DEFAULT_COUNTER_SLOTS
from .counters import RotatingCounter


class AccessStatistics:
    """Origin-resolved read counters plus a write counter for one replica."""

    __slots__ = (
        "slots",
        "period",
        "_reads",
        "_writes",
        "_reads_since_evaluation",
        "_origins_cache",
    )

    def __init__(
        self,
        slots: int = DEFAULT_COUNTER_SLOTS,
        period: float = DEFAULT_COUNTER_PERIOD,
    ) -> None:
        self.slots = slots
        self.period = period
        self._reads: dict[int, RotatingCounter] = {}
        self._writes = RotatingCounter(slots, period)
        self._reads_since_evaluation = 0
        # Cached result of ``reads_by_origin``; invalidated by reads,
        # rotations and clears.  Algorithms 1–3 query the same statistics
        # several times per evaluated request, so the cache removes the
        # repeated dict builds from the hot path.
        self._origins_cache: dict[int, float] | None = None

    # ------------------------------------------------------------- recording
    def record_read(self, origin: int, timestamp: float, amount: float = 1.0) -> None:
        """Record a read coming from ``origin``."""
        counter = self._reads.get(origin)
        if counter is None:
            counter = RotatingCounter(self.slots, self.period, start_time=timestamp)
            self._reads[origin] = counter
        counter.record(timestamp, amount)
        self._reads_since_evaluation += 1
        self._origins_cache = None

    def record_write(self, timestamp: float, amount: float = 1.0) -> None:
        """Record a write (always issued by the view's write proxy)."""
        self._writes.record(timestamp, amount)

    def advance(self, timestamp: float) -> None:
        """Rotate every counter so the window is current with ``timestamp``."""
        for counter in self._reads.values():
            counter.advance(timestamp)
        self._writes.advance(timestamp)
        self._origins_cache = None

    # --------------------------------------------------------------- queries
    def reads_by_origin(self) -> dict[int, float]:
        """Read counts over the sliding window, keyed by origin label.

        The returned dict is a shared cache — treat it as read-only.
        Mutating it corrupts every later query until the next
        invalidation (reads, rotations, clears), and the decision
        kernels memoise on its identity, so aliasing bugs surface far
        from their cause.  The array-backed twin
        (:meth:`repro.store.tables.StatsTable.reads_by_origin`) enforces
        the same contract with a :class:`types.MappingProxyType` view
        when ``REPRO_CHECK_TABLES=1``; this object path keeps the plain
        dict for speed but callers must honour the identical rule.
        """
        cached = self._origins_cache
        if cached is None:
            cached = {}
            for origin, counter in self._reads.items():
                total = counter.total()
                if total > 0:
                    cached[origin] = total
            self._origins_cache = cached
        return cached

    def total_reads(self) -> float:
        """Total reads over the window, all origins combined."""
        return sum(counter.total() for counter in self._reads.values())

    def total_writes(self) -> float:
        """Total writes over the window."""
        return self._writes.total()

    def reads_from(self, origin: int) -> float:
        """Reads recorded from one origin over the window."""
        counter = self._reads.get(origin)
        return counter.total() if counter is not None else 0.0

    def reads_since_last_evaluation(self) -> int:
        """Number of reads recorded since the evaluation marker was reset."""
        return self._reads_since_evaluation

    def mark_evaluated(self) -> None:
        """Reset the evaluation marker (after running Algorithm 2)."""
        self._reads_since_evaluation = 0

    def copy(self) -> "AccessStatistics":
        """Deep copy of the statistics (used when replicating a view)."""
        clone = AccessStatistics(self.slots, self.period)
        clone._reads = {origin: counter.copy() for origin, counter in self._reads.items()}
        clone._writes = self._writes.copy()
        clone._reads_since_evaluation = self._reads_since_evaluation
        return clone

    def clear(self) -> None:
        """Forget every recorded access (used after migrating a replica)."""
        self._reads.clear()
        self._writes = RotatingCounter(self.slots, self.period)
        self._reads_since_evaluation = 0
        self._origins_cache = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AccessStatistics(reads={self.total_reads():.0f}, "
            f"writes={self.total_writes():.0f}, origins={len(self._reads)})"
        )


__all__ = ["AccessStatistics"]
