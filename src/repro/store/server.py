"""Storage servers: bounded-capacity replica containers with admission
thresholds and proactive eviction (paper section 3.2, "Storage management").

Since the array-backed state refactor a ``StorageServer`` owns no replica
objects: it is a thin façade over one *position* of a
:class:`~repro.store.tables.ReplicaTable`.  Constructed standalone it
creates a private table; the placement engine instead attaches every server
of the fleet to one shared table so all placement state lives in the same
flat columns.  The public API — and its exact semantics, down to the
insertion-ordered iteration the eviction tie-breaking relies on — is
unchanged from the object days.
"""

from __future__ import annotations

from ..constants import DEFAULT_ADMISSION_FILL, DEFAULT_EVICTION_THRESHOLD
from ..exceptions import StorageError
from .stats import AccessStatistics
from .tables import ReplicaHandle, ReplicaTable
from .view import ViewReplica


class StorageServer:
    """A single cache server with bounded view capacity (table-backed)."""

    def __init__(
        self,
        server_index: int,
        capacity: int,
        counter_slots: int = 24,
        counter_period: float = 3600.0,
        admission_fill: float = DEFAULT_ADMISSION_FILL,
        eviction_threshold: float = DEFAULT_EVICTION_THRESHOLD,
        table: ReplicaTable | None = None,
    ) -> None:
        if capacity < 0:
            raise StorageError("server capacity cannot be negative")
        self.server_index = server_index
        self.counter_slots = counter_slots
        self.counter_period = counter_period
        self.admission_fill = admission_fill
        self.eviction_threshold = eviction_threshold
        if table is None:
            table = ReplicaTable(
                positions=server_index + 1,
                counter_slots=counter_slots,
                counter_period=counter_period,
            )
        else:
            table.ensure_position(server_index)
        self.table = table
        table.set_capacity(server_index, capacity)
        table.admission_thresholds[server_index] = 0.0

    # --------------------------------------------------------------- storage
    @property
    def capacity(self) -> int:
        """Capacity in views (0 while the server is out of service)."""
        return self.table.capacity_of(self.server_index)

    @capacity.setter
    def capacity(self, value: int) -> None:
        self.table.set_capacity(self.server_index, value)

    @property
    def admission_threshold(self) -> float:
        """Minimum utility a new replica must bring to be admitted."""
        return self.table.admission_thresholds[self.server_index]

    @admission_threshold.setter
    def admission_threshold(self, value: float) -> None:
        self.table.admission_thresholds[self.server_index] = value

    @property
    def used(self) -> int:
        """Number of views currently stored (O(1) table counter)."""
        return self.table.used_of(self.server_index)

    @property
    def free_slots(self) -> int:
        """Remaining capacity in views."""
        return self.capacity - self.used

    @property
    def utilisation(self) -> float:
        """Fraction of the capacity in use (0 when capacity is 0)."""
        capacity = self.capacity
        if capacity == 0:
            return 1.0 if self.used else 0.0
        return self.used / capacity

    def is_full(self) -> bool:
        """True when no free slot remains."""
        return self.used >= self.capacity

    def has_view(self, user: int) -> bool:
        """True when this server stores a replica of the user's view."""
        return self.table.slot_of(user, self.server_index) is not None

    def replica(self, user: int) -> ReplicaHandle:
        """The replica of a user's view stored here."""
        slot = self.table.slot_of(user, self.server_index)
        if slot is None:
            raise StorageError(
                f"server {self.server_index} does not store view {user}"
            )
        return ReplicaHandle(self.table, slot)

    def replicas(self) -> tuple[ReplicaHandle, ...]:
        """Every replica stored on this server, insertion order."""
        return tuple(
            ReplicaHandle(self.table, slot)
            for slot in self.table.iter_position(self.server_index)
        )

    def stored_users(self) -> tuple[int, ...]:
        """User ids whose views are stored here."""
        return tuple(self.table.users_at(self.server_index))

    # ------------------------------------------------------------ add/remove
    def add_replica(
        self,
        user: int,
        write_proxy_broker: int | None = None,
        stats: AccessStatistics | None = None,
        allow_overflow: bool = False,
    ) -> ReplicaHandle:
        """Store a new replica of ``user``'s view.

        ``allow_overflow`` is used during initial placement when the
        no-replication capacity exactly equals the number of views and
        rounding may leave one server one view short.
        """
        if self.has_view(user):
            raise StorageError(f"server {self.server_index} already stores view {user}")
        if self.is_full() and not allow_overflow:
            raise StorageError(f"server {self.server_index} is full")
        slot = self.table.allocate(user, self.server_index, write_proxy_broker)
        if stats is not None and self.table.stats is not None:
            self.table.stats.adopt(slot, stats)
        return ReplicaHandle(self.table, slot)

    def remove_replica(self, user: int) -> ViewReplica:
        """Remove the replica of ``user``'s view; returns a detached copy."""
        slot = self.table.slot_of(user, self.server_index)
        if slot is None:
            raise StorageError(
                f"server {self.server_index} does not store view {user}"
            )
        handle = ReplicaHandle(self.table, slot)
        removed = ViewReplica(
            user=user,
            server=self.server_index,
            stats=self.table.stats.export(slot)
            if self.table.stats is not None
            else AccessStatistics(self.counter_slots, self.counter_period),
            utility=handle.utility,
            write_proxy_broker=handle.write_proxy_broker,
            next_closest_replica=handle.next_closest_replica,
        )
        self.table.free(slot)
        return removed

    # --------------------------------------------------- thresholds/eviction
    def update_admission_threshold(self) -> float:
        """Recompute the admission threshold (paper section 3.2)."""
        return self.table.update_admission_threshold(self.server_index, self.admission_fill)

    def _eviction_target(self) -> int:
        """Occupancy the proactive eviction pass aims for."""
        return self.table.eviction_target(self.server_index, self.eviction_threshold)

    def needs_eviction(self) -> bool:
        """True when occupancy exceeds the proactive eviction target."""
        return self.table.needs_eviction(self.server_index, self.eviction_threshold)

    def eviction_candidates(self) -> list[ReplicaHandle]:
        """Replicas that may be evicted, least useful first.

        Sole replicas have infinite utility and are never candidates.
        """
        return [
            ReplicaHandle(self.table, slot)
            for slot in self.table.eviction_candidate_slots(self.server_index)
        ]

    def excess_replicas(self) -> int:
        """Number of replicas to shed to get back under the eviction target."""
        return self.table.excess_replicas(self.server_index, self.eviction_threshold)

    # ------------------------------------------------------------ maintenance
    def advance_counters(self, timestamp: float) -> None:
        """Rotate the access counters of every stored replica."""
        stats = self.table.stats
        if stats is None:
            return
        for slot in self.table.iter_position(self.server_index):
            stats.advance_slot(slot, timestamp)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StorageServer(index={self.server_index}, used={self.used}/"
            f"{self.capacity}, threshold={self.admission_threshold:.2f})"
        )


__all__ = ["StorageServer"]
