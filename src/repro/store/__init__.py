"""In-memory store substrate: counters, statistics, views, servers, budgets."""

from .counters import RotatingCounter
from .memory import MemoryBudget, budget_for
from .server import StorageServer
from .stats import AccessStatistics
from .view import Event, INFINITE_UTILITY, View, ViewReplica

__all__ = [
    "AccessStatistics",
    "Event",
    "INFINITE_UTILITY",
    "MemoryBudget",
    "RotatingCounter",
    "StorageServer",
    "View",
    "ViewReplica",
    "budget_for",
]
