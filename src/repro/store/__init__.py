"""In-memory store substrate: flat placement tables plus object façades.

Placement state lives in the struct-of-arrays tables of
:mod:`repro.store.tables`; ``StorageServer``, ``ViewReplica`` and
``AccessStatistics`` survive as thin, fully compatible façades/objects.
"""

from .counters import RotatingCounter
from .memory import MemoryBudget, budget_for
from .server import StorageServer
from .stats import AccessStatistics
from .tables import (
    NO_SLOT,
    ReplicaHandle,
    ReplicaTable,
    StatsHandle,
    StatsTable,
    pick_least_loaded,
    rank_by_utilisation,
)
from .view import Event, INFINITE_UTILITY, View, ViewReplica

__all__ = [
    "AccessStatistics",
    "Event",
    "INFINITE_UTILITY",
    "MemoryBudget",
    "NO_SLOT",
    "ReplicaHandle",
    "ReplicaTable",
    "RotatingCounter",
    "StatsHandle",
    "StatsTable",
    "StorageServer",
    "View",
    "ViewReplica",
    "budget_for",
    "pick_least_loaded",
    "rank_by_utilisation",
]
