"""Memory-budget arithmetic (paper section 2.3).

The paper expresses cluster memory as "x% extra memory": with ``|V|`` views
of ``b`` bytes each, the system has x% extra memory when its total capacity
is ``(1 + x/100) * |V| * b``.  Since all views have the same size, capacity is
counted in views.  The budget is split evenly across storage servers, with
the remainder spread one view at a time over the first servers so the total
is exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import CapacityError


@dataclass(frozen=True)
class MemoryBudget:
    """Total and per-server view capacity for a given extra-memory setting."""

    views: int
    extra_memory_pct: float
    servers: int

    def __post_init__(self) -> None:
        if self.views < 0:
            raise CapacityError("the number of views cannot be negative")
        if self.servers < 1:
            raise CapacityError("at least one storage server is required")
        if self.extra_memory_pct < 0:
            raise CapacityError("extra memory cannot be negative")
        if self.total_capacity < self.views:
            raise CapacityError(
                "the cluster cannot store one replica of every view "
                f"(capacity={self.total_capacity}, views={self.views})"
            )

    @property
    def total_capacity(self) -> int:
        """Total number of view slots in the cluster."""
        return int(round(self.views * (1.0 + self.extra_memory_pct / 100.0)))

    @property
    def replication_headroom(self) -> int:
        """Number of extra view slots available for replication."""
        return self.total_capacity - self.views

    def per_server_capacity(self) -> list[int]:
        """Capacity of each server (even split, remainder to the first ones)."""
        base = self.total_capacity // self.servers
        remainder = self.total_capacity % self.servers
        return [base + (1 if i < remainder else 0) for i in range(self.servers)]

    def average_replication_factor(self) -> float:
        """Average number of replicas per view if all memory were used."""
        if self.views == 0:
            return 0.0
        return self.total_capacity / self.views


def budget_for(views: int, extra_memory_pct: float, servers: int) -> MemoryBudget:
    """Convenience constructor for a :class:`MemoryBudget`."""
    return MemoryBudget(views=views, extra_memory_pct=extra_memory_pct, servers=servers)


__all__ = ["MemoryBudget", "budget_for"]
