"""Rotating access counters (paper section 3.2, "Access statistics").

Servers record the number of accesses to each view using a bank of rotating
counters: each counter covers one time period (one hour by default), and
when a period ends the oldest counter is reset and reused.  The sum of all
slots therefore approximates the access count over a sliding window (24 hours
by default), which is the rate DynaSoRe uses to compute view utilities.
"""

from __future__ import annotations

from ..constants import DEFAULT_COUNTER_PERIOD, DEFAULT_COUNTER_SLOTS
from ..exceptions import StorageError


class RotatingCounter:
    """A sliding-window counter made of ``slots`` rotating buckets."""

    __slots__ = ("slots", "period", "_buckets", "_current_period", "_total")

    def __init__(
        self,
        slots: int = DEFAULT_COUNTER_SLOTS,
        period: float = DEFAULT_COUNTER_PERIOD,
        start_time: float = 0.0,
    ) -> None:
        if slots < 1:
            raise StorageError("a rotating counter needs at least one slot")
        if period <= 0:
            raise StorageError("the rotation period must be positive")
        self.slots = slots
        self.period = period
        self._buckets = [0.0] * slots
        self._current_period = int(start_time // period)
        # Running sum of the window, maintained incrementally so ``total`` is
        # O(1) — it sits on the utility-estimation hot path, where it used to
        # dominate via repeated O(slots) sums.
        self._total = 0.0

    # ------------------------------------------------------------- recording
    def record(self, timestamp: float, amount: float = 1.0) -> None:
        """Record ``amount`` accesses at ``timestamp``."""
        if int(timestamp // self.period) > self._current_period:
            self.advance(timestamp)
        self._buckets[self._current_period % self.slots] += amount
        self._total += amount

    def advance(self, timestamp: float) -> None:
        """Rotate buckets so the counter is current with ``timestamp``.

        Every full period that elapsed since the last access clears exactly
        one bucket; if more periods than slots elapsed the whole window is
        cleared.
        """
        period = int(timestamp // self.period)
        if period <= self._current_period:
            return
        elapsed = period - self._current_period
        if elapsed >= self.slots:
            self._buckets = [0.0] * self.slots
            self._total = 0.0
        else:
            buckets = self._buckets
            for step in range(1, elapsed + 1):
                index = (self._current_period + step) % self.slots
                self._total -= buckets[index]
                buckets[index] = 0.0
        self._current_period = period

    # --------------------------------------------------------------- queries
    def total(self) -> float:
        """Sum of the sliding window."""
        return self._total

    def rate_per_period(self) -> float:
        """Average accesses per period over the window."""
        return self.total() / self.slots

    def current_bucket(self) -> float:
        """Value of the bucket currently being filled."""
        return self._buckets[self._current_period % self.slots]

    def is_empty(self) -> bool:
        """True when no access is recorded in the window."""
        return all(value == 0.0 for value in self._buckets)

    def copy(self) -> "RotatingCounter":
        """Deep copy preserving the rotation state."""
        clone = RotatingCounter(self.slots, self.period)
        clone._buckets = list(self._buckets)
        clone._current_period = self._current_period
        clone._total = self._total
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RotatingCounter(total={self.total():.1f}, slots={self.slots})"


__all__ = ["RotatingCounter"]
