"""Struct-of-arrays placement state: flat replica and statistics tables.

This module is the storage substrate every placement layer shares since the
array-backed state refactor.  Instead of one ``ViewReplica`` object per
replica inside per-server dicts — plus per-user ``dict``/``set`` location
maps and a tree of ``AccessStatistics``/``RotatingCounter`` objects — all
placement-relevant state lives in a handful of flat, parallel columns
indexed by an integer **replica id** (a *slot*):

``ReplicaTable`` (one row per replica slot)
    ===============  ==========  ===================================================
    column           type        meaning
    ===============  ==========  ===================================================
    ``_user``        int64       user whose view this replica stores
    ``_server``      int64       storage-server *position* hosting it (-1 = free)
    ``_utility``     float64     cached utility (Algorithm 1), ``inf`` when sole
    ``_write_proxy`` int64       broker device of the view's write proxy (-1 = none)
    ``_next_closest``int64       device of the next-closest sibling replica (-1 = sole)
    ``_user_next``   int64       next slot of the *same user* (also the free list)
    ``_srv_prev``    int64       previous slot in the *same position's* chain
    ``_srv_next``    int64       next slot in the *same position's* chain
    ===============  ==========  ===================================================

    The per-user and per-server indexes are CSR-in-spirit: instead of
    materialised offset arrays (which would need rebuilding under churn)
    each dimension keeps head pointers — ``_user_head`` (user id → first
    slot) and ``_srv_head``/``_srv_tail`` (position → chain ends) — and the
    rows chain through the link columns above.  Walking a chain touches
    only flat arrays; per-user chains are replication-factor short, and
    per-server chains preserve **insertion order** exactly like the dicts
    they replace (appends go to the tail, removals unlink in place), which
    the eviction tie-breaking relies on.

    Freed slots are recycled through a free list threaded through
    ``_user_next``; allocation therefore never shifts live rows, so a
    replica id stays valid from ``allocate`` until ``free`` — the
    *replica-id contract* the engine, the baselines and the simulator all
    rely on.  Per-position occupancy lives in ``_used``/``_capacity``
    counters, making ``memory_in_use``/``server_utilisations`` O(1) reads.

``StatsTable`` (rotating access windows as numeric columns)
    The per-replica read/write statistics of the paper's Algorithms 1–3.
    Rotating windows are rows of a shared **counter-node pool**: flattened
    bucket columns (``_node_buckets``, stride = ``slots``), a running
    window total, the node's current rotation period and its origin label.
    A replica's per-origin read counters form a chain through
    ``_node_next`` in **first-record order** (the order Algorithm 2
    iterates candidate origins in), its write window is a single lazily
    allocated node, and freed nodes recycle through their own free list.
    The arithmetic is a verbatim port of
    :class:`~repro.store.counters.RotatingCounter`, so window totals are
    bit-for-bit identical to the object path.

The object classes (:class:`~repro.store.view.ViewReplica`,
:class:`~repro.store.stats.AccessStatistics`,
:class:`~repro.store.server.StorageServer`) survive as thin façades:
:class:`ReplicaHandle`/:class:`StatsHandle` expose the same attribute
surface reading and writing table columns, so existing tests, the decision
algorithms in :mod:`repro.core` and user code keep working unchanged.
"""

from __future__ import annotations

import hashlib
import heapq
import math
import os
from array import array
from collections.abc import Iterator, Sequence
from operator import itemgetter
from types import MappingProxyType

from ..constants import DEFAULT_COUNTER_PERIOD, DEFAULT_COUNTER_SLOTS
from ..exceptions import StorageError

#: Utility of a replica that must never be evicted (sole replica).
_INF = math.inf

#: Sentinel for "no slot / no node / no value" in the int64 link columns.
NO_SLOT = -1

#: Utility sort key of the eviction candidate scan.  Sorting the ``(utility,
#: slot)`` pairs on the utility *alone* keeps the sort stable on chain
#: insertion order — slot ids are recycled through the free list, so they
#: are not monotone in insertion order and must never act as a tie-breaker.
_UTILITY_KEY = itemgetter(0)


def _audit_views_enabled() -> bool:
    """True when ``REPRO_CHECK_TABLES`` asks for read-only statistics views.

    The same opt-in flag that enables the simulator's table audits also
    hardens the shared ``reads_by_origin`` cache: query paths then receive
    immutable mapping proxies, so any caller mutating the cache in place —
    the aliasing hazard of handing a live cache dict to the pricing
    functions — fails loudly instead of corrupting the statistics.
    """
    return os.environ.get("REPRO_CHECK_TABLES", "").strip().lower() not in (
        "",
        "0",
        "false",
        "no",
        "off",
    )


# ---------------------------------------------------------------------------
# Shared least-loaded helpers (deduplicated from the engine and baselines)
# ---------------------------------------------------------------------------
def pick_least_loaded(
    loads: Sequence[int],
    down: Sequence[int] | set[int] = (),
    capacities: Sequence[int] | None = None,
    skip_full: bool = False,
) -> int | None:
    """Least-loaded in-service position, ties broken on the position index.

    With ``capacities`` the key is the memory *utilisation* (``load /
    capacity``; an empty zero-capacity server counts as 0.0, a non-empty one
    as 1.0 — the historical ``StorageServer.utilisation`` contract);
    without, the key is the absolute load.  ``skip_full`` additionally
    requires a free slot.  This is the single implementation behind the
    engine's recovery/new-user targeting and the static/SPAR baselines'
    placement, which each used to carry their own copy.
    """
    best = None
    best_key: tuple[float, int] | None = None
    for position in range(len(loads)):
        if position in down:
            continue
        load = loads[position]
        if capacities is not None:
            capacity = capacities[position]
            if skip_full and load >= capacity:
                continue
            if capacity > 0:
                key_load = load / capacity
            else:
                key_load = 1.0 if load else 0.0
        else:
            if skip_full:
                raise StorageError("skip_full requires capacities")
            key_load = load
        key = (key_load, position)
        if best_key is None or key < best_key:
            best = position
            best_key = key
    return best


def rank_by_utilisation(
    positions: Sequence[int], loads: Sequence[int], capacities: Sequence[int]
) -> tuple[int, ...]:
    """Positions with a free slot, least utilised first (ties on position).

    The ranking the engine caches per origin between occupancy changes;
    replica creation never evicts on the spot, so full servers are skipped.
    """
    ranked: list[tuple[float, int]] = []
    for position in positions:
        capacity = capacities[position]
        used = loads[position]
        if used < capacity:
            ranked.append((used / capacity, position))
    ranked.sort()
    return tuple(position for _, position in ranked)


# ---------------------------------------------------------------------------
# StatsTable: rotating access windows as numeric columns
# ---------------------------------------------------------------------------
class StatsTable:
    """Per-slot access statistics stored as flat counter-node columns.

    See the module docstring for the layout.  All mutation entry points
    mirror :class:`~repro.store.stats.AccessStatistics` one-to-one; window
    arithmetic is a verbatim port of
    :class:`~repro.store.counters.RotatingCounter`.
    """

    __slots__ = (
        "slots",
        "period",
        "_read_head",
        "_write_node",
        "_reads_since_eval",
        "_node_origin",
        "_node_next",
        "_node_period",
        "_node_total",
        "_node_buckets",
        "_node_alloc",
        "_node_free",
        "_node_count",
        "_origins_cache",
        "_readonly_views",
    )

    def __init__(
        self,
        slots: int = DEFAULT_COUNTER_SLOTS,
        period: float = DEFAULT_COUNTER_PERIOD,
    ) -> None:
        if slots < 1:
            raise StorageError("a rotating counter needs at least one slot")
        if period <= 0:
            raise StorageError("the rotation period must be positive")
        self.slots = slots
        self.period = period
        # Per replica-slot columns (kept in lockstep with the ReplicaTable).
        # Plain lists, not ``array``: the hot path reads these once per
        # event, and list indexing avoids re-boxing the value every access.
        self._read_head: list[int] = []
        self._write_node: list[int] = []
        self._reads_since_eval: list[int] = []
        # Counter-node pool: one row per rotating window.  The bucket matrix
        # is an ``array('d')`` — it is the bulk of the statistics memory
        # (``slots`` doubles per window) and is only touched on rotation.
        self._node_origin: list[int] = []
        self._node_next: list[int] = []
        self._node_period: list[int] = []
        self._node_total: list[float] = []
        self._node_buckets = array("d")
        # Allocation bitmap of the node pool: pool sweeps must skip free
        # nodes (their windows are zeroed, and ``_alloc_node`` re-stamps the
        # period on reuse, so touching them is pure waste).
        self._node_alloc = bytearray()
        self._node_free = NO_SLOT
        self._node_count = 0
        # slot -> {origin: window total > 0} in first-record order, built
        # lazily and invalidated by reads, rotations and resets (the same
        # cache discipline AccessStatistics uses).
        self._origins_cache: dict[int, dict[int, float]] = {}
        # Audit mode: serve immutable views of the shared origins cache so
        # read-only-contract violations raise instead of corrupting state.
        self._readonly_views = _audit_views_enabled()

    # ------------------------------------------------------------- lifecycle
    def append_slot(self) -> None:
        """Grow the per-slot columns by one fresh row."""
        self._read_head.append(NO_SLOT)
        self._write_node.append(NO_SLOT)
        self._reads_since_eval.append(0)

    def reset_slot(self, slot: int) -> None:
        """Return a slot's counter nodes to the pool and zero its state."""
        node = self._read_head[slot]
        nnext = self._node_next
        while node != NO_SLOT:
            following = nnext[node]
            self._free_node(node)
            node = following
        self._read_head[slot] = NO_SLOT
        write_node = self._write_node[slot]
        if write_node != NO_SLOT:
            self._free_node(write_node)
            self._write_node[slot] = NO_SLOT
        self._reads_since_eval[slot] = 0
        self._origins_cache.pop(slot, None)

    def move_slot(self, source: int, target: int) -> None:
        """Transfer all statistics of ``source`` onto the fresh ``target``.

        The graceful-drain path: a replica keeps its access history when it
        is copied off a leaving server.  ``target`` must be freshly
        allocated (no counters of its own yet).
        """
        if self._read_head[target] != NO_SLOT or self._write_node[target] != NO_SLOT:
            raise StorageError("cannot move statistics onto a used slot")
        self._read_head[target] = self._read_head[source]
        self._write_node[target] = self._write_node[source]
        self._reads_since_eval[target] = self._reads_since_eval[source]
        self._read_head[source] = NO_SLOT
        self._write_node[source] = NO_SLOT
        self._reads_since_eval[source] = 0
        self._origins_cache.pop(source, None)
        self._origins_cache.pop(target, None)

    # ----------------------------------------------------------- node pool
    def _alloc_node(self, origin: int, period_index: int) -> int:
        node = self._node_free
        if node != NO_SLOT:
            self._node_free = self._node_next[node]
        else:
            node = len(self._node_origin)
            self._node_origin.append(0)
            self._node_next.append(NO_SLOT)
            self._node_period.append(0)
            self._node_total.append(0.0)
            self._node_buckets.extend([0.0] * self.slots)
            self._node_alloc.append(0)
        self._node_alloc[node] = 1
        self._node_origin[node] = origin
        self._node_next[node] = NO_SLOT
        self._node_period[node] = period_index
        self._node_total[node] = 0.0
        self._node_count += 1
        return node

    def _free_node(self, node: int) -> None:
        # Zero the window now so recycled nodes start clean.
        base = node * self.slots
        buckets = self._node_buckets
        for index in range(base, base + self.slots):
            buckets[index] = 0.0
        self._node_total[node] = 0.0
        self._node_alloc[node] = 0
        self._node_next[node] = self._node_free
        self._node_free = node
        self._node_count -= 1

    # -------------------------------------------------- window arithmetic
    def _advance_node(self, node: int, period_index: int) -> None:
        """Port of ``RotatingCounter.advance`` on the flat columns."""
        current = self._node_period[node]
        if period_index <= current:
            return
        slots = self.slots
        base = node * slots
        buckets = self._node_buckets
        elapsed = period_index - current
        if elapsed >= slots:
            for index in range(base, base + slots):
                buckets[index] = 0.0
            self._node_total[node] = 0.0
        else:
            total = self._node_total[node]
            for step in range(1, elapsed + 1):
                index = base + (current + step) % slots
                total -= buckets[index]
                buckets[index] = 0.0
            self._node_total[node] = total
        self._node_period[node] = period_index

    def _record(self, node: int, timestamp: float, amount: float) -> None:
        """Port of ``RotatingCounter.record`` on the flat columns."""
        period_index = int(timestamp // self.period)
        if period_index > self._node_period[node]:
            self._advance_node(node, period_index)
        self._node_buckets[node * self.slots + self._node_period[node] % self.slots] += amount
        self._node_total[node] += amount

    # ------------------------------------------------------------ recording
    def record_read(self, slot: int, origin: int, timestamp: float, amount: float = 1.0) -> None:
        """Record a read of ``slot``'s view coming from ``origin``."""
        node = self._read_head[slot]
        nnext = self._node_next
        norigin = self._node_origin
        last = NO_SLOT
        while node != NO_SLOT:
            if norigin[node] == origin:
                break
            last = node
            node = nnext[node]
        if node == NO_SLOT:
            # New origins start their window at the first read's timestamp,
            # appended at the tail so first-record order is preserved.
            node = self._alloc_node(origin, int(timestamp // self.period))
            if last == NO_SLOT:
                self._read_head[slot] = node
            else:
                nnext[last] = node
        # Inlined ``RotatingCounter.record`` (one call per simulated read).
        nperiod = self._node_period
        period_index = int(timestamp // self.period)
        if period_index > nperiod[node]:
            self._advance_node(node, period_index)
        self._node_buckets[node * self.slots + nperiod[node] % self.slots] += amount
        self._node_total[node] += amount
        self._reads_since_eval[slot] += 1
        # Keep the cached origins dict live instead of rebuilding it on the
        # next query: a read only changes its own origin's total, and only
        # an origin already present keeps its position in first-record
        # order (a newly visible origin forces a rebuild).
        cached = self._origins_cache.get(slot)
        if cached is not None:
            if origin in cached:
                cached[origin] = self._node_total[node]
            else:
                del self._origins_cache[slot]

    def record_write(self, slot: int, timestamp: float, amount: float = 1.0) -> None:
        """Record a write (writes always come from the view's write proxy)."""
        node = self._write_node[slot]
        if node == NO_SLOT:
            # Write windows are allocated lazily; period 0 matches the
            # object path, whose write counter is created at time 0.
            node = self._alloc_node(NO_SLOT, 0)
            self._write_node[slot] = node
        self._record(node, timestamp, amount)

    def advance_slot(self, slot: int, timestamp: float) -> None:
        """Rotate every window of ``slot`` so it is current with ``timestamp``."""
        period_index = int(timestamp // self.period)
        node = self._read_head[slot]
        nnext = self._node_next
        while node != NO_SLOT:
            self._advance_node(node, period_index)
            node = nnext[node]
        write_node = self._write_node[slot]
        if write_node != NO_SLOT:
            self._advance_node(write_node, period_index)
        self._origins_cache.pop(slot, None)

    def advance_pool(self, timestamp: float) -> None:
        """Column sweep: rotate **every** window in the pool to ``timestamp``.

        The maintenance tick's replacement for per-replica ``advance``
        calls: one flat pass over the node columns, no chain walks.  Free
        nodes are skipped through the allocation bitmap — their windows are
        zeroed on recycling and ``_alloc_node`` re-stamps the period on
        reuse, so even stamping them here would be wasted work.
        """
        period_index = int(timestamp // self.period)
        slots = self.slots
        nperiod = self._node_period
        ntotal = self._node_total
        buckets = self._node_buckets
        nalloc = self._node_alloc
        for node in range(len(nperiod)):
            if not nalloc[node]:
                continue
            current = nperiod[node]
            if current >= period_index:
                continue
            total = ntotal[node]
            # Amounts are non-negative, so a zero window total means every
            # bucket is already zero — only the period needs stamping.
            if total:
                base = node * slots
                elapsed = period_index - current
                if elapsed >= slots:
                    for index in range(base, base + slots):
                        buckets[index] = 0.0
                    ntotal[node] = 0.0
                else:
                    for step in range(1, elapsed + 1):
                        index = base + (current + step) % slots
                        total -= buckets[index]
                        buckets[index] = 0.0
                    ntotal[node] = total
            nperiod[node] = period_index
        self._origins_cache.clear()

    # -------------------------------------------------------------- queries
    def reads_by_origin(self, slot: int) -> dict[int, float]:
        """Window read totals keyed by origin, in first-record order.

        The returned dict is a shared cache — treat it as read-only.  The
        cache owner (:meth:`record_read` and the engine's fused kernels)
        updates it in place through the raw ``_origins_cache`` dicts; every
        *query* path goes through here, so with ``REPRO_CHECK_TABLES``
        enabled the result is wrapped in an immutable mapping proxy and any
        caller violating the read-only contract raises a ``TypeError``
        instead of silently corrupting the statistics.
        """
        cached = self._origins_cache.get(slot)
        if cached is None:
            cached = {}
            node = self._read_head[slot]
            nnext = self._node_next
            norigin = self._node_origin
            ntotal = self._node_total
            while node != NO_SLOT:
                total = ntotal[node]
                if total > 0:
                    cached[norigin[node]] = total
                node = nnext[node]
            self._origins_cache[slot] = cached
        if self._readonly_views:
            return MappingProxyType(cached)
        return cached

    def total_reads(self, slot: int) -> float:
        """Total window reads of ``slot``, all origins combined."""
        total = 0.0
        node = self._read_head[slot]
        while node != NO_SLOT:
            total += self._node_total[node]
            node = self._node_next[node]
        return total

    def total_writes(self, slot: int) -> float:
        """Total window writes of ``slot``."""
        node = self._write_node[slot]
        return self._node_total[node] if node != NO_SLOT else 0.0

    def reads_from(self, slot: int, origin: int) -> float:
        """Window reads of ``slot`` recorded from one origin."""
        node = self._read_head[slot]
        while node != NO_SLOT:
            if self._node_origin[node] == origin:
                return self._node_total[node]
            node = self._node_next[node]
        return 0.0

    def reads_since_evaluation(self, slot: int) -> int:
        """Reads recorded since the evaluation marker was reset."""
        return self._reads_since_eval[slot]

    def mark_evaluated(self, slot: int) -> None:
        """Reset the evaluation marker (after running Algorithm 2)."""
        self._reads_since_eval[slot] = 0

    # ----------------------------------------------- object-path interop
    def adopt(self, slot: int, stats) -> None:
        """Load the content of an ``AccessStatistics`` object into ``slot``.

        Used by the ``StorageServer`` façade when callers hand it a
        pre-built statistics object (the historical ``add_replica(...,
        stats=...)`` contract).  Copies windows bucket-for-bucket.
        """
        for origin, counter in stats._reads.items():
            node = self._alloc_node(origin, counter._current_period)
            self._adopt_counter(node, counter)
            self._link_read_tail(slot, node)
        writes = stats._writes
        node = self._alloc_node(NO_SLOT, writes._current_period)
        self._adopt_counter(node, writes)
        self._write_node[slot] = node
        self._reads_since_eval[slot] = stats._reads_since_evaluation
        self._origins_cache.pop(slot, None)

    def _adopt_counter(self, node: int, counter) -> None:
        if counter.slots != self.slots or counter.period != self.period:
            raise StorageError("cannot adopt a counter with a different window")
        base = node * self.slots
        for offset, value in enumerate(counter._buckets):
            self._node_buckets[base + offset] = value
        self._node_total[node] = counter.total()
        self._node_period[node] = counter._current_period

    def _link_read_tail(self, slot: int, node: int) -> None:
        head = self._read_head[slot]
        if head == NO_SLOT:
            self._read_head[slot] = node
            return
        while self._node_next[head] != NO_SLOT:
            head = self._node_next[head]
        self._node_next[head] = node

    def export(self, slot: int):
        """Materialise ``slot``'s statistics as a standalone object copy."""
        from .counters import RotatingCounter
        from .stats import AccessStatistics

        stats = AccessStatistics(self.slots, self.period)
        node = self._read_head[slot]
        while node != NO_SLOT:
            stats._reads[self._node_origin[node]] = self._export_counter(node, RotatingCounter)
            node = self._node_next[node]
        write_node = self._write_node[slot]
        if write_node != NO_SLOT:
            stats._writes = self._export_counter(write_node, RotatingCounter)
        stats._reads_since_evaluation = self._reads_since_eval[slot]
        return stats

    def _export_counter(self, node: int, counter_class):
        counter = counter_class(self.slots, self.period)
        base = node * self.slots
        counter._buckets = list(self._node_buckets[base : base + self.slots])
        counter._current_period = self._node_period[node]
        counter._total = self._node_total[node]
        return counter

    # ----------------------------------------------------------------- digest
    def state_digest(self) -> str:
        """Order-insensitive sha256 of every slot's logical statistics.

        The sharded runner's cross-worker consistency audit: workers that
        replayed the same decision-plane history must produce equal digests.
        Covers, per slot, the read counters keyed by origin (period, total,
        bucket windows), the write counter and the since-evaluation count —
        but *not* node ids or free-list layout, which depend on allocation
        history rather than logical content.
        """
        hasher = hashlib.sha256()
        slots = self.slots
        buckets = self._node_buckets
        for slot in range(len(self._read_head)):
            reads = []
            node = self._read_head[slot]
            while node != NO_SLOT:
                base = node * slots
                reads.append(
                    (
                        self._node_origin[node],
                        self._node_period[node],
                        self._node_total[node],
                        tuple(buckets[base : base + slots]),
                    )
                )
                node = self._node_next[node]
            reads.sort()
            write_node = self._write_node[slot]
            if write_node == NO_SLOT:
                writes = None
            else:
                base = write_node * slots
                writes = (
                    self._node_period[write_node],
                    self._node_total[write_node],
                    tuple(buckets[base : base + slots]),
                )
            hasher.update(
                repr((slot, self._reads_since_eval[slot], reads, writes)).encode()
            )
        return hasher.hexdigest()


# ---------------------------------------------------------------------------
# ReplicaTable: the flat placement-state table
# ---------------------------------------------------------------------------
class ReplicaTable:
    """Flat replica-slot table with per-user and per-server chain indexes.

    See the module docstring for the column layout and the replica-id
    contract.  ``with_stats=False`` builds a table without the statistics
    columns (SPAR and the static baselines track placement only).
    """

    def __init__(
        self,
        positions: int = 0,
        counter_slots: int = DEFAULT_COUNTER_SLOTS,
        counter_period: float = DEFAULT_COUNTER_PERIOD,
        with_stats: bool = True,
    ) -> None:
        # Slot columns.  Plain lists: every hot path indexes these several
        # times per event, and list indexing returns the stored object
        # without re-boxing (an ``array`` materialises a fresh int per
        # read).  The referenced ints are shared with the social graph and
        # the user index, so the per-slot cost stays one machine word.
        self._user: list[int] = []
        self._server: list[int] = []
        self._utility: list[float] = []
        self._write_proxy: list[int] = []
        self._next_closest: list[int] = []
        self._user_next: list[int] = []  # doubles as the free-list link
        self._srv_prev: list[int] = []
        self._srv_next: list[int] = []
        # Per-user index: user id -> head slot (insertion order of this dict
        # is first-placement order, which replica_locations() preserves).
        self._user_head: dict[int, int] = {}
        # Per-position index and counters.
        self._srv_head: list[int] = [NO_SLOT] * positions
        self._srv_tail: list[int] = [NO_SLOT] * positions
        self._used: list[int] = [0] * positions
        self._capacity: list[int] = [0] * positions
        self._admission: list[float] = [0.0] * positions
        # Per-position tick-dirty flags: set by every placement or capacity
        # change here (statistics records and next-closest refreshes mark
        # through the engine, which knows the touched position), cleared by
        # the batched maintenance sweep when it re-prices a position.  A
        # clean position is one whose pricing inputs are untouched since its
        # last sweep, so the sweep may skip it (see ``DynaSoRe.on_tick``).
        self._tick_dirty: list[bool] = [True] * positions
        # Reusable scratch heap of the admission-threshold top-k selection.
        self._threshold_scratch: list[float] = []
        self._free_head = NO_SLOT
        self._active = 0
        self.stats: StatsTable | None = (
            StatsTable(counter_slots, counter_period) if with_stats else None
        )

    # ------------------------------------------------------------ positions
    @property
    def num_positions(self) -> int:
        """Number of storage-server positions the table spans."""
        return len(self._srv_head)

    def add_position(self, capacity: int = 0) -> int:
        """Append a new storage-server position."""
        if capacity < 0:
            raise StorageError("server capacity cannot be negative")
        self._srv_head.append(NO_SLOT)
        self._srv_tail.append(NO_SLOT)
        self._used.append(0)
        self._capacity.append(capacity)
        self._admission.append(0.0)
        self._tick_dirty.append(True)
        return len(self._srv_head) - 1

    def ensure_position(self, position: int) -> None:
        """Grow the position axis so ``position`` is addressable."""
        while position >= len(self._srv_head):
            self.add_position()

    def set_capacity(self, position: int, capacity: int) -> None:
        """Set the nominal capacity of a position (0 while it is down)."""
        if capacity < 0:
            raise StorageError("server capacity cannot be negative")
        self._capacity[position] = capacity
        self._tick_dirty[position] = True

    def mark_tick_dirty(self, position: int) -> None:
        """Flag a position's pricing inputs as changed since its last sweep."""
        self._tick_dirty[position] = True

    def capacity_of(self, position: int) -> int:
        """Nominal capacity of a position in views."""
        return self._capacity[position]

    def used_of(self, position: int) -> int:
        """Replicas currently stored at a position (O(1) counter)."""
        return self._used[position]

    @property
    def used(self) -> list[int]:
        """Per-position occupancy counters (read-only by convention)."""
        return self._used

    @property
    def capacities(self) -> list[int]:
        """Per-position capacities (read-only by convention)."""
        return self._capacity

    @property
    def admission_thresholds(self) -> list[float]:
        """Per-position admission thresholds (read-only by convention)."""
        return self._admission

    @property
    def active_count(self) -> int:
        """Total live replicas across every position (O(1))."""
        return self._active

    # ------------------------------------------------------------ allocation
    def allocate(
        self, user: int, position: int, write_proxy_broker: int | None = None
    ) -> int:
        """Create a replica of ``user``'s view at ``position``; returns its slot.

        Capacity is *not* enforced here — admission policy belongs to the
        callers (the engine allows controlled overflow during recovery).
        """
        slot = self._free_head
        if slot != NO_SLOT:
            self._free_head = self._user_next[slot]
            self._user[slot] = user
            self._server[slot] = position
            self._utility[slot] = 0.0
            self._write_proxy[slot] = NO_SLOT if write_proxy_broker is None else write_proxy_broker
            self._next_closest[slot] = NO_SLOT
            self._user_next[slot] = NO_SLOT
        else:
            slot = len(self._user)
            self._user.append(user)
            self._server.append(position)
            self._utility.append(0.0)
            self._write_proxy.append(
                NO_SLOT if write_proxy_broker is None else write_proxy_broker
            )
            self._next_closest.append(NO_SLOT)
            self._user_next.append(NO_SLOT)
            self._srv_prev.append(NO_SLOT)
            self._srv_next.append(NO_SLOT)
            if self.stats is not None:
                self.stats.append_slot()
        # Link at the tail of the user chain.
        head = self._user_head.get(user, NO_SLOT)
        if head == NO_SLOT:
            self._user_head[user] = slot
        else:
            while self._user_next[head] != NO_SLOT:
                head = self._user_next[head]
            self._user_next[head] = slot
        # Link at the tail of the position chain (insertion order).
        tail = self._srv_tail[position]
        self._srv_prev[slot] = tail
        self._srv_next[slot] = NO_SLOT
        if tail == NO_SLOT:
            self._srv_head[position] = slot
        else:
            self._srv_next[tail] = slot
        self._srv_tail[position] = slot
        self._used[position] += 1
        self._active += 1
        self._tick_dirty[position] = True
        return slot

    def detach(self, slot: int) -> None:
        """Unlink a slot from both indexes without recycling it yet.

        The evacuation path detaches first so the slot's statistics stay
        readable while the replica is re-homed, then calls :meth:`release`.
        """
        user = self._user[slot]
        position = self._server[slot]
        # User chain.
        head = self._user_head[user]
        if head == slot:
            following = self._user_next[slot]
            if following == NO_SLOT:
                del self._user_head[user]
            else:
                self._user_head[user] = following
        else:
            previous = head
            while self._user_next[previous] != slot:
                previous = self._user_next[previous]
            self._user_next[previous] = self._user_next[slot]
        self._user_next[slot] = NO_SLOT
        # Position chain.
        previous, following = self._srv_prev[slot], self._srv_next[slot]
        if previous == NO_SLOT:
            self._srv_head[position] = following
        else:
            self._srv_next[previous] = following
        if following == NO_SLOT:
            self._srv_tail[position] = previous
        else:
            self._srv_prev[following] = previous
        self._srv_prev[slot] = NO_SLOT
        self._srv_next[slot] = NO_SLOT
        self._used[position] -= 1
        self._active -= 1
        self._tick_dirty[position] = True

    def release(self, slot: int) -> None:
        """Recycle a detached slot through the free list."""
        if self.stats is not None:
            self.stats.reset_slot(slot)
        self._server[slot] = NO_SLOT
        self._user_next[slot] = self._free_head
        self._free_head = slot

    def free(self, slot: int) -> None:
        """Remove a replica: detach from the indexes and recycle the slot."""
        self.detach(slot)
        self.release(slot)

    # --------------------------------------------------------------- queries
    def user_of(self, slot: int) -> int:
        """User whose view the slot stores."""
        return self._user[slot]

    def position_of(self, slot: int) -> int:
        """Position hosting the slot (-1 when the slot is free)."""
        return self._server[slot]

    def has_user(self, user: int) -> bool:
        """True when at least one replica of the user's view exists."""
        return user in self._user_head

    def users(self):
        """Live users in first-placement order."""
        return self._user_head.keys()

    def user_slots(self, user: int) -> list[int]:
        """Slots of one user's replicas, placement order."""
        result: list[int] = []
        slot = self._user_head.get(user, NO_SLOT)
        user_next = self._user_next
        while slot != NO_SLOT:
            result.append(slot)
            slot = user_next[slot]
        return result

    def user_positions(self, user: int) -> tuple[int, ...]:
        """Positions storing the user's view, placement order."""
        result: list[int] = []
        slot = self._user_head.get(user, NO_SLOT)
        user_next = self._user_next
        server = self._server
        while slot != NO_SLOT:
            result.append(server[slot])
            slot = user_next[slot]
        return tuple(result)

    def user_replica_count(self, user: int) -> int:
        """Number of replicas of one user's view."""
        count = 0
        slot = self._user_head.get(user, NO_SLOT)
        while slot != NO_SLOT:
            count += 1
            slot = self._user_next[slot]
        return count

    def slot_of(self, user: int, position: int) -> int | None:
        """Slot of the user's replica at ``position`` (None when absent)."""
        slot = self._user_head.get(user, NO_SLOT)
        while slot != NO_SLOT:
            if self._server[slot] == position:
                return slot
            slot = self._user_next[slot]
        return None

    def position_slots(self, position: int) -> list[int]:
        """Snapshot of a position's slots in insertion order."""
        result: list[int] = []
        slot = self._srv_head[position]
        while slot != NO_SLOT:
            result.append(slot)
            slot = self._srv_next[slot]
        return result

    def iter_position(self, position: int) -> Iterator[int]:
        """Iterate a position's slots in insertion order (no snapshot)."""
        slot = self._srv_head[position]
        while slot != NO_SLOT:
            yield slot
            slot = self._srv_next[slot]

    def users_at(self, position: int) -> list[int]:
        """Users with a replica at ``position``, insertion order."""
        return [self._user[slot] for slot in self.iter_position(position)]

    # ------------------------------------------------------ replica columns
    def effective_utility(self, slot: int) -> float:
        """Eviction utility: infinite for sole replicas."""
        if self._next_closest[slot] == NO_SLOT:
            return _INF
        return self._utility[slot]

    # ------------------------------------------------- thresholds/eviction
    def update_admission_threshold(self, position: int, admission_fill: float) -> float:
        """Recompute a position's admission threshold (paper section 3.2).

        The threshold is the utility of the replica sitting at the
        admission-fill boundary: the ``fill_slots``-th most useful replica
        of the position.  Instead of materialising and fully sorting every
        utility, the boundary value — the maximum of the ``used -
        fill_slots + 1`` *least* useful replicas — is selected in one chain
        pass over a reusable bounded heap (the admission fill factor keeps
        that heap at ~10% of the chain length).  Selection is value-
        identical to the historical sort-and-index implementation.
        """
        capacity = self._capacity[position]
        if capacity == 0:
            self._admission[position] = _INF
            return _INF
        fill_slots = int(admission_fill * capacity)
        used = self._used[position]
        if used <= fill_slots or fill_slots == 0:
            self._admission[position] = 0.0
            return 0.0
        # Max-heap (negated min-heap) of the (used - fill_slots + 1) lowest
        # effective utilities; its maximum is the boundary utility.
        heap = self._threshold_scratch
        heap.clear()
        keep = used - fill_slots + 1
        heappush = heapq.heappush
        heapreplace = heapq.heapreplace
        slot = self._srv_head[position]
        srv_next = self._srv_next
        next_closest = self._next_closest
        utility = self._utility
        while slot != NO_SLOT:
            negated = -_INF if next_closest[slot] == NO_SLOT else -utility[slot]
            if len(heap) < keep:
                heappush(heap, negated)
            elif negated > heap[0]:
                heapreplace(heap, negated)
            slot = srv_next[slot]
        threshold = -heap[0]
        # Boundary on a sole replica: the infinite threshold collapses to
        # 0.0 (admit everything).  This mirrors ``repro.legacy`` — the seed
        # implementation of paper section 3.2 — byte for byte; the golden
        # parity suite pins the legacy twin, so the collapse is kept as the
        # reference semantics rather than "fixed" (see the boundary
        # regression tests in tests/test_tables.py, which cover both the
        # collapsing and the finite branch).
        value = 0.0 if threshold == _INF else max(0.0, threshold)
        self._admission[position] = value
        return value

    def eviction_target(self, position: int, eviction_threshold: float) -> int:
        """Occupancy the proactive eviction pass aims for at ``position``."""
        capacity = self._capacity[position]
        if capacity <= 1:
            return capacity
        return min(capacity - 1, math.ceil(eviction_threshold * capacity))

    def needs_eviction(self, position: int, eviction_threshold: float) -> bool:
        """True when occupancy exceeds the proactive eviction target."""
        if self._capacity[position] == 0:
            return self._used[position] > 0
        return self._used[position] > self.eviction_target(position, eviction_threshold)

    def excess_replicas(self, position: int, eviction_threshold: float) -> int:
        """Replicas to shed at ``position`` to get under the eviction target."""
        if self._capacity[position] == 0:
            return self._used[position]
        return max(0, self._used[position] - self.eviction_target(position, eviction_threshold))

    def eviction_candidate_slots(self, position: int) -> list[int]:
        """Evictable slots, least useful first (stable on insertion order).

        One chain pass computing each effective utility exactly once; the
        pairs are sorted on the utility alone (never the slot id — recycled
        ids are not monotone in insertion order), so ``list.sort`` stability
        preserves the chain insertion order between equal utilities, the
        historical tie-breaking the proactive eviction pass relies on.
        """
        pairs: list[tuple[float, int]] = []
        slot = self._srv_head[position]
        srv_next = self._srv_next
        next_closest = self._next_closest
        utility = self._utility
        while slot != NO_SLOT:
            if next_closest[slot] != NO_SLOT:
                value = utility[slot]
                if value != _INF:
                    pairs.append((value, slot))
            slot = srv_next[slot]
        pairs.sort(key=_UTILITY_KEY)
        return [pair[1] for pair in pairs]

    # ----------------------------------------------------------- maintenance
    def advance_all_counters(self, timestamp: float) -> None:
        """Column sweep: rotate every replica's windows to ``timestamp``."""
        if self.stats is not None:
            self.stats.advance_pool(timestamp)

    # ----------------------------------------------------------------- digest
    def state_digest(self) -> str:
        """Order-insensitive sha256 of the logical placement state.

        The sharded runner's cross-worker consistency audit: every worker
        replays the full system-event stream, so their placement tables must
        be logically identical at the end of the run.  Covers each user's
        sorted replica positions (with the per-slot routing columns) and the
        per-position ``used``/``capacity``/``admission`` counters — but *not*
        slot ids, chain layout or the free list, which are allocation-history
        artefacts, nor the tick dirty-set, which request traffic raises.
        """
        hasher = hashlib.sha256()
        user_next = self._user_next
        for user in sorted(self._user_head):
            rows = []
            slot = self._user_head[user]
            while slot != NO_SLOT:
                rows.append(
                    (
                        self._server[slot],
                        self._utility[slot],
                        self._write_proxy[slot],
                        self._next_closest[slot],
                    )
                )
                slot = user_next[slot]
            rows.sort()
            hasher.update(repr((user, rows)).encode())
        hasher.update(
            repr((self._used, self._capacity, self._admission, self._active)).encode()
        )
        if self.stats is not None:
            hasher.update(self.stats.state_digest().encode())
        return hasher.hexdigest()

    # ------------------------------------------------------------- integrity
    def check_integrity(self) -> None:
        """Validate the chain indexes, counters and free list.

        Raises :class:`~repro.exceptions.StorageError` on the first
        inconsistency; used by the property tests to audit random churn.
        """
        total_slots = len(self._user)
        seen: set[int] = set()
        # Position chains: doubly linked, counts match, server column agrees.
        for position in range(len(self._srv_head)):
            count = 0
            previous = NO_SLOT
            slot = self._srv_head[position]
            while slot != NO_SLOT:
                if slot in seen:
                    raise StorageError(f"slot {slot} linked twice")
                seen.add(slot)
                if self._server[slot] != position:
                    raise StorageError(f"slot {slot} chained under wrong position")
                if self._srv_prev[slot] != previous:
                    raise StorageError(f"slot {slot} has a broken prev link")
                previous = slot
                slot = self._srv_next[slot]
                count += 1
            if self._srv_tail[position] != previous:
                raise StorageError(f"position {position} has a broken tail")
            if count != self._used[position]:
                raise StorageError(
                    f"position {position} used counter {self._used[position]} != {count}"
                )
        if len(seen) != self._active:
            raise StorageError(f"active counter {self._active} != {len(seen)}")
        # User chains cover exactly the live slots.
        covered: set[int] = set()
        for user, head in self._user_head.items():
            slot = head
            if slot == NO_SLOT:
                raise StorageError(f"user {user} indexed with no replica")
            while slot != NO_SLOT:
                if slot in covered:
                    raise StorageError(f"slot {slot} in two user chains")
                covered.add(slot)
                if self._user[slot] != user:
                    raise StorageError(f"slot {slot} chained under wrong user")
                slot = self._user_next[slot]
        if covered != seen:
            raise StorageError("user chains and position chains disagree")
        # Free list covers exactly the remaining slots.
        free: set[int] = set()
        slot = self._free_head
        while slot != NO_SLOT:
            if slot in free or slot in seen:
                raise StorageError(f"slot {slot} both free and live")
            if self._server[slot] != NO_SLOT:
                raise StorageError(f"free slot {slot} still claims a position")
            free.add(slot)
            slot = self._user_next[slot]
        if len(free) + len(seen) != total_slots:
            raise StorageError(
                f"slot leak: {len(free)} free + {len(seen)} live != {total_slots}"
            )
        if len(self._tick_dirty) != len(self._srv_head):
            raise StorageError("tick-dirty column out of step with positions")
        # Statistics node pool: the free list and the allocation bitmap must
        # partition the pool, and free nodes must hold zeroed windows (the
        # invariant the batched tick sweep and ``advance_pool`` rely on to
        # skip them).
        stats = self.stats
        if stats is not None:
            free_nodes: set[int] = set()
            node = stats._node_free
            while node != NO_SLOT:
                if node in free_nodes:
                    raise StorageError(f"node {node} linked twice in the free list")
                if stats._node_alloc[node]:
                    raise StorageError(f"free node {node} flagged as allocated")
                if stats._node_total[node] != 0.0:
                    raise StorageError(f"free node {node} holds a nonzero total")
                free_nodes.add(node)
                node = stats._node_next[node]
            allocated = sum(stats._node_alloc)
            if allocated != stats._node_count:
                raise StorageError(
                    f"node count {stats._node_count} != bitmap total {allocated}"
                )
            if allocated + len(free_nodes) != len(stats._node_origin):
                raise StorageError(
                    f"node leak: {allocated} allocated + {len(free_nodes)} free "
                    f"!= {len(stats._node_origin)}"
                )


# ---------------------------------------------------------------------------
# Handles: the object façade over table slots
# ---------------------------------------------------------------------------
class StatsHandle:
    """``AccessStatistics``-compatible view of one slot's statistics columns."""

    __slots__ = ("table", "slot")

    def __init__(self, table: StatsTable, slot: int) -> None:
        self.table = table
        self.slot = slot

    @property
    def slots(self) -> int:
        return self.table.slots

    @property
    def period(self) -> float:
        return self.table.period

    def record_read(self, origin: int, timestamp: float, amount: float = 1.0) -> None:
        self.table.record_read(self.slot, origin, timestamp, amount)

    def record_write(self, timestamp: float, amount: float = 1.0) -> None:
        self.table.record_write(self.slot, timestamp, amount)

    def advance(self, timestamp: float) -> None:
        self.table.advance_slot(self.slot, timestamp)

    def reads_by_origin(self) -> dict[int, float]:
        # Fast path: Algorithms 1-3 query the same slot several times per
        # evaluated request, so serve cache hits without a second hop.  In
        # audit mode the table wraps results in an immutable proxy, so the
        # raw-dict shortcut must not bypass it.
        table = self.table
        if not table._readonly_views:
            cached = table._origins_cache.get(self.slot)
            if cached is not None:
                return cached
        return table.reads_by_origin(self.slot)

    def total_reads(self) -> float:
        return self.table.total_reads(self.slot)

    def total_writes(self) -> float:
        table = self.table
        node = table._write_node[self.slot]
        return table._node_total[node] if node != NO_SLOT else 0.0

    def reads_from(self, origin: int) -> float:
        return self.table.reads_from(self.slot, origin)

    def reads_since_last_evaluation(self) -> int:
        return self.table.reads_since_evaluation(self.slot)

    def mark_evaluated(self) -> None:
        self.table.mark_evaluated(self.slot)

    def copy(self):
        """Standalone ``AccessStatistics`` deep copy of this slot's windows."""
        return self.table.export(self.slot)

    def clear(self) -> None:
        self.table.reset_slot(self.slot)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StatsHandle(slot={self.slot}, reads={self.total_reads():.0f}, "
            f"writes={self.total_writes():.0f})"
        )


class ReplicaHandle:
    """``ViewReplica``-compatible view of one replica slot.

    Attribute reads and writes go straight to the table columns, so code
    written against the object model (the decision algorithms, tests, user
    code) keeps working on table-backed state.
    """

    __slots__ = ("table", "slot")

    def __init__(self, table: ReplicaTable, slot: int) -> None:
        self.table = table
        self.slot = slot

    # Identity: two handles to the same slot of the same table are equal.
    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ReplicaHandle)
            and other.table is self.table
            and other.slot == self.slot
        )

    def __hash__(self) -> int:
        return hash((id(self.table), self.slot))

    @property
    def user(self) -> int:
        return self.table._user[self.slot]

    @property
    def server(self) -> int:
        return self.table._server[self.slot]

    @property
    def stats(self) -> StatsHandle:
        stats = self.table.stats
        if stats is None:
            raise StorageError("this table does not track statistics")
        return StatsHandle(stats, self.slot)

    @property
    def utility(self) -> float:
        return self.table._utility[self.slot]

    @utility.setter
    def utility(self, value: float) -> None:
        table = self.table
        table._utility[self.slot] = value
        table._tick_dirty[table._server[self.slot]] = True

    @property
    def write_proxy_broker(self) -> int | None:
        value = self.table._write_proxy[self.slot]
        return None if value == NO_SLOT else value

    @write_proxy_broker.setter
    def write_proxy_broker(self, value: int | None) -> None:
        table = self.table
        table._write_proxy[self.slot] = NO_SLOT if value is None else value
        table._tick_dirty[table._server[self.slot]] = True

    @property
    def next_closest_replica(self) -> int | None:
        value = self.table._next_closest[self.slot]
        return None if value == NO_SLOT else value

    @next_closest_replica.setter
    def next_closest_replica(self, value: int | None) -> None:
        table = self.table
        table._next_closest[self.slot] = NO_SLOT if value is None else value
        table._tick_dirty[table._server[self.slot]] = True

    @property
    def is_sole_replica(self) -> bool:
        return self.table._next_closest[self.slot] == NO_SLOT

    def effective_utility(self) -> float:
        return self.table.effective_utility(self.slot)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReplicaHandle(slot={self.slot}, user={self.user}, server={self.server})"


__all__ = [
    "NO_SLOT",
    "ReplicaHandle",
    "ReplicaTable",
    "StatsHandle",
    "StatsTable",
    "pick_least_loaded",
    "rank_by_utilisation",
]
