"""Persistent store backing the in-memory cache (paper sections 2.1 and 3.3).

DynaSoRe follows the Facebook memcache architecture: a write is first
processed by the persistent store, which produces the new version of the
user's view and then notifies the in-memory store (the write proxy) to fetch
it.  The persistent store is the source of truth; the cache can always be
rebuilt from it after a crash.

This module implements that contract in process: views are materialised from
the write-ahead log, version numbers increase monotonically, and the cache
side pulls fresh copies through :meth:`PersistentStore.fetch_view`.
"""

from __future__ import annotations

from ..exceptions import PersistenceError
from ..store.view import Event, View
from .wal import WriteAheadLog


class PersistentStore:
    """Source-of-truth store for user views, backed by a write-ahead log."""

    def __init__(self, wal: WriteAheadLog | None = None, max_events_per_view: int = 100) -> None:
        # ``or`` would discard an *empty* log (it has len() == 0), so compare
        # against None explicitly.
        self.wal = wal if wal is not None else WriteAheadLog()
        self.max_events_per_view = max_events_per_view
        self._views: dict[int, View] = {}
        # Rebuild state from an existing log (recovery after restart).
        for record in self.wal.replay():
            if record.kind == "write":
                self._apply_write(record.user, record.timestamp, record.payload.encode())

    # ---------------------------------------------------------------- writes
    def process_write(self, user: int, timestamp: float, payload: bytes = b"") -> int:
        """Durably apply a user write and return the new view version.

        The record is appended to the write-ahead log *before* the in-memory
        view is updated, matching the paper's durability guarantee.
        """
        self.wal.append("write", user, timestamp, payload.decode(errors="ignore"))
        return self._apply_write(user, timestamp, payload)

    def _apply_write(self, user: int, timestamp: float, payload: bytes) -> int:
        view = self._views.get(user)
        if view is None:
            view = View(user=user, max_events=self.max_events_per_view)
            self._views[user] = view
        view.append(Event(producer=user, timestamp=timestamp, payload=payload))
        return view.version

    # ----------------------------------------------------------------- reads
    def fetch_view(self, user: int) -> View:
        """Return a copy of the current view of ``user`` (cache fill path)."""
        view = self._views.get(user)
        if view is None:
            # A user that never wrote still has an (empty) view.
            view = View(user=user, max_events=self.max_events_per_view)
            self._views[user] = view
        return view.copy()

    def current_version(self, user: int) -> int:
        """Version of the user's view (0 when the user never wrote)."""
        view = self._views.get(user)
        return view.version if view is not None else 0

    def has_view(self, user: int) -> bool:
        """True when the user has written at least once."""
        return user in self._views and self._views[user].version > 0

    def known_users(self) -> tuple[int, ...]:
        """Users with a materialised view."""
        return tuple(self._views)

    def verify_integrity(self) -> None:
        """Check that materialised versions match the write-ahead log."""
        counts: dict[int, int] = {}
        for record in self.wal.replay():
            if record.kind == "write":
                counts[record.user] = counts.get(record.user, 0) + 1
        for user, expected in counts.items():
            actual = self.current_version(user)
            if actual != expected:
                raise PersistenceError(
                    f"view {user} has version {actual}, write-ahead log says {expected}"
                )


__all__ = ["PersistentStore"]
