"""Write-ahead log used for durability (paper section 3.3).

The paper relies on a high-performance disk-based write-ahead log (such as
BookKeeper) to persist writes before they reach the in-memory store and to
make the broker/proxy configuration recoverable.  This module implements the
same contract: append-only records, sequence numbers, replay from a given
sequence number, and optional on-disk persistence so recovery can be
exercised end to end in the examples and tests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..exceptions import PersistenceError


@dataclass(frozen=True)
class LogRecord:
    """One durable record: a user write or a configuration change."""

    sequence: int
    timestamp: float
    kind: str
    user: int
    payload: str = ""

    def to_json(self) -> str:
        """Serialise the record as a single JSON line."""
        return json.dumps(
            {
                "sequence": self.sequence,
                "timestamp": self.timestamp,
                "kind": self.kind,
                "user": self.user,
                "payload": self.payload,
            },
            separators=(",", ":"),
        )

    @staticmethod
    def from_json(line: str) -> "LogRecord":
        """Parse a record from its JSON representation."""
        try:
            data = json.loads(line)
            return LogRecord(
                sequence=int(data["sequence"]),
                timestamp=float(data["timestamp"]),
                kind=str(data["kind"]),
                user=int(data["user"]),
                payload=str(data.get("payload", "")),
            )
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            raise PersistenceError(f"corrupt log record: {line!r}") from exc


class WriteAheadLog:
    """Append-only durable log with sequence numbers and replay."""

    def __init__(self, path: str | Path | None = None) -> None:
        self._records: list[LogRecord] = []
        self._path = Path(path) if path is not None else None
        self._next_sequence = 0
        if self._path is not None and self._path.exists():
            self._load()

    # -------------------------------------------------------------- appending
    def append(self, kind: str, user: int, timestamp: float, payload: str = "") -> LogRecord:
        """Durably append a record and return it."""
        record = LogRecord(
            sequence=self._next_sequence,
            timestamp=timestamp,
            kind=kind,
            user=user,
            payload=payload,
        )
        self._records.append(record)
        self._next_sequence += 1
        if self._path is not None:
            with self._path.open("a", encoding="utf-8") as handle:
                handle.write(record.to_json() + "\n")
        return record

    # ---------------------------------------------------------------- replay
    def replay(self, from_sequence: int = 0) -> list[LogRecord]:
        """Records with sequence number ≥ ``from_sequence``, in order."""
        return [record for record in self._records if record.sequence >= from_sequence]

    def last_sequence(self) -> int:
        """Sequence number of the most recent record, -1 when empty."""
        return self._next_sequence - 1

    def __len__(self) -> int:
        return len(self._records)

    def truncate(self, up_to_sequence: int) -> int:
        """Drop records with sequence < ``up_to_sequence`` (checkpointing).

        Returns the number of records dropped.  The on-disk file, if any, is
        rewritten to match.
        """
        before = len(self._records)
        self._records = [r for r in self._records if r.sequence >= up_to_sequence]
        if self._path is not None:
            with self._path.open("w", encoding="utf-8") as handle:
                for record in self._records:
                    handle.write(record.to_json() + "\n")
        return before - len(self._records)

    def _load(self) -> None:
        assert self._path is not None
        with self._path.open("r", encoding="utf-8") as handle:
            for line in handle:
                stripped = line.strip()
                if not stripped:
                    continue
                record = LogRecord.from_json(stripped)
                self._records.append(record)
        if self._records:
            self._next_sequence = self._records[-1].sequence + 1


__all__ = ["LogRecord", "WriteAheadLog"]
