"""Durability substrate: write-ahead log, persistent store and recovery."""

from .backend import PersistentStore
from .recovery import RecoveryPlan, execute_recovery, plan_recovery
from .wal import LogRecord, WriteAheadLog

__all__ = [
    "LogRecord",
    "PersistentStore",
    "RecoveryPlan",
    "WriteAheadLog",
    "execute_recovery",
    "plan_recovery",
]
