"""Crash recovery of storage servers (paper sections 2.2 and 3.3).

When a DynaSoRe server crashes, its views can be recovered in two ways:

* views that were replicated on other servers are still readily available in
  memory (fast path, no cache miss);
* views whose only replica was on the crashed server must be fetched from the
  persistent store (slow path).

This module implements the recovery planner and executor used by the
fault-tolerance example and tests.  It operates on the same replica-location
map the placement strategies maintain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import PersistenceError
from .backend import PersistentStore


@dataclass
class RecoveryPlan:
    """What must happen to recover from the crash of one server."""

    crashed_server: int
    #: Views recoverable from surviving in-memory replicas.
    recoverable_from_memory: list[int] = field(default_factory=list)
    #: Views that must be re-fetched from the persistent store.
    recoverable_from_disk: list[int] = field(default_factory=list)

    @property
    def total_views(self) -> int:
        """Number of views that lived on the crashed server."""
        return len(self.recoverable_from_memory) + len(self.recoverable_from_disk)

    @property
    def memory_recovery_fraction(self) -> float:
        """Fraction of views recoverable without touching the disk store."""
        if self.total_views == 0:
            return 1.0
        return len(self.recoverable_from_memory) / self.total_views


def plan_recovery(
    crashed_server: int,
    replica_locations: dict[int, set[int]],
) -> RecoveryPlan:
    """Build a recovery plan from the current replica-location map.

    ``replica_locations`` maps each user to the set of servers storing her
    view (including the crashed one).
    """
    plan = RecoveryPlan(crashed_server=crashed_server)
    for user, servers in replica_locations.items():
        if crashed_server not in servers:
            continue
        survivors = servers - {crashed_server}
        if survivors:
            plan.recoverable_from_memory.append(user)
        else:
            plan.recoverable_from_disk.append(user)
    return plan


def execute_recovery(
    plan: RecoveryPlan,
    replica_locations: dict[int, set[int]],
    target_servers: dict[int, int],
    persistent_store: PersistentStore | None = None,
) -> dict[int, int]:
    """Apply a recovery plan to the replica-location map.

    ``target_servers`` maps each lost view to the server that will host its
    recovered replica.  Views recovered from disk require a persistent store.
    Returns the mapping of recovered views to their new servers.
    """
    recovered: dict[int, int] = {}
    for user in plan.recoverable_from_memory + plan.recoverable_from_disk:
        if user not in target_servers:
            raise PersistenceError(f"no target server chosen for view {user}")
    for user in plan.recoverable_from_disk:
        if persistent_store is None:
            raise PersistenceError(
                "views with a single replica require the persistent store to recover"
            )
        # Touch the persistent store so the fetch is exercised (and would be
        # counted by callers interested in recovery traffic).
        persistent_store.fetch_view(user)
    for user in plan.recoverable_from_memory + plan.recoverable_from_disk:
        servers = replica_locations.setdefault(user, set())
        servers.discard(plan.crashed_server)
        servers.add(target_servers[user])
        recovered[user] = target_servers[user]
    return recovered


__all__ = ["RecoveryPlan", "execute_recovery", "plan_recovery"]
