"""Trace-driven cluster simulator."""

from .clock import SimulationClock
from .engine import ClusterSimulator
from .results import FaultRecord, ReplicaTimeline, SimulationResult
from .runner import StrategyFactory, normalise_results, run_comparison, run_simulation
from .shard import (
    ShardHeartbeat,
    ShardLoadSummary,
    ShardMaterials,
    ShardRunReport,
    materials_from_spec,
    run_sharded,
    run_sharded_detailed,
    run_spec_sharded,
)

__all__ = [
    "ClusterSimulator",
    "FaultRecord",
    "ReplicaTimeline",
    "ShardHeartbeat",
    "ShardLoadSummary",
    "ShardMaterials",
    "ShardRunReport",
    "SimulationClock",
    "SimulationResult",
    "StrategyFactory",
    "materials_from_spec",
    "normalise_results",
    "run_comparison",
    "run_sharded",
    "run_sharded_detailed",
    "run_spec_sharded",
    "run_simulation",
]
