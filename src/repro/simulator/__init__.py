"""Trace-driven cluster simulator."""

from .clock import SimulationClock
from .engine import ClusterSimulator
from .results import FaultRecord, ReplicaTimeline, SimulationResult
from .runner import StrategyFactory, normalise_results, run_comparison, run_simulation

__all__ = [
    "ClusterSimulator",
    "FaultRecord",
    "ReplicaTimeline",
    "SimulationClock",
    "SimulationResult",
    "StrategyFactory",
    "normalise_results",
    "run_comparison",
    "run_simulation",
]
