"""Trace-driven cluster simulator."""

from .clock import SimulationClock
from .engine import ClusterSimulator
from .results import ReplicaTimeline, SimulationResult
from .runner import StrategyFactory, normalise_results, run_comparison, run_simulation

__all__ = [
    "ClusterSimulator",
    "ReplicaTimeline",
    "SimulationClock",
    "SimulationResult",
    "StrategyFactory",
    "normalise_results",
    "run_comparison",
    "run_simulation",
]
