"""Sharded multi-process replay of a single simulation.

The parallel runtime (PR 2) only parallelises *across* runs; this module
spends the columnar streams, array-backed tables and batch kernels on
parallelism *inside* one run.  One worker process per shard replays the
workload through its own :class:`~repro.simulator.engine.ClusterSimulator`;
a coordinator spawns the workers, relays their heartbeats, audits their
final placement state and merges their traffic deltas into one
:class:`~repro.simulator.results.SimulationResult` that is **byte-identical**
to the single-process batched path.

Two execution modes, chosen per strategy:

**Partitioned** (static baselines, SPAR — ``shard_requests_pure``).
    The decision plane is *replicated*: every worker applies every edge
    mutation, fault burst and maintenance tick, so placement state evolves
    identically everywhere (no cross-shard read protocol is needed — the
    resolution of any read is locally computable in every worker, and the
    coordinator audits the invariant with placement digests).  The
    measurement plane is *partitioned*: users are assigned to shards by the
    k-way graph partitioner (:func:`repro.partitioning.assign_user_shards`),
    and each worker executes only the read/write events its shard owns,
    muting the accountant around non-owned system events so the merged
    traffic counts every message exactly once.  All traffic volumes are
    integer-valued floats, so summing per-shard delta columns is exact.

    Partitioning is only sound over a **closed user universe** — every
    event must reference users of the initial graph, otherwise lazy
    placement could fire request-order-dependently.  Workers guard this per
    chunk at C speed and raise
    :class:`~repro.exceptions.ShardFallbackError` *before* the offending
    chunk executes; the coordinator then aborts the fleet and transparently
    restarts in replicated mode.

**Replicated** (DynaSoRe, open universes, custom strategies).
    One worker runs the standard single-process path.  DynaSoRe's reads
    mutate per-replica statistics and drive the Algorithm 2/3 placement
    decisions, so an exact intra-run partitioning of its request stream
    does not exist — any split would starve every worker of the statistics
    the others accumulated.  Falling back keeps the engine's contract
    unconditional: ``run_sharded`` is byte-identical for *all* strategies,
    and faster for the pure ones.

Workers are schedule-independent by construction — no worker ever waits on
another — so the coordinator may run them in waves (``max_workers``) on
oversubscribed machines, and per-shard CPU time measures the true critical
path of the partitioned run.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import time
import traceback
from collections.abc import Callable
from dataclasses import dataclass, field, replace
from queue import Empty
from typing import TYPE_CHECKING

from ..exceptions import ShardFallbackError, SimulationError
from ..partitioning.sharding import ShardAssignment, assign_user_shards
from ..traffic.accounting import TrafficAccountant, TrafficDelta
from .engine import UNOWNED, ClusterSimulator
from .results import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import SimulationConfig
    from ..runtime.spec import RunSpec

__all__ = [
    "ShardContext",
    "ShardHeartbeat",
    "ShardLoadSummary",
    "ShardMaterials",
    "ShardOutcome",
    "ShardRunReport",
    "materials_from_spec",
    "placement_digest",
    "run_sharded",
    "run_sharded_detailed",
    "run_spec_sharded",
]


# ---------------------------------------------------------------------------
# Worker-side data shapes
# ---------------------------------------------------------------------------
@dataclass
class ShardContext:
    """What one worker's simulator needs to know about the sharded run.

    ``owner_map`` is a dense ``bytes`` indexed by user id whose values are
    shard ids; the :data:`~repro.simulator.engine.UNOWNED` sentinel marks
    ids outside the initial social graph (the partitioned loop's
    closed-universe guard).  ``heartbeat`` is called once per replayed chunk
    with ``(events_done, sim_time)``.
    """

    shard_id: int
    shards: int
    partitioned: bool
    owner_map: bytes = b""
    heartbeat: Callable[[int, float], None] | None = None


@dataclass
class ShardMaterials:
    """Factories every worker rebuilds its simulation from.

    Workers *rebuild* rather than unpickle live objects: a pickled
    ``SocialGraph`` could replay its set-backed adjacency with a different
    iteration order than the original (set order depends on insertion
    history, which pickling discards), and iteration order feeds seeded
    placement decisions.  Fresh builds share the full insertion history and
    are therefore bit-for-bit deterministic across processes.

    Under the ``fork`` start method the factories may be closures; on
    spawn-only platforms they must be picklable (module-level callables or
    ``functools.partial`` over picklable data, as
    :func:`materials_from_spec` produces).
    """

    topology_factory: Callable[[], object]
    graph_factory: Callable[[], object]
    strategy_factory: Callable[[], object]
    #: ``stream_factory(graph) -> EventStream`` — generators need the graph.
    stream_factory: Callable[[object], object]
    config: "SimulationConfig"
    scenario_factory: Callable[[], object] | None = None
    #: ``activity_factory(graph) -> ActivityProfile | mapping | None`` —
    #: per-user expected request rates fed to the shard partitioner so it
    #: balances expected *work* instead of user count.  ``None`` (or a
    #: factory returning ``None``) keeps population balancing.  Only the
    #: coordinator calls this; workers never see it.
    activity_factory: Callable[[object], object] | None = None


@dataclass
class ShardOutcome:
    """Everything one worker reports back to the coordinator."""

    shard_id: int
    #: The worker's own :class:`SimulationResult` — partial traffic in
    #: partitioned mode, the final answer in replicated/single mode.
    result: SimulationResult
    #: Traffic delta to merge (partitioned mode only).
    delta: TrafficDelta | None = None
    #: Placement-state digest for the cross-worker consistency audit
    #: (partitioned mode only; ``None`` when the strategy exposes no
    #: digestible placement state).
    digest: str | None = None
    #: CPU seconds this worker's process spent — the per-shard cost used by
    #: the critical-path throughput projection on core-starved machines.
    cpu_seconds: float = 0.0
    wall_seconds: float = 0.0


@dataclass
class ShardHeartbeat:
    """One liveness report from a shard worker, relayed to the progress
    callback so multi-minute sharded runs never look hung."""

    shard_id: int
    shards: int
    mode: str
    events_done: int
    sim_time: float
    wall_elapsed: float
    #: Estimated wall seconds remaining (None without a sim-time horizon).
    eta_seconds: float | None = None

    def describe(self) -> str:
        """Human-readable one-liner for progress displays."""
        eta = f", eta {self.eta_seconds:.0f}s" if self.eta_seconds is not None else ""
        return (
            f"shard {self.shard_id + 1}/{self.shards} [{self.mode}]: "
            f"{self.events_done} events, sim t={self.sim_time:.0f}s, "
            f"{self.wall_elapsed:.1f}s elapsed{eta}"
        )


@dataclass
class ShardLoadSummary:
    """Expected vs. actual per-shard load of one partitioned run.

    Emitted once through the progress callback after the merge, and attached
    to the :class:`ShardRunReport`, so users can see whether the activity
    profile predicted where the CPU actually went.  Shares are fractions of
    the fleet total; imbalances are ``max share x shards`` (1.0 = the
    critical-path worker carries exactly its fair share).
    """

    shards: int
    #: Expected load share per shard — activity-weighted when the partition
    #: was, population share otherwise.
    expected_shares: tuple[float, ...]
    #: Measured CPU-seconds share per shard.
    cpu_shares: tuple[float, ...]
    #: ``"activity"`` or ``"population"`` — what the partitioner balanced.
    balanced_by: str

    @staticmethod
    def _imbalance(shares: tuple[float, ...]) -> float:
        return max(shares) * len(shares) if shares else 1.0

    @property
    def expected_imbalance(self) -> float:
        return self._imbalance(self.expected_shares)

    @property
    def cpu_imbalance(self) -> float:
        return self._imbalance(self.cpu_shares)

    def describe(self) -> str:
        """Human-readable one-liner for progress displays."""
        expected = "/".join(f"{share:.0%}" for share in self.expected_shares)
        actual = "/".join(f"{share:.0%}" for share in self.cpu_shares)
        return (
            f"shard load [{self.balanced_by}-balanced]: cpu imbalance "
            f"{self.cpu_imbalance:.2f}x (expected {self.expected_imbalance:.2f}x); "
            f"per-shard cpu {actual} vs expected {expected}"
        )


@dataclass
class ShardRunReport:
    """Detailed outcome of :func:`run_sharded_detailed`."""

    result: SimulationResult
    #: ``"partitioned"``, ``"replicated"`` or ``"single"`` (``shards == 1``).
    mode: str
    shards: int
    outcomes: list[ShardOutcome] = field(default_factory=list)
    #: Why a partitioned attempt degraded to replicated execution, if it did.
    fallback_reason: str | None = None
    #: The user → shard assignment of a partitioned run.
    assignment: ShardAssignment | None = None
    #: Expected vs. actual per-shard load (partitioned runs only).
    load_summary: ShardLoadSummary | None = None

    @property
    def critical_path_cpu_seconds(self) -> float:
        """CPU seconds of the slowest shard — the partitioned run's lower
        bound on wall time given one core per worker."""
        return max((o.cpu_seconds for o in self.outcomes), default=0.0)


# ---------------------------------------------------------------------------
# Worker execution
# ---------------------------------------------------------------------------
def placement_digest(strategy) -> str | None:
    """Digest of a strategy's placement state for the cross-worker audit.

    Covers the array-backed placement tables (replicas, stats, counters)
    and the dict-based assignment state of the static baselines and SPAR.
    Returns ``None`` for strategies exposing none of those — the audit is
    then skipped rather than failed.
    """
    hasher = hashlib.sha256()
    seen = False
    tables = getattr(strategy, "tables", None)
    if tables is not None and hasattr(tables, "state_digest"):
        hasher.update(tables.state_digest().encode())
        seen = True
    assignment = getattr(strategy, "_assignment", None)
    if isinstance(assignment, dict):
        hasher.update(repr(sorted(assignment.items())).encode())
        load = getattr(strategy, "_load", None)
        if load is not None:
            hasher.update(repr(list(load)).encode())
        seen = True
    master = getattr(strategy, "_master", None)
    if isinstance(master, dict):
        hasher.update(repr(sorted(master.items())).encode())
        seen = True
    return hasher.hexdigest() if seen else None


def _execute_shard(
    shard_id: int,
    shards: int,
    partitioned: bool,
    owner_map: bytes,
    materials: ShardMaterials,
    heartbeat: Callable[[int, float], None] | None = None,
) -> ShardOutcome:
    """Build one shard's simulation from the materials and replay it."""
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    graph = materials.graph_factory()
    topology = materials.topology_factory()
    strategy = materials.strategy_factory()
    scenario = (
        materials.scenario_factory() if materials.scenario_factory is not None else None
    )
    stream = materials.stream_factory(graph)
    context = ShardContext(
        shard_id=shard_id,
        shards=shards,
        partitioned=partitioned,
        owner_map=owner_map,
        heartbeat=heartbeat,
    )
    simulator = ClusterSimulator(
        topology,
        graph,
        strategy,
        config=materials.config,
        scenario=scenario,
        shard_context=context,
    )
    result = simulator.run(stream)
    return ShardOutcome(
        shard_id=shard_id,
        result=result,
        delta=simulator.accountant.export_delta() if partitioned else None,
        digest=placement_digest(strategy) if partitioned else None,
        cpu_seconds=time.process_time() - cpu_start,
        wall_seconds=time.perf_counter() - wall_start,
    )


def _shard_worker(
    channel,
    shard_id: int,
    shards: int,
    owner_map: bytes,
    materials: ShardMaterials,
    heartbeat_interval: float,
) -> None:
    """Worker process entry point: replay one partitioned shard.

    Reports over ``channel`` (a multiprocessing queue) with tagged tuples:
    ``("hb", shard_id, events_done, sim_time, wall_elapsed)`` while running,
    then exactly one of ``("done", shard_id, ShardOutcome)``,
    ``("fallback", shard_id, reason)`` or ``("error", shard_id, traceback)``.
    """
    wall_start = time.perf_counter()
    last_beat = wall_start

    def heartbeat(events_done: int, sim_time: float) -> None:
        nonlocal last_beat
        now = time.perf_counter()
        if now - last_beat >= heartbeat_interval:
            last_beat = now
            channel.put(("hb", shard_id, events_done, sim_time, now - wall_start))

    try:
        outcome = _execute_shard(
            shard_id, shards, True, owner_map, materials, heartbeat
        )
        channel.put(("done", shard_id, outcome))
    except ShardFallbackError as exc:
        channel.put(("fallback", shard_id, str(exc)))
    except BaseException:  # noqa: BLE001 - relayed to the coordinator
        channel.put(("error", shard_id, traceback.format_exc()))


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------
def _mp_context():
    """Prefer ``fork`` (factories may be closures; no re-import cost)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def _eta(horizon: float | None, sim_time: float, wall_elapsed: float) -> float | None:
    if horizon is None or sim_time <= 0 or horizon <= sim_time:
        return None
    return wall_elapsed * (horizon - sim_time) / sim_time


def _local_heartbeat(
    progress,
    shard_id: int,
    shards: int,
    mode: str,
    interval: float,
    horizon: float | None,
):
    """In-process heartbeat adapter for single/replicated execution."""
    if progress is None:
        return None
    started = time.perf_counter()
    last = [started]

    def emit(events_done: int, sim_time: float) -> None:
        now = time.perf_counter()
        if now - last[0] < interval:
            return
        last[0] = now
        elapsed = now - started
        progress(
            ShardHeartbeat(
                shard_id=shard_id,
                shards=shards,
                mode=mode,
                events_done=events_done,
                sim_time=sim_time,
                wall_elapsed=elapsed,
                eta_seconds=_eta(horizon, sim_time, elapsed),
            )
        )

    return emit


def _build_owner_map(graph, assignment: ShardAssignment) -> bytes:
    """Dense owner bytes with the :data:`UNOWNED` sentinel in every hole.

    The engine's closed-universe guard keys off the sentinel: any event
    touching a user id the initial graph never contained must trigger the
    replicated fallback, *including* ids inside the map's range that the
    graph simply skipped.
    """
    owner_map = bytearray([UNOWNED] * len(assignment.shard_map))
    shard_map = assignment.shard_map
    for user in graph.users:
        owner_map[user] = shard_map[user]
    return bytes(owner_map)


def _run_partitioned(
    materials: ShardMaterials,
    shards: int,
    owner_map: bytes,
    max_workers: int,
    progress,
    heartbeat_interval: float,
    horizon: float | None,
) -> tuple[dict[int, ShardOutcome] | None, str | None]:
    """Run the worker fleet; returns ``(outcomes, fallback_reason)``.

    ``outcomes`` is ``None`` exactly when a worker hit the closed-universe
    guard and the whole run must restart replicated.  Worker errors raise.
    """
    context = _mp_context()
    channel = context.Queue()
    pending = list(range(shards))
    running: dict[int, multiprocessing.Process] = {}
    outcomes: dict[int, ShardOutcome] = {}
    fallback: str | None = None
    failure: str | None = None
    try:
        while (pending or running) and fallback is None and failure is None:
            while pending and len(running) < max_workers:
                shard_id = pending.pop(0)
                process = context.Process(
                    target=_shard_worker,
                    args=(
                        channel,
                        shard_id,
                        shards,
                        owner_map,
                        materials,
                        heartbeat_interval,
                    ),
                    daemon=True,
                )
                process.start()
                running[shard_id] = process
            try:
                message = channel.get(timeout=0.5)
            except Empty:
                dead = [s for s, p in running.items() if not p.is_alive()]
                if not dead:
                    continue
                # A worker exited: give its queue feeder one grace window to
                # deliver the final message before declaring it lost.
                try:
                    message = channel.get(timeout=2.0)
                except Empty:
                    shard_id = dead[0]
                    code = running[shard_id].exitcode
                    failure = (
                        f"shard worker {shard_id} died without reporting "
                        f"(exit code {code})"
                    )
                    break
            tag = message[0]
            if tag == "hb":
                _, shard_id, events_done, sim_time, wall_elapsed = message
                if progress is not None:
                    progress(
                        ShardHeartbeat(
                            shard_id=shard_id,
                            shards=shards,
                            mode="partitioned",
                            events_done=events_done,
                            sim_time=sim_time,
                            wall_elapsed=wall_elapsed,
                            eta_seconds=_eta(horizon, sim_time, wall_elapsed),
                        )
                    )
            elif tag == "done":
                _, shard_id, outcome = message
                outcomes[shard_id] = outcome
                process = running.pop(shard_id)
                process.join()
            elif tag == "fallback":
                fallback = message[2]
            else:  # "error"
                failure = message[2]
    finally:
        for process in running.values():
            if process.is_alive():
                process.terminate()
            process.join()
        channel.close()
    if failure is not None:
        raise SimulationError(f"shard worker failed:\n{failure}")
    if fallback is not None:
        return None, fallback
    return outcomes, None


def _merge_partitioned(
    outcomes: dict[int, ShardOutcome],
    shards: int,
    topology,
    config: "SimulationConfig",
) -> SimulationResult:
    """Exact merge of the workers' partial results.

    Shard 0's result supplies every replicated field (all workers iterate
    the full event stream and hold identical placement state): executed
    counts and duration, replication factor, memory in use, fault records,
    unavailable views.  The partitioned fields are summed: owned read/write
    counts, and the traffic delta columns merged through a fresh
    coordinator accountant — whose ``snapshot()``/``top_switch_series()``
    construct the exported dicts exactly like a single-process run's
    accountant would, keeping the result byte-identical.
    """
    ordered = [outcomes[shard_id] for shard_id in range(shards)]
    digests = {o.digest for o in ordered if o.digest is not None}
    if len(digests) > 1:
        raise SimulationError(
            "placement state diverged across shard workers — the replicated "
            "decision plane invariant is broken (digest mismatch)"
        )
    accountant = TrafficAccountant(
        topology,
        bucket_width=config.bucket_width,
        measure_from=config.measure_from,
    )
    for outcome in ordered:
        if outcome.delta is None:  # pragma: no cover - defensive
            raise SimulationError("partitioned worker returned no traffic delta")
        accountant.merge_delta(outcome.delta)
    application_series, system_series = accountant.top_switch_series()
    base = ordered[0].result
    return replace(
        base,
        reads_executed=sum(o.result.reads_executed for o in ordered),
        writes_executed=sum(o.result.writes_executed for o in ordered),
        snapshot=accountant.snapshot(),
        top_series_application=application_series,
        top_series_system=system_series,
    )


def _load_summary(
    assignment: ShardAssignment, outcomes: list[ShardOutcome]
) -> "ShardLoadSummary | None":
    """Expected vs. actual load shares of a completed partitioned fleet."""
    if assignment.weighted_populations is not None:
        expected_raw: tuple[float, ...] = assignment.weighted_populations
        balanced_by = "activity"
    else:
        expected_raw = tuple(float(p) for p in assignment.populations)
        balanced_by = "population"
    expected_total = sum(expected_raw)
    cpu_raw = tuple(outcome.cpu_seconds for outcome in outcomes)
    cpu_total = sum(cpu_raw)
    if expected_total <= 0 or cpu_total <= 0:
        return None
    return ShardLoadSummary(
        shards=assignment.shards,
        expected_shares=tuple(value / expected_total for value in expected_raw),
        cpu_shares=tuple(value / cpu_total for value in cpu_raw),
        balanced_by=balanced_by,
    )


def run_sharded_detailed(
    materials: ShardMaterials,
    shards: int,
    *,
    seed: int = 7,
    max_workers: int | None = None,
    progress: Callable[[ShardHeartbeat], None] | None = None,
    heartbeat_interval: float = 2.0,
    horizon: float | None = None,
) -> ShardRunReport:
    """Replay one simulation across ``shards`` workers; full report.

    ``max_workers`` bounds how many worker processes run concurrently
    (default: all shards at once).  Workers never wait on each other, so
    waves change wall time but nothing else — schedule independence is a
    design property the parity tests assert.  ``horizon`` (simulated
    seconds the workload spans) enables per-shard ETA estimates in the
    heartbeats; ``seed`` drives the user → shard partitioner.
    """
    if shards < 1:
        raise SimulationError("shards must be at least 1")
    if max_workers is None:
        max_workers = shards
    if max_workers < 1:
        raise SimulationError("max_workers must be at least 1")
    if shards == 1:
        emit = _local_heartbeat(progress, 0, 1, "single", heartbeat_interval, horizon)
        outcome = _execute_shard(0, 1, False, b"", materials, emit)
        return ShardRunReport(
            result=outcome.result, mode="single", shards=1, outcomes=[outcome]
        )

    probe = materials.strategy_factory()
    pure = bool(getattr(type(probe), "shard_requests_pure", False))
    fallback_reason: str | None = None
    assignment: ShardAssignment | None = None

    if pure and shards <= 255 and materials.config.batch_replay:
        graph = materials.graph_factory()
        topology = materials.topology_factory()
        activity = (
            materials.activity_factory(graph)
            if materials.activity_factory is not None
            else None
        )
        assignment = assign_user_shards(graph, shards, seed=seed, activity=activity)
        owner_map = _build_owner_map(graph, assignment)
        outcomes, fallback_reason = _run_partitioned(
            materials,
            shards,
            owner_map,
            max_workers,
            progress,
            heartbeat_interval,
            horizon,
        )
        if outcomes is not None:
            result = _merge_partitioned(outcomes, shards, topology, materials.config)
            summary = _load_summary(assignment, [outcomes[s] for s in range(shards)])
            if progress is not None and summary is not None:
                progress(summary)
            return ShardRunReport(
                result=result,
                mode="partitioned",
                shards=shards,
                outcomes=[outcomes[s] for s in range(shards)],
                assignment=assignment,
                load_summary=summary,
            )
    elif not pure:
        fallback_reason = (
            f"strategy {probe.name!r} feeds requests back into placement "
            "(shard_requests_pure=False); partitioned execution would not be "
            "exact"
        )
    elif shards > 255:
        fallback_reason = "partitioned mode supports at most 255 shards"
    else:
        fallback_reason = "batch_replay=False forces the per-event path"

    emit = _local_heartbeat(
        progress, 0, shards, "replicated", heartbeat_interval, horizon
    )
    outcome = _execute_shard(0, shards, False, b"", materials, emit)
    return ShardRunReport(
        result=outcome.result,
        mode="replicated",
        shards=shards,
        outcomes=[outcome],
        fallback_reason=fallback_reason,
        assignment=assignment,
    )


def run_sharded(
    materials: ShardMaterials,
    shards: int,
    **kwargs,
) -> SimulationResult:
    """Replay one simulation across ``shards`` workers; result only."""
    return run_sharded_detailed(materials, shards, **kwargs).result


# ---------------------------------------------------------------------------
# RunSpec integration
# ---------------------------------------------------------------------------
def _spec_stream(workload_spec, graph):
    """Build a spec's stream, rejecting workloads that must track views."""
    stream, tracked = workload_spec.build_stream(graph)
    if tracked:
        raise SimulationError(
            "sharded replay cannot sample tracked views (flash workloads "
            "need the per-event loop); run with shards=1"
        )
    return stream


def _spec_activity(workload_spec, graph):
    """Activity profile of a spec's workload (module-level: spawn-picklable)."""
    from ..workload.activity import activity_for_spec

    return activity_for_spec(workload_spec, graph)


def materials_from_spec(spec: "RunSpec") -> ShardMaterials:
    """Picklable (spawn-safe) shard materials for a declarative run spec."""
    from functools import partial

    from ..runtime.spec import build_strategy

    if spec.tracked_views:
        raise SimulationError(
            "sharded replay cannot sample tracked views; run with shards=1"
        )
    return ShardMaterials(
        topology_factory=spec.topology.build,
        graph_factory=spec.graph.build,
        strategy_factory=partial(
            build_strategy,
            spec.strategy,
            spec.effective_strategy_seed(),
            spec.dynasore_config,
        ),
        stream_factory=partial(_spec_stream, spec.workload),
        config=spec.config,
        scenario_factory=spec.scenario.build if spec.scenario is not None else None,
        activity_factory=(
            partial(_spec_activity, spec.workload)
            if getattr(spec, "shard_activity", True)
            else None
        ),
    )


def run_spec_sharded(
    spec: "RunSpec",
    shards: int | None = None,
    **kwargs,
) -> SimulationResult:
    """Execute a :class:`RunSpec` through the sharded engine.

    ``shards`` defaults to the spec's own ``shards`` field.  The horizon
    for heartbeat ETAs is derived from the workload's day span when the
    caller does not pass one.
    """
    from ..constants import DAY

    if shards is None:
        shards = getattr(spec, "shards", 1)
    if "horizon" not in kwargs and spec.workload.days > 0:
        kwargs["horizon"] = spec.workload.days * DAY
    return run_sharded(materials_from_spec(spec), shards, **kwargs)
