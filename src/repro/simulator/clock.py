"""Simulation clock helpers.

The trace-driven simulator advances time by replaying timestamped requests;
the clock tracks the current simulated time and decides when periodic
maintenance ticks (counter rotation, threshold updates, eviction sweeps) are
due.
"""

from __future__ import annotations

from ..constants import DAY, HOUR
from ..exceptions import SimulationError


class SimulationClock:
    """Monotonic simulated clock with periodic tick scheduling."""

    def __init__(self, tick_period: float = HOUR, start_time: float = 0.0) -> None:
        if tick_period <= 0:
            raise SimulationError("tick_period must be positive")
        self.tick_period = tick_period
        self._now = start_time
        self._next_tick = (int(start_time // tick_period) + 1) * tick_period

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def current_day(self) -> float:
        """Current simulated time in days."""
        return self._now / DAY

    def advance_to(self, timestamp: float) -> list[float]:
        """Advance the clock to ``timestamp``.

        Returns the times of every maintenance tick that became due while
        advancing (possibly empty).  Time never goes backwards: earlier
        timestamps leave the clock untouched.
        """
        if timestamp < self._now:
            return []
        due: list[float] = []
        while self._next_tick <= timestamp:
            due.append(self._next_tick)
            self._next_tick += self.tick_period
        self._now = timestamp
        return due

    def pending_tick(self) -> float:
        """Time of the next scheduled maintenance tick."""
        return self._next_tick


__all__ = ["SimulationClock"]
