"""Convenience wrappers to run one or several strategies on a scenario.

The experiment harness repeatedly needs the same operation: given a social
graph, a request log, a topology and a memory budget, run a set of strategies
and normalise their traffic against the Random baseline.  These helpers keep
that orchestration in one place.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from ..baselines.base import PlacementStrategy
from ..config import SimulationConfig
from ..socialgraph.graph import SocialGraph
from ..topology.base import ClusterTopology
from ..workload.requests import RequestLog
from .engine import ClusterSimulator
from .results import SimulationResult

#: A strategy factory: builds a fresh, unbound strategy instance per run.
StrategyFactory = Callable[[], PlacementStrategy]


def run_simulation(
    topology_factory: Callable[[], ClusterTopology],
    graph_factory: Callable[[], SocialGraph],
    strategy_factory: StrategyFactory,
    log: RequestLog,
    config: SimulationConfig,
    tracked_views: tuple[int, ...] = (),
) -> SimulationResult:
    """Run one strategy on a fresh topology/graph pair and return the result.

    Topology and graph are rebuilt per run because strategies mutate the
    graph (edge events) and attach state to the topology-derived structures;
    rebuilding guarantees runs are independent and comparable.
    """
    topology = topology_factory()
    graph = graph_factory()
    simulator = ClusterSimulator(topology, graph, strategy_factory(), config)
    for user in tracked_views:
        simulator.track_view(user)
    return simulator.run(log)


def run_comparison(
    topology_factory: Callable[[], ClusterTopology],
    graph_factory: Callable[[], SocialGraph],
    strategies: Mapping[str, StrategyFactory],
    log: RequestLog,
    config: SimulationConfig,
) -> dict[str, SimulationResult]:
    """Run several strategies on the same scenario.

    Returns a mapping from the strategy label (the mapping key, not the
    strategy's own name) to its result.
    """
    results: dict[str, SimulationResult] = {}
    for label, factory in strategies.items():
        results[label] = run_simulation(
            topology_factory, graph_factory, factory, log, config
        )
    return results


def normalise_results(
    results: Mapping[str, SimulationResult], baseline_label: str = "random"
) -> dict[str, float]:
    """Top-switch traffic of every run divided by the baseline's traffic."""
    baseline = results[baseline_label]
    reference = baseline.top_switch_traffic
    normalised: dict[str, float] = {}
    for label, result in results.items():
        normalised[label] = (
            result.top_switch_traffic / reference if reference > 0 else 0.0
        )
    return normalised


__all__ = ["StrategyFactory", "normalise_results", "run_comparison", "run_simulation"]
