"""Convenience wrappers to run one or several strategies on a scenario.

These are thin forwarding layers over the experiment runtime
(:mod:`repro.runtime`): :func:`run_simulation` materialises factory-built
components and hands them to the runtime's shared execution core, and
:func:`run_comparison` replays a scenario identically against several
strategies.  Declarative code should prefer
:class:`~repro.runtime.spec.RunSpec` +
:class:`~repro.runtime.executor.RuntimeExecutor`, which add process-level
parallelism and result caching on top of the same core.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from typing import TYPE_CHECKING

from ..baselines.base import PlacementStrategy
from ..config import SimulationConfig
from ..exceptions import SimulationError
from ..persistence.backend import PersistentStore
from ..runtime.executor import run_materialised
from ..socialgraph.graph import SocialGraph
from ..topology.base import ClusterTopology
from ..workload.requests import RequestLog
from ..workload.stream import EventStream
from .results import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..scenarios.base import Scenario

#: A strategy factory: builds a fresh, unbound strategy instance per run.
StrategyFactory = Callable[[], PlacementStrategy]


def run_simulation(
    topology_factory: Callable[[], ClusterTopology],
    graph_factory: Callable[[], SocialGraph],
    strategy_factory: StrategyFactory,
    log: "RequestLog | EventStream",
    config: SimulationConfig,
    tracked_views: tuple[int, ...] = (),
    scenario: "Scenario | None" = None,
    persistent_store: PersistentStore | None = None,
) -> SimulationResult:
    """Run one strategy on a fresh topology/graph pair and return the result.

    Topology and graph are rebuilt per run because strategies mutate the
    graph (edge events) and attach state to the topology-derived structures;
    rebuilding guarantees runs are independent and comparable.  ``log`` may
    be a materialised request log or a chunked event stream (streams are
    re-iterable, so the same stream can be passed to several runs).
    """
    return run_materialised(
        topology_factory(),
        graph_factory(),
        strategy_factory(),
        log,
        config,
        tracked_views=tracked_views,
        scenario=scenario,
        persistent_store=persistent_store,
    )


def run_comparison(
    topology_factory: Callable[[], ClusterTopology],
    graph_factory: Callable[[], SocialGraph],
    strategies: Mapping[str, StrategyFactory],
    log: "RequestLog | EventStream",
    config: SimulationConfig,
    scenario: "Scenario | None" = None,
    store_factory: Callable[[], PersistentStore] | None = None,
) -> dict[str, SimulationResult]:
    """Run several strategies on the same scenario.

    Returns a mapping from the strategy label (the mapping key, not the
    strategy's own name) to its result.  ``store_factory`` builds a fresh
    persistent store per strategy (stores are mutated by write mirroring
    and recovery, so they cannot be shared between runs).
    """
    results: dict[str, SimulationResult] = {}
    for label, factory in strategies.items():
        results[label] = run_simulation(
            topology_factory,
            graph_factory,
            factory,
            log,
            config,
            scenario=scenario,
            persistent_store=store_factory() if store_factory is not None else None,
        )
    return results


def normalise_results(
    results: Mapping[str, SimulationResult], baseline_label: str = "random"
) -> dict[str, float]:
    """Top-switch traffic of every run divided by the baseline's traffic.

    Raises :class:`SimulationError` when the baseline is missing or recorded
    no top-switch traffic — a zero baseline means the comparison scenario is
    degenerate (empty log, warm-up window covering the whole run, …) and
    silently returning zeros would hide that.
    """
    baseline = results.get(baseline_label)
    if baseline is None:
        raise SimulationError(
            f"baseline {baseline_label!r} is not among the results "
            f"({', '.join(sorted(results)) or 'none'})"
        )
    reference = baseline.top_switch_traffic
    if reference <= 0:
        raise SimulationError(
            f"baseline {baseline_label!r} recorded no top-switch traffic; "
            "cannot normalise against it (is the request log empty or the "
            "measurement window after every request?)"
        )
    return {
        label: result.top_switch_traffic / reference
        for label, result in results.items()
    }


__all__ = ["StrategyFactory", "normalise_results", "run_comparison", "run_simulation"]
