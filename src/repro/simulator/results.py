"""Results of a simulation run.

A :class:`SimulationResult` bundles everything the experiment harness needs
to regenerate the paper's tables and figures: total and per-level switch
traffic, the application/system split, the time-bucketed top-switch series,
replica statistics and the memory usage of the strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..traffic.accounting import TrafficSnapshot


@dataclass(frozen=True)
class FaultRecord:
    """One applied infrastructure fault and what its recovery did.

    ``kind`` is ``"crash"`` (abrupt failure), ``"drain"`` (graceful leave)
    or ``"restore"`` (server back in service).  The view counts say how the
    affected views were recovered: from surviving in-memory replicas (fast
    path) or from the persistent store (slow path).
    """

    timestamp: float
    kind: str
    position: int
    views_from_memory: int = 0
    views_from_disk: int = 0

    @property
    def total_views(self) -> int:
        """Number of views that had to be recovered for this event."""
        return self.views_from_memory + self.views_from_disk


@dataclass
class ReplicaTimeline:
    """Replica count and per-replica read load of one tracked view over time."""

    user: int
    #: (time, replica count) samples.
    replica_counts: list[tuple[float, int]] = field(default_factory=list)
    #: (time, reads per replica in the sampling window) samples.
    reads_per_replica: list[tuple[float, float]] = field(default_factory=list)


@dataclass
class SimulationResult:
    """Outcome of one trace-driven simulation run."""

    strategy_name: str
    extra_memory_pct: float
    duration: float
    requests_executed: int
    reads_executed: int
    writes_executed: int
    snapshot: TrafficSnapshot
    #: bucket index -> application traffic at the top switch
    top_series_application: dict[int, float]
    #: bucket index -> system traffic at the top switch
    top_series_system: dict[int, float]
    bucket_width: float
    #: average number of replicas per view at the end of the run
    replication_factor: float
    #: total view slots in use at the end of the run
    memory_in_use: int
    #: timelines of explicitly tracked views (flash-event experiment)
    tracked_views: dict[int, ReplicaTimeline] = field(default_factory=dict)
    #: infrastructure faults applied during the run (scenario subsystem)
    fault_records: list[FaultRecord] = field(default_factory=list)
    #: number of users left without any replica at the end of the run
    #: (0 means every injected fault was fully recovered)
    unavailable_views: int = 0

    # ----------------------------------------------------------------- totals
    @property
    def top_switch_traffic(self) -> float:
        """Total traffic recorded at the top switch."""
        return self.snapshot.total_by_level.get("top", 0.0)

    def level_traffic(self, level: str) -> float:
        """Total traffic recorded at one switch level."""
        return self.snapshot.total_by_level.get(level, 0.0)

    def normalised_against(self, baseline: "SimulationResult") -> dict[str, float]:
        """Per-level traffic of this run divided by a baseline run's traffic.

        This is the normalisation the paper uses everywhere (traffic relative
        to the Random baseline).
        """
        ratios: dict[str, float] = {}
        for level, value in self.snapshot.total_by_level.items():
            reference = baseline.snapshot.total_by_level.get(level, 0.0)
            ratios[level] = value / reference if reference > 0 else 0.0
        return ratios

    def top_switch_series(self, split: bool = False):
        """Time series of top-switch traffic per bucket.

        With ``split=False`` returns ``{bucket: total}``; with ``split=True``
        returns ``{bucket: (application, system)}`` as used by Figure 6.
        """
        buckets = set(self.top_series_application) | set(self.top_series_system)
        if not split:
            return {
                bucket: self.top_series_application.get(bucket, 0.0)
                + self.top_series_system.get(bucket, 0.0)
                for bucket in sorted(buckets)
            }
        return {
            bucket: (
                self.top_series_application.get(bucket, 0.0),
                self.top_series_system.get(bucket, 0.0),
            )
            for bucket in sorted(buckets)
        }

    def summary(self) -> dict[str, float]:
        """Compact numeric summary used by reports and tests."""
        return {
            "top": self.snapshot.total_by_level.get("top", 0.0),
            "intermediate": self.snapshot.total_by_level.get("intermediate", 0.0),
            "rack": self.snapshot.total_by_level.get("rack", 0.0),
            "reads": float(self.reads_executed),
            "writes": float(self.writes_executed),
            "replication_factor": self.replication_factor,
            "memory_in_use": float(self.memory_in_use),
        }


__all__ = ["FaultRecord", "ReplicaTimeline", "SimulationResult"]
