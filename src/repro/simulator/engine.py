"""Trace-driven cluster simulator (paper section 4.3).

The simulator replays a request log against a placement strategy deployed on
a cluster topology.  It owns the traffic accountant (so every strategy is
measured identically), applies social-graph mutations, fires the periodic
maintenance ticks, and optionally samples the replica count of tracked views
(the flash-event experiment).
"""

from __future__ import annotations

from ..config import SimulationConfig
from ..constants import MINUTE
from ..exceptions import SimulationError
from ..baselines.base import PlacementStrategy
from ..socialgraph.graph import SocialGraph
from ..store.memory import MemoryBudget
from ..topology.base import ClusterTopology
from ..traffic.accounting import TrafficAccountant
from ..workload.requests import EdgeAdded, EdgeRemoved, ReadRequest, RequestLog, WriteRequest
from .clock import SimulationClock
from .results import ReplicaTimeline, SimulationResult


class ClusterSimulator:
    """Replays a request log against one placement strategy."""

    def __init__(
        self,
        topology: ClusterTopology,
        graph: SocialGraph,
        strategy: PlacementStrategy,
        config: SimulationConfig | None = None,
    ) -> None:
        self.topology = topology
        self.graph = graph
        self.strategy = strategy
        self.config = config or SimulationConfig()
        self.accountant = TrafficAccountant(
            topology,
            bucket_width=self.config.bucket_width,
            measure_from=self.config.measure_from,
        )
        self.budget = MemoryBudget(
            views=graph.num_users,
            extra_memory_pct=self.config.extra_memory_pct,
            servers=len(topology.servers),
        )
        self._prepared = False
        #: Views whose replica count is sampled over time (flash events).
        self._tracked_views: dict[int, ReplicaTimeline] = {}
        #: Sampling period of tracked views (the paper samples every 10 min).
        self.tracking_period: float = 10 * MINUTE
        #: Read counts of tracked views since the previous sample.
        self._tracked_reads: dict[int, int] = {}
        self._next_sample: float = self.tracking_period

    # ------------------------------------------------------------------ setup
    def prepare(self) -> None:
        """Bind the strategy to the cluster and build the initial placement."""
        if self._prepared:
            return
        self.strategy.bind(
            self.topology, self.graph, self.accountant, self.budget, seed=self.config.seed
        )
        self.strategy.build_initial_placement()
        self._prepared = True

    def track_view(self, user: int) -> None:
        """Sample the replica count of ``user``'s view during the run."""
        self._tracked_views[user] = ReplicaTimeline(user=user)
        self._tracked_reads[user] = 0

    def reset_traffic(self) -> None:
        """Clear the traffic counters (e.g. after a warm-up phase)."""
        self.accountant.reset()

    # -------------------------------------------------------------------- run
    def run(self, log: RequestLog) -> SimulationResult:
        """Replay a request log and return the measured result.

        The log must be sorted by timestamp.  Graph mutations are applied to
        the simulator's graph before the strategy is notified, and the
        strategy's periodic maintenance runs every ``tick_period`` of
        simulated time.
        """
        self.prepare()
        clock = SimulationClock(tick_period=self.config.tick_period)
        reads = writes = 0

        for request in log:
            for tick_time in clock.advance_to(request.timestamp):
                self.strategy.on_tick(tick_time)
            self._sample_tracked(request.timestamp)

            if isinstance(request, ReadRequest):
                self._count_tracked_read(request.user)
                self.strategy.execute_read(request.user, request.timestamp)
                reads += 1
            elif isinstance(request, WriteRequest):
                self.strategy.execute_write(request.user, request.timestamp)
                writes += 1
            elif isinstance(request, EdgeAdded):
                self.graph.add_edge(request.follower, request.followee)
                self.strategy.on_edge_added(request.follower, request.followee, request.timestamp)
            elif isinstance(request, EdgeRemoved):
                self.graph.remove_edge(request.follower, request.followee)
                self.strategy.on_edge_removed(
                    request.follower, request.followee, request.timestamp
                )
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown request type {type(request).__name__}")

        # Final maintenance tick and sample so end-of-run state is captured.
        final_time = log[len(log) - 1].timestamp if len(log) else 0.0
        self.strategy.on_tick(final_time)
        self._sample_tracked(final_time, force=True)

        app_series, sys_series = self.accountant.top_switch_series()
        replication_factor = self._replication_factor()
        return SimulationResult(
            strategy_name=self.strategy.name,
            extra_memory_pct=self.config.extra_memory_pct,
            duration=log.duration,
            requests_executed=len(log),
            reads_executed=reads,
            writes_executed=writes,
            snapshot=self.accountant.snapshot(),
            top_series_application=app_series,
            top_series_system=sys_series,
            bucket_width=self.config.bucket_width,
            replication_factor=replication_factor,
            memory_in_use=self.strategy.memory_in_use(),
            tracked_views=dict(self._tracked_views),
        )

    # ------------------------------------------------------------- tracking
    def _count_tracked_read(self, reader: int) -> None:
        """Count reads that touch tracked views (reader follows the target)."""
        if not self._tracked_views:
            return
        if not self.graph.has_user(reader):
            return
        following = self.graph.following(reader)
        for user in self._tracked_views:
            if user in following:
                self._tracked_reads[user] += 1

    def _sample_tracked(self, now: float, force: bool = False) -> None:
        if not self._tracked_views:
            return
        if not force and now < self._next_sample:
            return
        for user, timeline in self._tracked_views.items():
            count = self.strategy.replica_count(user)
            timeline.replica_counts.append((now, count))
            reads = self._tracked_reads.get(user, 0)
            per_replica = reads / count if count else 0.0
            timeline.reads_per_replica.append((now, per_replica))
            self._tracked_reads[user] = 0
        while self._next_sample <= now:
            self._next_sample += self.tracking_period

    def _replication_factor(self) -> float:
        locations = self.strategy.replica_locations()
        if not locations:
            return 0.0
        return sum(len(devices) for devices in locations.values()) / len(locations)


__all__ = ["ClusterSimulator"]
